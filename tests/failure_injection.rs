//! Failure-injection integration tests: every fault kind produces the
//! observable consequences the monitoring stack depends on.

use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_metrics::{CompId, JobState, Severity, Ts, MINUTE_MS};
use hpcmon_response::SignalKind;
use hpcmon_sim::node::NodeHealth;
use hpcmon_sim::{AppProfile, FaultKind, JobSpec};
use hpcmon_store::{LogQuery, TimeRange};

fn system() -> MonitoringSystem {
    MonitoringSystem::builder(SimConfig::small()).build()
}

#[test]
fn link_flap_is_logged_and_recovers() {
    let mut mon = system();
    mon.submit_job(JobSpec::new(AppProfile::comm_heavy("fft"), "u", 64, 60 * MINUTE_MS, Ts::ZERO));
    mon.schedule_fault(Ts::from_mins(3), FaultKind::LinkDown { link: 10 });
    mon.schedule_fault(Ts::from_mins(8), FaultKind::LinkUp { link: 10 });
    mon.run_ticks(12);
    assert!(mon.engine().network().link_is_up(10));
    // Restrict to the hwerr source: the analysis pipeline also stores its
    // own finding about this line (results live with raw data).
    let down = mon.log_store().search(&LogQuery::tokens(&["lcb", "failure"]).with_source("hwerr"));
    let up = mon.log_store().search(&LogQuery::tokens(&["recovered"]).with_source("hwerr"));
    assert_eq!(down.len(), 1);
    assert!(!up.is_empty());
    assert!(down[0].ts < up[0].ts);
}

#[test]
fn mds_degradation_slows_metadata_benchmark() {
    let mut mon = MonitoringSystem::builder(SimConfig::small()).bench_suite_every(Some(1)).build();
    mon.run_ticks(10);
    let m = mon.metrics();
    let series_before = mon
        .query()
        .series(hpcmon_metrics::SeriesKey::new(m.bench_metadata, CompId::SYSTEM), TimeRange::all());
    let baseline = series_before.iter().map(|p| p.1).sum::<f64>() / series_before.len() as f64;
    mon.schedule_fault(Ts::from_mins(11), FaultKind::MdsDegrade { factor: 6.0 });
    mon.run_ticks(5);
    let series_after = mon.query().series(
        hpcmon_metrics::SeriesKey::new(m.bench_metadata, CompId::SYSTEM),
        TimeRange::new(Ts::from_mins(12), Ts(u64::MAX)),
    );
    let degraded = series_after.iter().map(|p| p.1).sum::<f64>() / series_after.len() as f64;
    assert!(degraded > 3.0 * baseline, "baseline {baseline} degraded {degraded}");
    // Restore.
    mon.schedule_fault(Ts::from_mins(17), FaultKind::MdsRestore);
    mon.run_ticks(3);
    assert!(mon.engine().filesystem().mds_latency_ms() < 3.0 * baseline);
}

#[test]
fn node_recovery_returns_capacity() {
    let mut mon = system();
    mon.schedule_fault(Ts::from_mins(2), FaultKind::NodeCrash { node: 9 });
    mon.schedule_fault(Ts::from_mins(10), FaultKind::NodeRecover { node: 9 });
    mon.run_ticks(12);
    assert_eq!(mon.engine().node(9).health, NodeHealth::Up);
    assert!(!mon.engine().scheduler().out_of_service().contains(&9));
    // Boot log present.
    assert!(!mon.log_store().search(&LogQuery::tokens(&["boot", "complete"])).is_empty());
}

#[test]
fn service_flap_changes_health_and_back() {
    let mut mon = system();
    mon.schedule_fault(Ts::from_mins(2), FaultKind::ServiceDown { node: 3, service: 1 });
    mon.run_ticks(3);
    assert!(!mon.engine().node(3).passes_health_check());
    assert!(mon
        .signals()
        .iter()
        .any(|s| s.kind == SignalKind::HealthCheckFailure && s.comp == CompId::node(3)));
    mon.schedule_fault(Ts::from_mins(6), FaultKind::ServiceRestore { node: 3, service: 1 });
    mon.run_ticks(3);
    assert!(mon.engine().node(3).passes_health_check());
}

#[test]
fn fs_unmount_logged_as_error() {
    let mut mon = system();
    mon.schedule_fault(Ts::from_mins(1), FaultKind::FsUnmount { node: 12 });
    mon.run_ticks(2);
    let hits =
        mon.log_store().search(&LogQuery::tokens(&["lustre"]).with_min_severity(Severity::Error));
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].comp, CompId::node(12));
}

#[test]
fn gpu_corrosion_chain_env_to_hwerr() {
    // Gas spike → dose accumulates → GPUs drift → XID errors appear →
    // environment signal raised throughout.
    let mut cfg = SimConfig::small();
    cfg.gpu_corrosion_pct_per_ppb_s = 3e-3;
    let mut mon = MonitoringSystem::builder(cfg).build();
    mon.schedule_fault(
        Ts::from_mins(2),
        FaultKind::GasSpike { added_ppb: 90.0, duration_ms: 12 * 3_600_000 },
    );
    mon.run_ticks(400);
    assert!(mon.engine().environment().corrosion_dose_ppb_s > 0.0);
    assert!(mon.signals().iter().any(|s| s.kind == SignalKind::EnvironmentViolation));
    let xids = mon.log_store().search(&LogQuery::tokens(&["xid"]));
    assert!(!xids.is_empty(), "corroded GPUs eventually fail with XID logs");
}

#[test]
fn stochastic_failures_drive_background_noise() {
    let mut cfg = SimConfig::small();
    cfg.failure_rates = hpcmon_sim::failure::FailureRates {
        node_crash_per_hour: 5e-3,
        node_hang_per_hour: 2e-3,
        link_down_per_hour: 1e-3,
        service_down_per_hour: 5e-3,
        link_errors_per_gb: 0.1,
    };
    let mut mon = MonitoringSystem::builder(cfg).build();
    mon.submit_job(JobSpec::new(AppProfile::comm_heavy("fft"), "u", 64, 240 * MINUTE_MS, Ts::ZERO));
    mon.run_ticks(120);
    // The machine degrades visibly over two hours at these rates.
    let truth = mon.engine().truth_log();
    assert!(!truth.is_empty(), "stochastic failures occurred");
    assert!(!mon.signals().is_empty());
    assert!(!mon.actions().is_empty());
}

#[test]
fn job_failure_cleans_up_node_state() {
    let mut mon = system();
    let id = mon.submit_job(JobSpec::new(
        AppProfile::compute_heavy("stencil"),
        "u",
        16,
        60 * MINUTE_MS,
        Ts::ZERO,
    ));
    mon.run_ticks(2);
    let nodes = mon.engine().scheduler().record(id).nodes.clone();
    mon.schedule_fault(Ts::from_mins(4), FaultKind::NodeCrash { node: nodes[0] });
    mon.run_ticks(3);
    assert_eq!(mon.engine().scheduler().record(id).state, JobState::Failed);
    // Surviving nodes are idle again: no cpu load, no job binding.
    for &n in &nodes[1..] {
        let node = mon.engine().node(n);
        assert!(node.running_job.is_none());
        assert!(node.cpu_util < 0.1);
    }
}
