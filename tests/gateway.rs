//! The query-serving gateway, end to end over a running monitoring
//! system: concurrent correctness, epoch-correct caching, need-to-know
//! scoping, admission control, and standing subscriptions.

use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_gateway::{GatewayConfig, QueryError, QueryRequest, QueryResponse, SubscriptionUpdate};
use hpcmon_metrics::{CompId, CompKind, JobRecord, SeriesKey, Ts};
use hpcmon_response::Consumer;
use hpcmon_sim::{AppProfile, JobSpec};
use hpcmon_store::{AggFn, TimeRange};
use hpcmon_transport::{BackpressurePolicy, TopicFilter};
use std::sync::Arc;
use std::time::Duration;

/// A gateway config with deadlines generous enough for debug builds.
fn test_config() -> GatewayConfig {
    GatewayConfig { default_deadline_ms: 10_000, ..GatewayConfig::default() }
}

fn system_with_jobs() -> MonitoringSystem {
    let mut mon = MonitoringSystem::builder(SimConfig::small()).gateway(test_config()).build();
    mon.submit_job(JobSpec::new(
        AppProfile::compute_heavy("sim"),
        "alice",
        8,
        60 * 60_000,
        Ts::ZERO,
    ));
    mon.submit_job(JobSpec::new(AppProfile::compute_heavy("ml"), "bob", 8, 60 * 60_000, Ts::ZERO));
    mon.run_ticks(8);
    mon
}

fn running_job<'a>(mon: &'a MonitoringSystem, user: &str) -> &'a JobRecord {
    mon.engine()
        .scheduler()
        .records()
        .iter()
        .find(|j| j.user == user && j.start.is_some())
        .expect("job started")
}

/// (a) N concurrent clients get byte-identical results to the serial
/// `QueryEngine` reference.
#[test]
fn concurrent_clients_match_serial_engine() {
    let mon = system_with_jobs();
    let metrics = mon.metrics();
    let gw = mon.gateway().unwrap().clone();
    let all = TimeRange::all();
    let node0 = SeriesKey::new(metrics.node_cpu, CompId::node(0));
    let power0 = SeriesKey::new(metrics.node_power, CompId::node(0));

    let requests = vec![
        QueryRequest::Series { key: node0, range: all },
        QueryRequest::AggregateAcross { metric: metrics.node_power, range: all, agg: AggFn::Sum },
        QueryRequest::ComponentsOfKind {
            metric: metrics.node_cpu,
            kind: CompKind::Node,
            range: all,
        },
        QueryRequest::TopComponentsAt {
            metric: metrics.node_power,
            at: Ts::from_mins(5),
            tolerance_ms: 30_000,
            limit: 4,
        },
        QueryRequest::Downsample { key: node0, range: all, bucket_ms: 120_000, agg: AggFn::Mean },
        QueryRequest::AlignJoin { a: node0, b: power0, range: all },
    ];

    // Serial reference, straight off the borrow-based engine.
    let q = mon.query();
    let reference: Vec<QueryResponse> = vec![
        QueryResponse::Points(q.series(node0, all)),
        QueryResponse::Points(q.aggregate_across_components(metrics.node_power, all, AggFn::Sum)),
        QueryResponse::Grouped(q.components_of_kind(metrics.node_cpu, CompKind::Node, all)),
        QueryResponse::Ranked(q.top_components_at(metrics.node_power, Ts::from_mins(5), 30_000, 4)),
        QueryResponse::Points(q.downsample(node0, all, 120_000, AggFn::Mean).unwrap()),
        QueryResponse::Joined(q.align_join(node0, power0, all)),
    ];
    assert!(matches!(&reference[0], QueryResponse::Points(p) if !p.is_empty()));

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let gw = gw.clone();
            let requests = requests.clone();
            std::thread::spawn(move || {
                let me = Consumer::admin(&format!("dashboard-{i}"));
                requests
                    .into_iter()
                    .map(|r| gw.query(&me, r).expect("admin query succeeds"))
                    .collect::<Vec<QueryResponse>>()
            })
        })
        .collect();
    for h in handles {
        let got = h.join().unwrap();
        assert_eq!(got.len(), reference.len());
        for (g, want) in got.iter().zip(&reference) {
            assert_eq!(g, want);
            // Byte-identical on the wire, not just structurally equal.
            assert_eq!(serde_json::to_vec(g).unwrap(), serde_json::to_vec(want).unwrap());
        }
    }
}

/// (b) A cached response is never served across a store-epoch change.
#[test]
fn cache_invalidates_on_store_epoch_change() {
    let mut mon = system_with_jobs();
    let metrics = mon.metrics();
    let gw = mon.gateway().unwrap().clone();
    let ops = Consumer::admin("ops");
    let req = QueryRequest::Series {
        key: SeriesKey::new(metrics.system_power, CompId::SYSTEM),
        range: TimeRange::all(),
    };

    let first = gw.query(&ops, req.clone()).unwrap();
    let second = gw.query(&ops, req.clone()).unwrap();
    assert_eq!(first, second);
    let warm = gw.cache_stats();
    assert!(warm.hits >= 1, "repeat query served from cache: {warm:?}");

    // One tick ingests a new frame — every mutation class bumps the store
    // epoch, so the cached entry must not survive.
    mon.tick();
    let third = gw.query(&ops, req.clone()).unwrap();
    let (QueryResponse::Points(old), QueryResponse::Points(new)) = (&second, &third) else {
        panic!("series responses expected");
    };
    assert_eq!(new.len(), old.len() + 1, "post-tick response carries the new point");
    let after = gw.cache_stats();
    assert!(after.invalidated >= 1, "stale entry was invalidated: {after:?}");
    // And the fresh response matches the serial engine exactly.
    assert_eq!(
        *new,
        mon.query().series(SeriesKey::new(metrics.system_power, CompId::SYSTEM), TimeRange::all())
    );

    // Sealing (a different mutation class) also invalidates.
    let sealed = gw.query(&ops, req.clone()).unwrap();
    mon.store().seal_all();
    let resealed = gw.query(&ops, req).unwrap();
    assert_eq!(sealed, resealed, "same data, different epoch");
    assert!(gw.cache_stats().invalidated >= 2);
}

/// (c) A user principal cannot read series outside their job allocations.
#[test]
fn user_scope_limits_series_visibility() {
    let mon = system_with_jobs();
    let metrics = mon.metrics();
    let gw = mon.gateway().unwrap();
    let alice_job = running_job(&mon, "alice").clone();
    let bob_job = running_job(&mon, "bob").clone();
    let alice = Consumer::user("alice-portal", "alice");
    let all = TimeRange::all();

    // Own node: allowed, and identical to what an admin sees for it.
    let own = SeriesKey::new(metrics.node_cpu, CompId::node(alice_job.nodes[0]));
    let got = gw.query(&alice, QueryRequest::Series { key: own, range: all }).unwrap();
    assert!(matches!(&got, QueryResponse::Points(p) if !p.is_empty()));
    assert_eq!(
        got,
        gw.query(&Consumer::admin("ops"), QueryRequest::Series { key: own, range: all }).unwrap()
    );

    // System scope: public.
    let sys = SeriesKey::new(metrics.system_power, CompId::SYSTEM);
    assert!(gw.query(&alice, QueryRequest::Series { key: sys, range: all }).is_ok());

    // Bob's node, bob's job, and infrastructure internals: denied.
    let foreign = SeriesKey::new(metrics.node_cpu, CompId::node(bob_job.nodes[0]));
    assert!(matches!(
        gw.query(&alice, QueryRequest::Series { key: foreign, range: all }),
        Err(QueryError::AccessDenied(_))
    ));
    assert!(matches!(
        gw.query(
            &alice,
            QueryRequest::JobSeries { job_id: bob_job.id.0, metric: metrics.node_cpu }
        ),
        Err(QueryError::AccessDenied(_))
    ));
    let link = SeriesKey::new(metrics.link_traffic, CompId { kind: CompKind::Link, index: 0 });
    assert!(matches!(
        gw.query(&alice, QueryRequest::Series { key: link, range: all }),
        Err(QueryError::AccessDenied(_))
    ));

    // Own job series works and carries only the allocation's nodes.
    let own_job = gw
        .query(&alice, QueryRequest::JobSeries { job_id: alice_job.id.0, metric: metrics.node_cpu })
        .unwrap();
    let QueryResponse::Job(js) = own_job else { panic!("job response expected") };
    assert_eq!(js.per_node.len(), alice_job.nodes.len());

    // Ranked and grouped results are filtered, not just refused: alice
    // only ever sees her own nodes in a machine-wide top-k.
    let QueryResponse::Ranked(rows) = gw
        .query(
            &alice,
            QueryRequest::TopComponentsAt {
                metric: metrics.node_cpu,
                at: Ts::from_mins(5),
                tolerance_ms: 30_000,
                limit: 1_000,
            },
        )
        .unwrap()
    else {
        panic!("ranked response expected")
    };
    assert!(!rows.is_empty());
    assert!(rows.iter().all(|(c, _)| alice_job.nodes.contains(&c.index)), "{rows:?}");

    // Unknown job ids are an error value, not a panic.
    assert!(matches!(
        gw.query(&alice, QueryRequest::JobSeries { job_id: 999, metric: metrics.node_cpu }),
        Err(QueryError::UnknownJob(999))
    ));
}

/// (d) An over-limit principal is shed with a rate-limit error while other
/// principals are unaffected.
#[test]
fn rate_limit_sheds_only_the_noisy_principal() {
    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .gateway(GatewayConfig {
            rate_limit_burst: 3.0,
            rate_limit_per_sec: 0.0,
            default_deadline_ms: 10_000,
            ..GatewayConfig::default()
        })
        .build();
    mon.run_ticks(3);
    let metrics = mon.metrics();
    let gw = mon.gateway().unwrap();
    let req = QueryRequest::Series {
        key: SeriesKey::new(metrics.system_power, CompId::SYSTEM),
        range: TimeRange::all(),
    };
    let greedy = Consumer::admin("greedy-dashboard");
    let polite = Consumer::admin("polite-dashboard");
    let mut shed = 0;
    for i in 0..10 {
        match gw.query(&greedy, req.clone()) {
            Ok(_) => {}
            Err(QueryError::RateLimited { principal }) => {
                assert_eq!(principal, "greedy-dashboard");
                shed += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
        // Interleaved under-limit traffic from another principal always
        // gets through — each bucket is independent.
        if i % 4 == 0 {
            gw.query(&polite, req.clone()).expect("other principals unaffected");
        }
    }
    assert_eq!(shed, 7, "burst of 3 admits exactly 3 of 10");
}

/// (e) A standing subscription delivers updated results on tick, through
/// the broker.
#[test]
fn standing_subscription_delivers_updates_via_broker() {
    let mut mon = system_with_jobs();
    let metrics = mon.metrics();
    let key = SeriesKey::new(metrics.system_power, CompId::SYSTEM);
    let feed = mon.broker().subscribe(TopicFilter::new("gateway/#"), 64, BackpressurePolicy::Block);
    let gw = mon.gateway().unwrap().clone();
    let ops = Consumer::admin("ops");
    let sub_id = gw
        .subscribe(
            &ops,
            QueryRequest::Series { key, range: TimeRange::all() },
            "gateway/updates/ops",
        )
        .unwrap();

    mon.run_ticks(3);
    let envelopes = feed.drain();
    assert!(!envelopes.is_empty(), "subscription delivered on tick");
    let mut delivered: Vec<(Ts, f64)> = Vec::new();
    for env in &envelopes {
        assert_eq!(env.topic, "gateway/updates/ops");
        let hpcmon_transport::Payload::Raw(bytes) = &env.payload else {
            panic!("raw JSON payload expected")
        };
        let update: SubscriptionUpdate = serde_json::from_slice(bytes).unwrap();
        assert_eq!(update.id, sub_id);
        assert!(update.incremental, "series subscriptions deliver deltas");
        let QueryResponse::Points(pts) = update.result else { panic!("points expected") };
        delivered.extend(pts);
    }
    // Incremental delivery: strictly advancing watermark, no duplicates,
    // and together the deltas equal the stored series.
    assert!(delivered.windows(2).all(|w| w[0].0 < w[1].0), "{delivered:?}");
    let stored = mon.query().series(key, TimeRange::all());
    assert_eq!(delivered, stored, "deltas reassemble the full series");

    // After unsubscribe, ticks go quiet.
    assert!(gw.unsubscribe(sub_id));
    mon.run_ticks(2);
    assert!(feed.drain().is_empty(), "no deliveries after unsubscribe");
}

/// Deadline budgets shed queries that can no longer be answered in time
/// instead of stalling the caller.
#[test]
fn expired_deadline_is_shed_not_served() {
    let mon = system_with_jobs();
    let metrics = mon.metrics();
    let gw = mon.gateway().unwrap();
    let req = QueryRequest::Series {
        key: SeriesKey::new(metrics.system_power, CompId::SYSTEM),
        range: TimeRange::all(),
    };
    // A zero budget is already expired when a worker picks it up.
    let result =
        gw.query_with_deadline(&Consumer::admin("impatient"), req, Duration::from_millis(0));
    assert!(matches!(result, Err(QueryError::DeadlineExceeded)));
}

/// Malformed requests are refused as values before touching a worker.
#[test]
fn malformed_requests_are_error_values() {
    let mon = system_with_jobs();
    let metrics = mon.metrics();
    let gw = mon.gateway().unwrap();
    let ops = Consumer::admin("ops");
    let inverted = TimeRange { from: Ts(10_000), to: Ts(0) };
    assert!(matches!(
        gw.query(
            &ops,
            QueryRequest::Series {
                key: SeriesKey::new(metrics.node_cpu, CompId::node(0)),
                range: inverted,
            }
        ),
        Err(QueryError::InvalidParam(_))
    ));
    assert!(matches!(
        gw.query(
            &ops,
            QueryRequest::Downsample {
                key: SeriesKey::new(metrics.node_cpu, CompId::node(0)),
                range: TimeRange::all(),
                bucket_ms: 0,
                agg: AggFn::Mean,
            }
        ),
        Err(QueryError::InvalidParam(_))
    ));
}

/// The pipeline keeps ticking while consumer threads hammer the gateway —
/// queries see a consistent store and never panic.
#[test]
fn queries_run_concurrently_with_the_ticking_pipeline() {
    let mut mon = system_with_jobs();
    let metrics = mon.metrics();
    let gw: Arc<_> = mon.gateway().unwrap().clone();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let gw = gw.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let me = Consumer::admin(&format!("client-{i}"));
                let mut ok = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let resp = gw.query(
                        &me,
                        QueryRequest::AggregateAcross {
                            metric: metrics.node_power,
                            range: TimeRange::all(),
                            agg: AggFn::Sum,
                        },
                    );
                    assert!(resp.is_ok(), "{resp:?}");
                    ok += 1;
                }
                ok
            })
        })
        .collect();
    mon.run_ticks(10);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "clients made progress during ticking");
}

/// An injected worker death lands at a job boundary: queries keep being
/// answered, and the next tick's supervision respawns the replacement.
#[test]
fn injected_worker_death_is_survived_and_respawned() {
    let mut mon = system_with_jobs();
    let metrics = mon.metrics();
    let gw = mon.gateway().unwrap().clone();
    let before = gw.worker_count();
    assert!(before >= 2);

    gw.inject_worker_death();
    // The victim exits at its next job boundary; poll until supervision
    // (normally run by the tick loop) reaps and replaces it.
    let mut respawned = 0usize;
    for _ in 0..2_000 {
        respawned += gw.ensure_workers();
        if respawned > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(respawned, 1, "exactly one worker died and was replaced");
    assert_eq!(gw.worker_count(), before, "pool back to full strength");

    // The pool still serves queries correctly after death and respawn.
    let req = QueryRequest::Series {
        key: SeriesKey::new(metrics.system_power, CompId::SYSTEM),
        range: TimeRange::all(),
    };
    match gw.query(&Consumer::admin("ops"), req.clone()) {
        Ok(QueryResponse::Points(pts)) => assert!(!pts.is_empty()),
        other => panic!("query after respawn failed: {other:?}"),
    }
    // And the ticking pipeline performs the supervision itself.
    gw.inject_worker_death();
    let mut reaped = false;
    for _ in 0..2_000 {
        mon.run_ticks(1);
        if gw.worker_count() == before && gw.ensure_workers() == 0 {
            // Stable: the tick respawned the second victim already.
            reaped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(reaped, "tick-loop supervision replaced the dead worker");
    assert!(matches!(gw.query(&Consumer::admin("ops"), req), Ok(QueryResponse::Points(_))));
}
