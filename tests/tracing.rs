//! End-to-end pipeline tracing: a frame's trace follows it from the
//! collector through broker, store, analysis, and response; every
//! deliberately shed datum gets a trace naming the losing stage and
//! reason; and histogram exemplars resolve latency spikes to traces.

use hpcmon::trace::{DropReason, Sampler, Stage, TraceId};
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_collect::Collector;
use hpcmon_metrics::{ColumnFrame, CompId, SeriesKey};
use hpcmon_sim::SimEngine;
use hpcmon_transport::{BackpressurePolicy, TopicFilter};
use std::time::Duration;

/// A frame sampled at the collector carries its trace through every
/// pipeline stage: the completed trace is a tree rooted at `tick` with
/// the stage spans in pipeline order and `store` nested under
/// `transport` (it runs off the broker's delivery).
#[test]
fn sampled_frame_traces_end_to_end() {
    let mut mon = MonitoringSystem::builder(SimConfig::small()).tracing(Sampler::always()).build();
    mon.run_ticks(5);
    // Tick N's trace completes after tick N+1's ingest round.
    let traces: Vec<_> = mon.traces().completed().collect();
    assert!(traces.len() >= 4, "got {}", traces.len());
    let t = traces[0];
    let root = t.root().expect("root span");
    assert_eq!(root.stage, Stage::Tick);
    assert!(!t.has_drop(), "lossless config drops nothing");
    for stage in [Stage::Collect, Stage::Transport, Stage::Analysis, Stage::Response] {
        let span = t
            .spans
            .iter()
            .find(|s| s.stage == stage)
            .unwrap_or_else(|| panic!("{} span missing", stage.as_str()));
        assert_eq!(span.parent, root.span_id, "{} hangs off the root", stage.as_str());
    }
    // Store ingest is causally downstream of transport: its parent is the
    // transport span (the context travelled inside the broker envelope).
    let transport = t.spans.iter().find(|s| s.stage == Stage::Transport).unwrap();
    let store = t.spans.iter().find(|s| s.stage == Stage::Store).unwrap();
    assert_eq!(store.parent, transport.span_id);
    // The collect span names its payload.
    let collect = t.spans.iter().find(|s| s.stage == Stage::Collect).unwrap();
    assert!(collect.note.contains("samples"), "{:?}", collect.note);
    // Both renderers accept the real thing.
    let tree = hpcmon::viz::render_span_tree(t);
    assert!(tree.contains("tick"), "{tree}");
    assert!(tree.contains("├─") || tree.contains("└─"), "{tree}");
    let svg = hpcmon::viz::svg_trace_timeline(t, 800);
    assert!(svg.starts_with("<svg") && svg.ends_with("</svg>\n"));
}

/// Backpressure drops get provenance even when the frame was NOT head-
/// sampled: a laggard subscriber's queue fills, and every lost frame
/// yields a completed trace whose terminal span says which stage lost it
/// (transport), why (queue_full), and on which topic.
#[test]
fn backpressure_drop_yields_drop_trace() {
    // Sampling is effectively off for ordinary spans (1-in-2^63), so any
    // trace we see exists purely through the always-on drop path.
    let mut mon =
        MonitoringSystem::builder(SimConfig::small()).tracing(Sampler::one_in(u64::MAX)).build();
    // A consumer that never drains a two-slot queue: ticks 3+ drop.
    let _laggard = mon.broker().subscribe(
        TopicFilter::new("metrics/frame"),
        2,
        BackpressurePolicy::DropNewest,
    );
    mon.run_ticks(6);
    let dropped: Vec<_> = mon.traces().with_drops().collect();
    assert!(!dropped.is_empty(), "induced drops produce traces");
    for t in &dropped {
        let drop_span = t.drop_spans().next().expect("terminal drop span");
        assert_eq!(drop_span.status.drop_reason(), Some(DropReason::QueueFull));
        assert_eq!(drop_span.stage, Stage::Transport, "the losing stage is named");
        assert!(drop_span.note.contains("metrics/frame"), "{:?}", drop_span.note);
    }
    // Ticks 1 and 2 queued fine; from tick 3 on, every frame dropped.
    // Tick 6's trace is still pending (completion lags one tick), so 3 of
    // the 4 drops have assembled into completed traces by now.
    assert_eq!(mon.traces().completed_with_drops(), 3);
    // The same losses are visible in the aggregate transport stats.
    assert_eq!(mon.broker().stats().dropped, 4);
}

/// A gateway query shed at its deadline yields a trace whose terminal
/// span carries the shed reason and the gateway stage — the "where did my
/// answer go" companion to the frame-drop story.
#[test]
fn gateway_deadline_shed_yields_drop_trace() {
    use hpcmon_gateway::{GatewayConfig, QueryError, QueryRequest};
    use hpcmon_response::Consumer;
    use hpcmon_store::TimeRange;

    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .tracing(Sampler::one_in(u64::MAX))
        .gateway(GatewayConfig { default_deadline_ms: 10_000, ..GatewayConfig::default() })
        .build();
    mon.run_ticks(3);
    let gw = mon.gateway().unwrap().clone();
    let req = QueryRequest::Series {
        key: SeriesKey::new(mon.metrics().system_power, CompId::SYSTEM),
        range: TimeRange::all(),
    };
    // A zero budget is already expired when a worker picks it up.
    let result =
        gw.query_with_deadline(&Consumer::admin("impatient"), req, Duration::from_millis(0));
    assert!(matches!(result, Err(QueryError::DeadlineExceeded)));
    // The next ticks drain the gateway's spans and complete the trace.
    mon.run_ticks(2);
    let shed: Vec<_> = mon
        .traces()
        .completed()
        .filter(|t| t.first_drop_reason() == Some(DropReason::DeadlineShed))
        .collect();
    assert_eq!(shed.len(), 1, "exactly one shed query");
    let drop_span = shed[0].drop_spans().next().unwrap();
    assert_eq!(drop_span.stage, Stage::Gateway);
}

/// A collector that stalls the pipeline on one chosen tick — the
/// "injected slow frame" for the exemplar test.
struct SlowTick {
    at_tick: u64,
    delay: Duration,
}

impl Collector for SlowTick {
    fn name(&self) -> &str {
        "slow_tick"
    }

    fn collect(&mut self, engine: &SimEngine, _frame: &mut ColumnFrame) {
        if engine.tick_count() == self.at_tick {
            std::thread::sleep(self.delay);
        }
    }
}

/// The tick-latency histogram's p99 exemplar resolves a synthetic spike
/// to the slow frame's trace id, and that id looks up the full trace.
#[test]
fn histogram_exemplar_resolves_p99_spike_to_slow_frame() {
    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .tracing(Sampler::always())
        .install_collector(Box::new(SlowTick { at_tick: 10, delay: Duration::from_millis(80) }))
        .build();
    mon.run_ticks(30);
    let hist = mon.telemetry().histogram("stage.tick");
    // The p99 bucket is the slow tick's; its exemplar is that frame's
    // trace id.  Trace ids are allocated per tick starting at 1, so the
    // injected spike at tick 10 must surface trace id 10.
    let exemplar = hist.exemplar_near_quantile(0.99);
    assert_eq!(exemplar, 10, "p99 exemplar names the injected slow frame");
    // And the id resolves to a full trace whose root shows the stall.
    let trace = mon.traces().find(TraceId(exemplar)).expect("exemplar trace retained");
    let root = trace.root().unwrap();
    assert_eq!(root.stage, Stage::Tick);
    assert!(
        root.duration_ns() >= 80_000_000,
        "the trace shows the 80ms stall: {}ns",
        root.duration_ns()
    );
}

/// Trace activity is exported through the ordinary self-telemetry path:
/// `hpcmon.self.trace.*` series land in the store and are queryable like
/// any other metric — including through the gateway.
#[test]
fn trace_counters_surface_as_self_series() {
    use hpcmon_gateway::{GatewayConfig, QueryRequest, QueryResponse};
    use hpcmon_response::Consumer;
    use hpcmon_store::TimeRange;

    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .tracing(Sampler::always())
        .gateway(GatewayConfig { default_deadline_ms: 10_000, ..GatewayConfig::default() })
        .build();
    mon.run_ticks(5);
    for name in [
        "hpcmon.self.trace.sampled",
        "hpcmon.self.trace.spans",
        "hpcmon.self.trace.completed",
        "hpcmon.self.trace.completed_with_drops",
        "hpcmon.self.trace.ring_rejected",
    ] {
        let id = mon.registry().lookup(name).unwrap_or_else(|| panic!("{name} not registered"));
        let pts =
            mon.query().series(SeriesKey::new(id, CompId::SYSTEM), hpcmon_store::TimeRange::all());
        assert!(!pts.is_empty(), "{name} has no points");
    }
    // Always-on sampling: one sampled trace per tick, visible as per-tick
    // deltas.  The self feed collects at the head of each tick while trace
    // counters sync at the tail, so 5 ticks surface the first 4 samples.
    let sampled = mon.registry().lookup("hpcmon.self.trace.sampled").unwrap();
    let pts =
        mon.query().series(SeriesKey::new(sampled, CompId::SYSTEM), hpcmon_store::TimeRange::all());
    assert_eq!(pts.iter().map(|&(_, v)| v).sum::<f64>(), 4.0);
    // The same series serves through the gateway (controlled release of
    // the monitor's own health data).
    let gw = mon.gateway().unwrap();
    let resp = gw
        .query(
            &Consumer::admin("ops"),
            QueryRequest::Series {
                key: SeriesKey::new(sampled, CompId::SYSTEM),
                range: TimeRange::all(),
            },
        )
        .unwrap();
    match resp {
        QueryResponse::Points(points) => assert!(!points.is_empty()),
        other => panic!("unexpected response {other:?}"),
    }
}

/// Tracing off is really off: no contexts, no spans, no trace series
/// pollution — the zero-overhead baseline the ablation measures against.
#[test]
fn tracing_off_records_nothing() {
    let mut mon = MonitoringSystem::builder(SimConfig::small()).tracing(Sampler::off()).build();
    mon.run_ticks(5);
    assert!(!mon.tracer().is_enabled());
    assert_eq!(mon.traces().completed_total(), 0);
    assert_eq!(mon.tracer().stats().spans_recorded, 0);
    // Determinism guard: the pipeline behaves identically with tracing on
    // and off — same frames, same store contents.
    let mut traced =
        MonitoringSystem::builder(SimConfig::small()).tracing(Sampler::one_in(2)).build();
    traced.run_ticks(5);
    let key = SeriesKey::new(mon.metrics().system_power, CompId::SYSTEM);
    let a = mon.query().series(key, hpcmon_store::TimeRange::all());
    let b = traced.query().series(key, hpcmon_store::TimeRange::all());
    assert_eq!(a, b, "tracing never perturbs the data path");
}
