//! Figure-reproduction integration tests: each asserts the *shape* the
//! paper reports, not absolute numbers (our substrate is a simulator).

use hpcmon::scenarios;
use hpcmon_metrics::Ts;

#[test]
fn figure1_pre_tas_injection_is_significantly_lower() {
    let r = scenarios::fig1_tas(20, 11);
    // Paper: mean bandwidth utilization "significantly lower over the
    // pre-TAS time period (left) than when TAS was being utilized".
    assert!(r.post_mean > 1.15 * r.pre_mean, "pre {} vs TAS {}", r.pre_mean, r.post_mean);
    // Both eras produced full-length series.
    assert_eq!(r.pre_tas.len(), 20);
    assert_eq!(r.post_tas.len(), 20);
}

#[test]
fn figure2_onsets_are_detected_near_injection() {
    let r = scenarios::fig2_bench_suite(11);
    // Benchmarks ran throughout.
    assert!(r.io_series.len() > 150);
    assert!(r.net_series.len() > 150);
    // The I/O onset is found within 30 minutes of the injection.
    let io = r.detected_io_onset.expect("io onset detected");
    assert!(
        io >= r.injected_io_onset && io <= r.injected_io_onset.add_ms(30 * 60_000),
        "io onset {} vs injected {}",
        io,
        r.injected_io_onset
    );
    // The network onset likewise.
    let net = r.detected_net_onset.expect("net onset detected");
    assert!(
        net >= r.injected_net_onset && net <= r.injected_net_onset.add_ms(30 * 60_000),
        "net onset {} vs injected {}",
        net,
        r.injected_net_onset
    );
    // And the degraded eras are visibly worse than the baselines.
    let baseline_io: f64 = r.io_series.iter().take(30).map(|p| p.1).sum::<f64>() / 30.0;
    let degraded_io: f64 = r.io_series.iter().rev().take(30).map(|p| p.1).sum::<f64>() / 30.0;
    assert!(degraded_io > 2.0 * baseline_io, "{baseline_io} -> {degraded_io}");
}

#[test]
fn figure3_power_ratios_match_paper() {
    let r = scenarios::fig3_power(11);
    // Paper: "power usage variation of up to 3 times ... between different
    // cabinets and full system power draw was almost 1.9 times lower".
    assert!(
        (2.2..=3.8).contains(&r.window_cabinet_ratio),
        "cabinet ratio {}",
        r.window_cabinet_ratio
    );
    assert!((1.5..=2.3).contains(&r.draw_ratio), "draw ratio {}", r.draw_ratio);
    // Detection: flagged inside the window, not outside.
    assert!(!r.flagged_ticks.is_empty());
    for t in &r.flagged_ticks {
        assert!(*t >= Ts::from_mins(17) && *t <= Ts::from_mins(24), "flag at {t}");
    }
}

#[test]
fn figure4_drilldown_attributes_correctly() {
    let r = scenarios::fig4_drilldown(11);
    let attributed = r.attributed.expect("attribution");
    assert_eq!(attributed.id, r.culprit.id);
    assert_eq!(attributed.name, "untarball");
    // The drill-down's top nodes all belong to the culprit's allocation.
    for (comp, _) in &r.top_nodes {
        assert!(r.culprit.uses_node(comp.index), "{comp} not in culprit allocation");
    }
    // The spike dominates the background.
    let peak_val = r.aggregate_read.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let background: f64 = r.aggregate_read.iter().take(15).map(|p| p.1).sum::<f64>() / 15.0;
    assert!(peak_val > 5.0 * background.max(1.0), "peak {peak_val} background {background}");
}

#[test]
fn figure5_csv_matches_panel() {
    let r = scenarios::fig5_perjob(11);
    assert_eq!(r.job.name, "climate");
    assert!(r.panel_text.contains("cpu util"));
    assert!(r.panel_text.contains("window"));
    let rows: Vec<&str> = r.csv.lines().collect();
    assert_eq!(rows[0], "time_ms,cpu util,power W,mem bytes,inj %");
    // Every row after the header parses and is within the job window.
    let start = r.job.start.unwrap().0;
    let end = r.job.end.unwrap().0;
    for row in &rows[1..] {
        let t: u64 = row.split(',').next().unwrap().parse().unwrap();
        assert!(t >= start && t <= end, "row time {t} outside window");
    }
    // Round-trip through the CSV parser.
    let parsed = hpcmon_viz::csv::parse_series_csv(&r.csv).expect("parses");
    assert_eq!(parsed.len(), 4);
    assert_eq!(parsed[0].1.len(), rows.len() - 1);
}

#[test]
fn gating_shape_matches_cscs_goal() {
    let r = scenarios::gating_experiment(11);
    // Without gating, bad nodes eat many jobs; with gating, almost none.
    assert!(r.failed_without_gating >= 3 * r.failed_with_gating.max(1), "{r:?}");
    // Gating must not tank throughput.
    assert!(r.completed_with_gating as f64 >= 0.9 * r.completed_without_gating as f64, "{r:?}");
}

#[test]
fn clock_ablation_ordering() {
    let r = scenarios::clock_sync_ablation(20, 11);
    assert_eq!(r.synced.f1, 1.0);
    assert!(r.corrected.f1 >= 0.99, "correction restores association: {:?}", r.corrected);
    assert!(r.drifting.f1 < r.corrected.f1);
}

#[test]
fn scenarios_are_deterministic() {
    let a = scenarios::fig3_power(5);
    let b = scenarios::fig3_power(5);
    assert_eq!(a.total_power, b.total_power);
    assert_eq!(a.window_cabinet_ratio, b.window_cabinet_ratio);
    let a4 = scenarios::fig4_drilldown(5);
    let b4 = scenarios::fig4_drilldown(5);
    assert_eq!(a4.peak, b4.peak);
    assert_eq!(a4.top_nodes, b4.top_nodes);
}
