//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, exercised through the public APIs.

use hpcmon_analysis::association::{associate, AssocEvent};
use hpcmon_metrics::{CompId, MetricId, Sample, SeriesKey, Ts};
use hpcmon_sim::routing::minimal_route;
use hpcmon_sim::topology::{Topology, TopologySpec};
use hpcmon_store::{Archive, TimeSeriesStore};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever goes into the store comes back out, in order, regardless
    /// of insertion order and seal threshold.
    #[test]
    fn store_round_trips_arbitrary_series(
        mut points in proptest::collection::vec((0u64..10_000_000, -1.0e9f64..1.0e9), 1..200),
        seal in 1usize..64,
    ) {
        let store = TimeSeriesStore::with_options(4, seal);
        for &(t, v) in &points {
            store.insert(&Sample::new(MetricId(0), CompId::node(0), Ts(t), v));
        }
        let got = store.query(
            SeriesKey::new(MetricId(0), CompId::node(0)),
            Ts::ZERO,
            Ts(u64::MAX),
        );
        points.sort_by_key(|p| p.0);
        prop_assert_eq!(got.len(), points.len());
        // Timestamps sorted; multiset of values preserved.
        prop_assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut got_vals: Vec<u64> = got.iter().map(|p| p.1.to_bits()).collect();
        let mut want_vals: Vec<u64> = points.iter().map(|p| p.1.to_bits()).collect();
        got_vals.sort_unstable();
        want_vals.sort_unstable();
        prop_assert_eq!(got_vals, want_vals);
    }

    /// Archiving then reloading is lossless for any cutoff.
    #[test]
    fn archive_reload_is_lossless(
        n_points in 1u64..300,
        cutoff in 0u64..400,
    ) {
        let store = TimeSeriesStore::with_options(2, 16);
        for i in 0..n_points {
            store.insert(&Sample::new(MetricId(0), CompId::node(0), Ts(i * 1_000), i as f64));
        }
        let mut archive = Archive::new();
        if let Some(cat) = archive.archive_before(&store, Ts(cutoff * 1_000)) {
            prop_assert!(archive.reload_into(cat.segment, &store));
        }
        let got = store.query(
            SeriesKey::new(MetricId(0), CompId::node(0)),
            Ts::ZERO,
            Ts(u64::MAX),
        );
        prop_assert_eq!(got.len() as u64, n_points);
    }

    /// Every torus route is a contiguous path of existing links reaching
    /// its destination, with length bounded by the Manhattan diameter.
    #[test]
    fn torus_routes_are_valid_paths(
        dx in 1u32..6, dy in 1u32..6, dz in 1u32..6,
        src_seed in 0u32..1000, dst_seed in 0u32..1000,
    ) {
        let topo = Topology::build(TopologySpec::Torus3D {
            dims: [dx, dy, dz],
            nodes_per_router: 1,
        });
        let n = topo.num_routers();
        let src = src_seed % n;
        let dst = dst_seed % n;
        let path = minimal_route(&topo, src, dst);
        let mut cur = src;
        for &lid in &path {
            let link = topo.link(lid);
            prop_assert_eq!(link.from, cur);
            cur = link.to;
        }
        prop_assert_eq!(cur, dst);
        let diameter = (dx / 2 + dy / 2 + dz / 2) as usize;
        prop_assert!(path.len() <= diameter.max(1) * 3);
    }

    /// Association output is a partition: every event appears exactly
    /// once, incidents are time-ordered internally, and gaps between
    /// consecutive incidents exceed the window.
    #[test]
    fn association_is_a_partition(
        times in proptest::collection::vec(0u64..1_000_000, 0..100),
        window in 1u64..50_000,
    ) {
        let events: Vec<AssocEvent> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| AssocEvent { ts: Ts(t), comp: CompId::node(i as u32), tag: 0 })
            .collect();
        let incidents = associate(events.clone(), window);
        let total: usize = incidents.iter().map(|i| i.events.len()).sum();
        prop_assert_eq!(total, events.len());
        for inc in &incidents {
            prop_assert!(inc.events.windows(2).all(|w| w[0].ts <= w[1].ts));
            prop_assert!(inc
                .events
                .windows(2)
                .all(|w| w[1].ts.0 - w[0].ts.0 <= window));
        }
        for pair in incidents.windows(2) {
            let last = pair[0].events.last().unwrap().ts;
            let first = pair[1].events.first().unwrap().ts;
            prop_assert!(first.0 - last.0 > window, "incidents are maximal");
        }
    }

    /// CSV round-trip preserves any single series exactly.
    #[test]
    fn csv_round_trip(
        mut pts in proptest::collection::vec((0u64..10_000_000, -1.0e12f64..1.0e12), 0..100),
    ) {
        pts.sort_by_key(|p| p.0);
        pts.dedup_by_key(|p| p.0);
        let series = vec![(
            "metric".to_owned(),
            pts.iter().map(|&(t, v)| (Ts(t), v)).collect::<Vec<_>>(),
        )];
        let csv = hpcmon_viz::series_to_csv(&series);
        let back = hpcmon_viz::csv::parse_series_csv(&csv).unwrap();
        prop_assert_eq!(back, series);
    }

    /// Every dragonfly route is a valid contiguous path of at most 3 hops
    /// with at most one global link, for arbitrary shapes.
    #[test]
    fn dragonfly_routes_are_valid(
        groups in 1u32..8, rpg in 1u32..8,
        src_seed in 0u32..1000, dst_seed in 0u32..1000,
    ) {
        let topo = Topology::build(TopologySpec::Dragonfly {
            groups,
            routers_per_group: rpg,
            nodes_per_router: 1,
        });
        let n = topo.num_routers();
        let src = src_seed % n;
        let dst = dst_seed % n;
        let path = minimal_route(&topo, src, dst);
        let mut cur = src;
        let mut globals = 0;
        for &lid in &path {
            let link = topo.link(lid);
            prop_assert_eq!(link.from, cur);
            globals += link.global as usize;
            cur = link.to;
        }
        prop_assert_eq!(cur, dst);
        prop_assert!(path.len() <= 3);
        prop_assert!(globals <= 1);
        if src == dst {
            prop_assert!(path.is_empty());
        }
    }

    /// The P² estimator stays within a small rank error of the exact
    /// quantile on uniform-ish data.
    #[test]
    fn p2_quantile_tracks_exact(
        seed in 0u64..10_000,
        q in 0.1f64..0.9,
    ) {
        use hpcmon_analysis::P2Quantile;
        let mut est = P2Quantile::new(q);
        let mut values = Vec::with_capacity(2_000);
        let mut x = seed.wrapping_mul(2_654_435_761).wrapping_add(1);
        for _ in 0..2_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            let v = (x >> 11) as f64 / (1u64 << 53) as f64;
            est.push(v);
            values.push(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = values[((q * (values.len() - 1) as f64).round()) as usize];
        let got = est.value().unwrap();
        // Rank error tolerance: uniform data → value error ≈ rank error.
        prop_assert!((got - exact).abs() < 0.05, "q={q} exact={exact} got={got}");
    }

    /// Burst-buffer conservation: absorbed never exceeds offered, and
    /// occupancy equals absorbed minus drained.
    #[test]
    fn burst_buffer_conserves_bytes(
        offers in proptest::collection::vec(0.0f64..500.0, 1..50),
        drain_accept in 0.0f64..50.0,
    ) {
        use hpcmon_sim::{BbConfig, BurstBuffer};
        let mut bb = BurstBuffer::new(BbConfig {
            num_nodes: 3,
            capacity_bytes: 1_000.0,
            absorb_bytes_per_sec: 100.0,
            drain_bytes_per_sec: 20.0,
        });
        let mut absorbed_total = 0.0;
        let mut drained_total = 0.0;
        for &offer in &offers {
            bb.begin_tick();
            let got = bb.absorb(offer, 1_000);
            prop_assert!(got <= offer + 1e-9);
            prop_assert!(got <= 300.0 + 1e-9, "bandwidth bound");
            absorbed_total += got;
            for i in 0..3 {
                let demand = bb.drain_demand(1_000)[i as usize];
                let accept = demand.min(drain_accept);
                bb.complete_drain(i, accept);
                drained_total += accept;
            }
        }
        prop_assert!((bb.total_occupancy() - (absorbed_total - drained_total)).abs() < 1e-6);
        prop_assert!(bb.total_occupancy() <= 3_000.0 + 1e-6, "capacity bound");
    }

    /// Template mining conserves record counts across arbitrary streams.
    #[test]
    fn template_miner_conserves_counts(
        msgs in proptest::collection::vec("[a-z ]{1,20}", 0..100),
    ) {
        use hpcmon_analysis::TemplateMiner;
        use hpcmon_metrics::{LogRecord, Severity};
        let mut miner = TemplateMiner::new();
        for m in &msgs {
            miner.observe(&LogRecord::new(
                Ts(0),
                CompId::node(0),
                Severity::Info,
                "src",
                m.as_str(),
            ));
        }
        prop_assert_eq!(miner.total(), msgs.len() as u64);
        let top: u64 = miner.top_k(usize::MAX).iter().map(|t| t.count).sum();
        prop_assert_eq!(top, msgs.len() as u64);
        prop_assert!(miner.distinct() <= msgs.len());
    }

    /// The telemetry histogram's quantile estimate brackets the true
    /// (rank-based) quantile within one bucket width.  Buckets are
    /// half-octaves, so "one bucket width" means the estimate is within a
    /// factor of 1.5 of the exact order statistic.
    #[test]
    fn histogram_quantile_brackets_true_quantile(
        samples in proptest::collection::vec(1u64..(1u64 << 38), 1..300),
        q in 0.0f64..1.0,
    ) {
        let telemetry = hpcmon_telemetry::Telemetry::new();
        let hist = telemetry.histogram("prop.quantile");
        for &s in &samples {
            hist.record_ns(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        // Same rank convention the histogram uses: ceil(q*n), 1-based.
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        let exact = sorted[rank - 1] as f64;
        let est = hist.quantile_ns(q) as f64;
        prop_assert!(
            est <= exact * 1.5 && est >= exact / 1.5,
            "q={q} exact={exact} est={est}"
        );
    }

    /// A trace context survives the full broker path for arbitrary ids:
    /// publish_traced → envelope → JSON → envelope → delivered context.
    #[test]
    fn trace_context_round_trips_through_envelope(
        trace_id in 1u64..u64::MAX,
        span_id in 0u64..u64::MAX,
        sampled in any::<bool>(),
    ) {
        use hpcmon_trace::{SpanId, TraceContext, TraceId};
        use hpcmon_transport::{BackpressurePolicy, Broker, Envelope, Payload, TopicFilter};
        // span_id 0 is SpanId::NONE — the "root, no parent" wire form.
        let ctx = TraceContext {
            trace_id: TraceId(trace_id),
            span_id: SpanId(span_id),
            sampled,
        };
        let broker = Broker::new();
        let sub = broker.subscribe(TopicFilter::all(), 4, BackpressurePolicy::Block);
        broker.publish_traced("t", Payload::Raw(bytes::Bytes::from(vec![1u8])), Some(ctx));
        let envs = sub.drain();
        prop_assert_eq!(envs.len(), 1);
        prop_assert_eq!(envs[0].trace, Some(ctx));
        // And through the wire format: serialize → deserialize → same.
        let json = serde_json::to_string(&envs[0]).unwrap();
        let back: Envelope = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.trace, Some(ctx));
        prop_assert_eq!(back.seq, envs[0].seq);
    }

    /// The broker delivers everything to a Block subscriber in order.
    #[test]
    fn broker_block_is_lossless_ordered(count in 1usize..200) {
        use hpcmon_transport::{BackpressurePolicy, Broker, Payload, TopicFilter};
        let broker = Broker::new();
        let sub = broker.subscribe(TopicFilter::all(), count.max(8), BackpressurePolicy::Block);
        for i in 0..count {
            broker.publish("t", Payload::Raw(bytes::Bytes::from(vec![
                (i & 0xFF) as u8,
                ((i >> 8) & 0xFF) as u8,
            ])));
        }
        let got = sub.drain();
        prop_assert_eq!(got.len(), count);
        for (i, env) in got.iter().enumerate() {
            match &env.payload {
                Payload::Raw(b) => {
                    prop_assert_eq!(b[0] as usize | ((b[1] as usize) << 8), i)
                }
                _ => prop_assert!(false),
            }
        }
    }

    /// Downsampling matches a brute-force bucket reference for arbitrary
    /// point sets — including duplicate timestamps and buckets arriving
    /// out of order (the streaming fast path must agree with full
    /// grouping).
    #[test]
    fn downsample_matches_brute_force_reference(
        points in proptest::collection::vec(
            (0u64..100_000, -1.0e6f64..1.0e6), 0..120),
        bucket_ms in 1u64..10_000,
        agg_pick in 0usize..4,
    ) {
        use hpcmon_store::{AggFn, QueryEngine};
        use std::collections::BTreeMap;
        let agg = [AggFn::Sum, AggFn::Mean, AggFn::Min, AggFn::Max][agg_pick];
        let pts: Vec<(Ts, f64)> = points.iter().map(|&(t, v)| (Ts(t), v)).collect();

        let got = QueryEngine::downsample_points(&pts, bucket_ms, agg).unwrap();

        // Brute force: group by bucket start, aggregate, sort by bucket.
        let mut buckets: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
        for &(t, v) in &pts {
            buckets.entry((t.0 / bucket_ms) * bucket_ms).or_default().push(v);
        }
        let want: Vec<(Ts, f64)> = buckets
            .into_iter()
            .filter_map(|(b, vals)| agg.apply(&vals).map(|a| (Ts(b), a)))
            .collect();

        prop_assert_eq!(got.len(), want.len());
        for (&(gt, gv), &(wt, wv)) in got.iter().zip(&want) {
            prop_assert_eq!(gt, wt);
            // Sum/Mean accumulate in different orders on the two paths;
            // allow float round-off, nothing more.
            prop_assert!((gv - wv).abs() <= 1.0e-9 * gv.abs().max(wv.abs()).max(1.0),
                "bucket {:?}: got {gv}, want {wv}", gt);
        }

        // A zero bucket is an error value, never a panic.
        prop_assert!(QueryEngine::downsample_points(&pts, 0, agg).is_err());
    }
}
