//! The SLO/alerting plane end to end (DESIGN.md §13): chaos-driven
//! incidents must produce alert timelines with deterministic tick stamps,
//! bit-identical at any worker count, replayable from a flight-recorder
//! log, and the whole plane must be invisible when off.

use hpcmon::health::{HealthConfig, Silence, Transition};
use hpcmon::system::TickReport;
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_chaos::{ChaosFault, ChaosPlan, ScheduledFault};
use hpcmon_metrics::{SeriesKey, Ts};
use std::sync::Once;

fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("chaos: injected collector panic"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn plan(faults: Vec<(u64, ChaosFault)>) -> ChaosPlan {
    ChaosPlan::from_faults(
        faults.into_iter().map(|(at_tick, fault)| ScheduledFault { at_tick, fault }).collect(),
    )
}

fn stall_plan() -> ChaosPlan {
    plan(vec![(4, ChaosFault::BrokerTopicStall { topic: "metrics/frame".into(), ticks: 2 })])
}

fn store_fail_plan() -> ChaosPlan {
    plan(vec![(4, ChaosFault::StoreWriteFail { shard: 0, ticks: 3 })])
}

fn builder(workers: usize) -> hpcmon::system::MonitorBuilder {
    MonitoringSystem::builder(SimConfig::small()).self_telemetry(false).workers(workers)
}

fn dump_store(mon: &MonitoringSystem) -> Vec<(SeriesKey, Vec<(Ts, f64)>)> {
    mon.store()
        .all_series()
        .into_iter()
        .map(|k| (k, mon.store().query(k, Ts::ZERO, Ts(u64::MAX))))
        .collect()
}

/// `(tick, key, transition)` triples for one alert key, in order.
fn episodes(mon: &MonitoringSystem, key: &str) -> Vec<(u64, Transition)> {
    mon.alert_events().iter().filter(|e| e.key == key).map(|e| (e.tick, e.transition)).collect()
}

/// A broker topic stall fires the transport delivery SLO with exact,
/// deterministic tick stamps: Pending the tick frames start buffering,
/// Firing after the two-tick confirmation, Resolved once the fast window
/// forgets the outage plus five clear ticks of hysteresis.  The chaos
/// quiescence SLO brackets the same incident from the injection ledger.
#[test]
fn broker_stall_alert_timeline_is_exact() {
    quiet_injected_panics();
    let mut mon = builder(0).chaos(42, stall_plan()).health(HealthConfig::standard()).build();
    mon.run_ticks(20);
    assert_eq!(
        episodes(&mon, "transport/delivery"),
        vec![(4, Transition::Pending), (5, Transition::Firing), (14, Transition::Resolved)],
    );
    assert_eq!(
        episodes(&mon, "chaos/quiescence"),
        vec![(4, Transition::Pending), (5, Transition::Firing), (13, Transition::Resolved)],
    );
    // Nothing else paged: the store, gateway, and collect SLOs stayed Ok.
    assert_eq!(mon.alert_events().len(), 6, "{}", mon.health_timeline());
    let rep = mon.health_report().expect("health is on");
    assert!(rep.active.is_empty(), "everything resolved by tick 20");
    assert!(rep.subsystems.iter().all(|s| s.firing == 0 && s.pending == 0));
}

/// A store-shard write outage trips the breaker; the ingest SLO pages
/// while the breaker is away from Closed and spilled frames wait, then
/// resolves after the drain — again with exact tick stamps.
#[test]
fn store_write_fail_alert_timeline_is_exact() {
    quiet_injected_panics();
    let mut mon = builder(0).chaos(5, store_fail_plan()).health(HealthConfig::standard()).build();
    mon.run_ticks(24);
    let ingest = episodes(&mon, "store/ingest");
    assert_eq!(ingest[0], (4, Transition::Pending), "{}", mon.health_timeline());
    assert_eq!(ingest[1], (5, Transition::Firing));
    assert_eq!(ingest.len(), 3, "exactly one episode: {}", mon.health_timeline());
    let (resolved_tick, t) = ingest[2];
    assert_eq!(t, Transition::Resolved);
    assert!(
        (12..=20).contains(&resolved_tick),
        "resolution follows the breaker re-closing plus hysteresis: {resolved_tick}"
    );
    // No spilled frame was lost, so store integrity never paged.
    assert!(episodes(&mon, "store/integrity").is_empty());
    assert!(mon.health_report().unwrap().active.is_empty());
}

/// The canonical alert timeline is bit-identical at workers 0 and 4, for
/// both incident shapes, and every stored byte matches too.
#[test]
fn alert_timelines_are_bit_identical_across_worker_counts() {
    quiet_injected_panics();
    for (label, mk_plan) in
        [("stall", stall_plan as fn() -> ChaosPlan), ("store-fail", store_fail_plan)]
    {
        let run = |workers: usize| {
            let mut mon =
                builder(workers).chaos(9, mk_plan()).health(HealthConfig::standard()).build();
            let reports: Vec<TickReport> = (0..20).map(|_| mon.tick()).collect();
            (mon.health_timeline(), reports, dump_store(&mon))
        };
        let (base_timeline, base_reports, base_dump) = run(0);
        assert!(!base_timeline.is_empty(), "{label}: the incident paged");
        let (timeline, reports, dump) = run(4);
        assert_eq!(base_timeline, timeline, "{label}: timelines diverge across worker counts");
        assert_eq!(base_reports, reports, "{label}: TickReports (with alerts) diverge");
        assert_eq!(base_dump, dump, "{label}: stored bytes diverge");
    }
}

/// Off is off: a run with the health plane enabled leaves the monitored
/// data plane — stored bytes and the signal journal — bit-identical to a
/// run without it.
#[test]
fn health_plane_does_not_perturb_the_pipeline() {
    quiet_injected_panics();
    let run = |health: bool| {
        let mut b = builder(0).chaos(7, stall_plan());
        if health {
            b = b.health(HealthConfig::standard());
        }
        let mut mon = b.build();
        mon.run_ticks(20);
        (dump_store(&mon), mon.signals().to_vec(), mon.alert_events().len())
    };
    let (base_dump, base_signals, base_alerts) = run(false);
    let (dump, signals, alerts) = run(true);
    assert_eq!(base_alerts, 0, "health off records nothing");
    assert!(alerts > 0, "health on records the incident");
    assert_eq!(base_dump, dump, "stored bytes identical with health on");
    assert_eq!(base_signals, signals, "signal journal identical with health on");
}

/// Alert transitions are published on `health/alerts` as serde JSON —
/// and that topic never matches the store's `metrics/#` subscription, so
/// alerts cannot pollute the time-series plane.
#[test]
fn alerts_publish_on_the_health_topic() {
    use hpcmon::transport::{BackpressurePolicy, Payload, TopicFilter};
    quiet_injected_panics();
    let mut mon = builder(0).chaos(42, stall_plan()).health(HealthConfig::standard()).build();
    let sub = mon.broker().subscribe(TopicFilter::new("health/#"), 1024, BackpressurePolicy::Block);
    mon.run_ticks(20);
    let events: Vec<hpcmon::health::AlertEvent> = sub
        .drain()
        .into_iter()
        .map(|env| {
            assert_eq!(env.topic, "health/alerts");
            match env.payload {
                Payload::Raw(bytes) => serde_json::from_slice(&bytes).expect("alert decodes"),
                other => panic!("expected raw JSON alert, got {other:?}"),
            }
        })
        .collect();
    assert_eq!(events, mon.alert_events(), "wire events mirror the recorded history");
}

/// A tick-keyed silence marks matching transitions: they stay in the
/// recorded history (and the canonical timeline) but are not published.
#[test]
fn silences_suppress_publishing_but_not_history() {
    use hpcmon::transport::{BackpressurePolicy, TopicFilter};
    quiet_injected_panics();
    let cfg = HealthConfig::standard().silence(Silence {
        key: "transport/*".into(),
        from_tick: 0,
        until_tick: 1_000,
    });
    let mut mon = builder(0).chaos(42, stall_plan()).health(cfg).build();
    let sub = mon.broker().subscribe(TopicFilter::new("health/#"), 1024, BackpressurePolicy::Block);
    mon.run_ticks(20);
    let published = sub.drain().len();
    let silenced = mon.alert_events().iter().filter(|e| e.silenced).count();
    assert_eq!(silenced, 3, "the transport episode was silenced");
    assert_eq!(published + silenced, mon.alert_events().len(), "silenced = recorded - published");
    assert!(
        mon.health_timeline().contains("\"silenced\":true"),
        "the canonical timeline keeps the silenced record"
    );
}

/// Snapshot/restore mid-incident: a system restored from a snapshot
/// continues to the same alert timeline and state hash as the
/// uninterrupted run.
#[test]
fn health_state_survives_snapshot_restore() {
    quiet_injected_panics();
    let mk = || builder(0).chaos(42, stall_plan()).health(HealthConfig::standard()).build();
    let mut a = mk();
    a.set_state_hashing(true);
    a.run_ticks(6); // mid-incident: Firing, stall still buffering
    let snap = a.snapshot();
    assert!(a.health_report().unwrap().active.iter().any(|al| al.firing));
    a.run_ticks(14);

    let mut b = mk();
    b.set_state_hashing(true);
    b.restore_snapshot(snap);
    b.run_ticks(14);

    assert_eq!(a.health_timeline(), b.health_timeline(), "timelines agree after restore");
    assert_eq!(a.alert_events(), b.alert_events(), "full event history restored");
    let (ha, hb) = (a.last_state_hash().unwrap(), b.last_state_hash().unwrap());
    assert_eq!(ha, hb, "state-hash chains agree after restore");
}

/// The incident replays from a flight-recorder log: hash chain verifies
/// at a different worker count and the replayed system reproduces the
/// recorded alert timeline exactly.
#[test]
fn alert_timeline_replays_from_the_flight_recorder() {
    use hpcmon_replay::{FlightRecorder, Replayer, RunSpec};
    quiet_injected_panics();
    let spec =
        RunSpec::new(SimConfig::small()).chaos(42, stall_plan()).health(HealthConfig::standard());
    let mut rec = FlightRecorder::new(spec);
    for _ in 0..20 {
        rec.tick();
    }
    let recorded_timeline = rec.system().health_timeline();
    assert!(!recorded_timeline.is_empty(), "the recording paged");
    let log = rec.finish();

    let mut rp = Replayer::with_workers(&log, 4);
    while let Some(step) = rp.step() {
        if let Err(d) = step {
            panic!("replay diverged:\n{}", d.render());
        }
    }
    assert_eq!(
        rp.system().health_timeline(),
        recorded_timeline,
        "replay reproduces the alert timeline byte for byte"
    );
}
