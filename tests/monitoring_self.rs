//! The monitoring system watching itself (and the CSC queue-backlog
//! story): gaps in expected data must surface as signals, and queue
//! anomalies must be traceable to filesystem problems.

use hpcmon::pipeline::DetectorAttachment;
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_analysis::ThresholdDetector;
use hpcmon_collect::Collector;
use hpcmon_metrics::{ColumnFrame, CompId, MetricId, SeriesKey, Severity, Ts, Unit, MINUTE_MS};
use hpcmon_response::SignalKind;
use hpcmon_sim::{AppProfile, FaultKind, JobSpec, SimEngine};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A site-specific collector that can be switched off mid-run — the
/// stand-in for a crashed collection daemon.
struct FlakyCollector {
    metric: MetricId,
    dead: Arc<AtomicBool>,
}

impl Collector for FlakyCollector {
    fn name(&self) -> &str {
        "site_custom"
    }

    fn collect(&mut self, engine: &SimEngine, frame: &mut ColumnFrame) {
        if self.dead.load(Ordering::Relaxed) {
            return; // silence: the failure mode under test
        }
        frame.push(self.metric, CompId::SYSTEM, engine.tick_count() as f64);
    }
}

#[test]
fn dead_collector_raises_monitoring_gap() {
    let builder = MonitoringSystem::builder(SimConfig::small());
    let metric = builder.registry().register("site.custom_counter", Unit::Count, "test feed");
    let dead = Arc::new(AtomicBool::new(false));
    let mut mon =
        builder.install_collector(Box::new(FlakyCollector { metric, dead: dead.clone() })).build();
    mon.run_ticks(10);
    assert!(
        !mon.signals().iter().any(|s| s.kind == SignalKind::MonitoringGap),
        "healthy feeds raise nothing"
    );
    // The daemon dies silently.
    dead.store(true, Ordering::Relaxed);
    mon.run_ticks(5);
    let gaps: Vec<_> =
        mon.signals().iter().filter(|s| s.kind == SignalKind::MonitoringGap).collect();
    assert!(!gaps.is_empty(), "silence detected");
    assert!(gaps.iter().all(|s| s.detail.contains("site_custom")));
    // Recovery clears the condition for subsequent ticks.
    dead.store(false, Ordering::Relaxed);
    let before = gaps.len();
    mon.run_ticks(1); // one tick to beat again
    mon.run_ticks(3);
    let after = mon.signals().iter().filter(|s| s.kind == SignalKind::MonitoringGap).count();
    // Cooldowns aside: no *new* gap signals once the feed is back.
    assert!(after <= before + 1, "before {before} after {after}");
}

#[test]
fn custom_collector_data_lands_in_the_store() {
    let builder = MonitoringSystem::builder(SimConfig::small());
    let metric = builder.registry().register("site.custom_counter", Unit::Count, "test feed");
    let mut mon = builder
        .install_collector(Box::new(FlakyCollector {
            metric,
            dead: Arc::new(AtomicBool::new(false)),
        }))
        .build();
    mon.run_ticks(5);
    // The metric registered via the builder resolves in the built system.
    assert_eq!(mon.registry().lookup("site.custom_counter"), Some(metric));
    let pts =
        mon.query().series(SeriesKey::new(metric, CompId::SYSTEM), hpcmon_store::TimeRange::all());
    assert_eq!(pts.len(), 5);
    assert_eq!(pts[0].1, 1.0);
    assert_eq!(pts[4].1, 5.0);
}

#[test]
fn self_telemetry_series_land_in_the_store() {
    let mut mon = MonitoringSystem::builder(SimConfig::small()).build();
    mon.run_ticks(5);
    // Stage latencies and transport counters are ordinary queryable series
    // under hpcmon.self.* — the monitor is a subsystem like any other.
    for name in [
        "hpcmon.self.stage.collect.p95_ms",
        "hpcmon.self.stage.store.p95_ms",
        "hpcmon.self.stage.analysis.p95_ms",
        "hpcmon.self.transport.published",
        "hpcmon.self.transport.dropped",
        "hpcmon.self.store.samples_ingested",
        "hpcmon.self.collect.samples.node",
    ] {
        let id = mon.registry().lookup(name).unwrap_or_else(|| panic!("{name} not registered"));
        let pts =
            mon.query().series(SeriesKey::new(id, CompId::SYSTEM), hpcmon_store::TimeRange::all());
        assert!(!pts.is_empty(), "{name} has no points");
    }
    // The lossless store path means zero transport drops, visible in the
    // self feed itself.
    let id = mon.registry().lookup("hpcmon.self.transport.dropped").unwrap();
    let pts =
        mon.query().series(SeriesKey::new(id, CompId::SYSTEM), hpcmon_store::TimeRange::all());
    assert!(pts.iter().all(|&(_, v)| v == 0.0));
    // Per-topic breakdown is surfaced through the system facade.
    let topics = mon.broker_topic_stats();
    assert!(topics.iter().any(|t| t.topic == "metrics/frame" && t.published == 5));
}

#[test]
fn killed_collector_zeroes_its_self_feed_and_raises_a_gap() {
    let mut mon = MonitoringSystem::builder(SimConfig::small()).build();
    mon.run_ticks(5);
    assert!(mon.silence_collector("node"), "node collector exists");
    mon.run_ticks(5);
    // The gap is detected by the deadman as before...
    let gaps: Vec<_> =
        mon.signals().iter().filter(|s| s.kind == SignalKind::MonitoringGap).collect();
    assert!(!gaps.is_empty(), "silenced feed detected");
    assert!(gaps.iter().any(|s| s.detail.contains("'node'")), "{:?}", gaps[0]);
    // ...and the positive instrumentation shows the same story: the
    // per-tick sample count for the dead collector drops to zero while a
    // healthy collector's stays up.
    let dead = mon.registry().lookup("hpcmon.self.collect.samples.node").unwrap();
    let pts =
        mon.query().series(SeriesKey::new(dead, CompId::SYSTEM), hpcmon_store::TimeRange::all());
    let (first, last) = (pts.first().unwrap().1, pts.last().unwrap().1);
    assert!(first > 0.0, "was contributing before the kill: {first}");
    assert_eq!(last, 0.0, "contributes nothing after the kill");
    let alive = mon.registry().lookup("hpcmon.self.collect.samples.power").unwrap();
    let pts =
        mon.query().series(SeriesKey::new(alive, CompId::SYSTEM), hpcmon_store::TimeRange::all());
    assert!(pts.last().unwrap().1 > 0.0, "healthy collector still reporting");
}

#[test]
fn gateway_activity_surfaces_in_self_feed() {
    use hpcmon_gateway::{GatewayConfig, QueryRequest};
    use hpcmon_response::Consumer;
    use hpcmon_store::TimeRange;

    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .gateway(GatewayConfig { default_deadline_ms: 10_000, ..GatewayConfig::default() })
        .build();
    mon.run_ticks(3);
    let gw = mon.gateway().unwrap().clone();
    let ops = Consumer::admin("ops");
    let key = SeriesKey::new(mon.metrics().system_power, CompId::SYSTEM);
    gw.subscribe(
        &ops,
        QueryRequest::Series { key, range: hpcmon_store::TimeRange::all() },
        "gateway/ops",
    )
    .unwrap();
    // Four queries on the same key: one miss, three cache hits.
    for _ in 0..4 {
        gw.query(&ops, QueryRequest::Series { key, range: TimeRange::all() }).unwrap();
    }
    // The next tick's self-collection republishes the gateway instruments.
    mon.run_ticks(2);
    for name in [
        "hpcmon.self.gateway.queries",
        "hpcmon.self.gateway.cache.hits",
        "hpcmon.self.gateway.cache.misses",
        "hpcmon.self.gateway.cache.hit_ratio",
        "hpcmon.self.gateway.queue.depth",
        "hpcmon.self.gateway.eval.p95_ms",
        "hpcmon.self.gateway.subscriptions.active",
        "hpcmon.self.gateway.subscriptions.delivered",
    ] {
        let id = mon.registry().lookup(name).unwrap_or_else(|| panic!("{name} not registered"));
        let pts =
            mon.query().series(SeriesKey::new(id, CompId::SYSTEM), hpcmon_store::TimeRange::all());
        assert!(!pts.is_empty(), "{name} has no points");
    }
    // Counters arrive as per-tick deltas: the burst of 4 queries lands in
    // one tick's sample, and lifetime sums match gateway activity.
    let queries = mon.registry().lookup("hpcmon.self.gateway.queries").unwrap();
    let pts =
        mon.query().series(SeriesKey::new(queries, CompId::SYSTEM), hpcmon_store::TimeRange::all());
    assert_eq!(pts.iter().map(|&(_, v)| v).sum::<f64>(), 4.0, "{pts:?}");
    let hits = mon.registry().lookup("hpcmon.self.gateway.cache.hits").unwrap();
    let pts =
        mon.query().series(SeriesKey::new(hits, CompId::SYSTEM), hpcmon_store::TimeRange::all());
    assert_eq!(pts.iter().map(|&(_, v)| v).sum::<f64>(), 3.0, "warm queries hit");
    // The standing subscription is visible as a level gauge.
    let active = mon.registry().lookup("hpcmon.self.gateway.subscriptions.active").unwrap();
    let pts =
        mon.query().series(SeriesKey::new(active, CompId::SYSTEM), hpcmon_store::TimeRange::all());
    assert_eq!(pts.last().unwrap().1, 1.0);
}

#[test]
fn uptime_and_build_info_serve_through_the_gateway_to_users() {
    use hpcmon_gateway::{GatewayConfig, QueryRequest};
    use hpcmon_response::Consumer;
    use hpcmon_store::TimeRange;

    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .gateway(GatewayConfig { default_deadline_ms: 10_000, ..GatewayConfig::default() })
        .build();
    mon.run_ticks(4);

    // The identity series exist and carry sane values: uptime counts
    // ticks, build_info encodes the crate version as a constant.
    let uptime = mon.registry().lookup("hpcmon.self.uptime_ticks").expect("uptime registered");
    let pts =
        mon.query().series(SeriesKey::new(uptime, CompId::SYSTEM), hpcmon_store::TimeRange::all());
    assert_eq!(pts.len(), 4);
    assert_eq!(pts.last().unwrap().1, 4.0, "uptime tracks the tick count");
    assert!(pts.windows(2).all(|w| w[1].1 == w[0].1 + 1.0), "monotone by one per tick");

    let build = mon.registry().lookup("hpcmon.self.build_info").expect("build_info registered");
    let pts =
        mon.query().series(SeriesKey::new(build, CompId::SYSTEM), hpcmon_store::TimeRange::all());
    let encoded = pts.last().unwrap().1;
    assert!(encoded > 0.0, "build_info encodes a version");
    assert!(pts.iter().all(|&(_, v)| v == encoded), "constant across the run");
    let desc = mon.registry().meta(build).expect("has metadata").description;
    assert!(desc.starts_with("build identity: hpcmon v"), "description names the build: {desc}");

    // Both series sit at System scope, so an ordinary *user* — not just
    // ops — can ask "is the monitor alive, and which build is it?".
    let gw = mon.gateway().unwrap().clone();
    let alice = Consumer::user("alice's portal", "alice");
    for id in [uptime, build] {
        let resp = gw
            .query(
                &alice,
                QueryRequest::Series {
                    key: SeriesKey::new(id, CompId::SYSTEM),
                    range: TimeRange::all(),
                },
            )
            .expect("user-scope query succeeds");
        match resp {
            hpcmon_gateway::QueryResponse::Points(pts) => {
                assert!(!pts.is_empty(), "user sees the identity series")
            }
            other => panic!("expected points, got {other:?}"),
        }
    }
}

#[test]
fn telemetry_report_json_round_trips() {
    let mut mon = MonitoringSystem::builder(SimConfig::small()).build();
    mon.run_ticks(3);
    let report = mon.telemetry_report();
    assert!(report.histograms.iter().any(|h| h.name == "stage.tick" && h.count == 3));
    assert!(report.counters.iter().any(|c| c.name == "tick.count" && c.value == 3));
    let json = serde_json::to_string(&report).unwrap();
    let back: hpcmon::telemetry::TelemetryReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
    // The text rendering carries the stage taxonomy for the ops report.
    let text = report.render_text();
    assert!(text.contains("stage.collect"));
    assert!(text.contains("collect.samples.node"));
}

#[test]
fn disabling_self_telemetry_removes_the_feed() {
    let mut mon = MonitoringSystem::builder(SimConfig::small()).self_telemetry(false).build();
    mon.run_ticks(3);
    assert!(mon.registry().lookup("hpcmon.self.stage.tick.p95_ms").is_none());
    assert!(!mon.telemetry().is_active());
    let report = mon.telemetry_report();
    assert!(report.histograms.iter().all(|h| h.count == 0), "inert instruments");
}

#[test]
fn queue_backlog_anomaly_traces_to_filesystem() {
    // CSC/NERSC: "large or sudden changes in outstanding demand can
    // indicate ... a blockage in the queue"; here the blockage is a
    // degraded filesystem stretching I/O jobs so the queue backs up, and
    // a z-score detector on queue depth fires.
    // A backlog builds *gradually*, which evades windowed z-scores (the
    // baseline absorbs the ramp) — so sites watch the queue with a plain
    // threshold, and that is what we attach here.
    let builder = MonitoringSystem::builder(SimConfig::small());
    let queue_metric = builder.metrics().queue_depth;
    let mut mon = builder
        .attach_detector(DetectorAttachment::new(
            SeriesKey::new(queue_metric, CompId::SYSTEM),
            Box::new(ThresholdDetector::above(4.0)),
            SignalKind::MetricAnomaly,
            Severity::Warning,
            "queue depth anomaly",
        ))
        .build();
    // A stream of I/O jobs that fits comfortably when the filesystem is
    // healthy (~7.5 min effective runtime, one submitted every 8 min).
    for k in 0..90u64 {
        mon.submit_job(JobSpec::new(
            AppProfile::io_storm(&format!("io{k}")),
            "u",
            16,
            5 * MINUTE_MS,
            Ts::from_mins(k * 8),
        ));
    }
    mon.run_ticks(60);
    let healthy_anoms = mon.signals().iter().filter(|s| s.detail.contains("queue depth")).count();
    // Cripple the filesystem: jobs stretch ~10x, the queue backs up.
    for ost in 0..16 {
        mon.schedule_fault(Ts::from_mins(61), FaultKind::OstDegrade { ost, factor: 10.0 });
    }
    mon.run_ticks(120);
    let anoms: Vec<_> = mon.signals().iter().filter(|s| s.detail.contains("queue depth")).collect();
    assert!(anoms.len() > healthy_anoms, "backlog anomaly detected: {}", anoms.len());
    // And the operator's wait estimate balloons accordingly.
    let wait = mon.estimate_wait_ms(64).expect("fits eventually");
    assert!(wait > 30 * MINUTE_MS, "wait estimate reflects the backlog: {wait}");
}
