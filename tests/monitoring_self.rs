//! The monitoring system watching itself (and the CSC queue-backlog
//! story): gaps in expected data must surface as signals, and queue
//! anomalies must be traceable to filesystem problems.

use hpcmon::pipeline::DetectorAttachment;
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_analysis::ThresholdDetector;
use hpcmon_collect::Collector;
use hpcmon_metrics::{CompId, Frame, MetricId, Severity, SeriesKey, Ts, Unit, MINUTE_MS};
use hpcmon_response::SignalKind;
use hpcmon_sim::{AppProfile, FaultKind, JobSpec, SimEngine};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A site-specific collector that can be switched off mid-run — the
/// stand-in for a crashed collection daemon.
struct FlakyCollector {
    metric: MetricId,
    dead: Arc<AtomicBool>,
}

impl Collector for FlakyCollector {
    fn name(&self) -> &str {
        "site_custom"
    }

    fn collect(&mut self, engine: &SimEngine, frame: &mut Frame) {
        if self.dead.load(Ordering::Relaxed) {
            return; // silence: the failure mode under test
        }
        frame.push(self.metric, CompId::SYSTEM, engine.tick_count() as f64);
    }
}

#[test]
fn dead_collector_raises_monitoring_gap() {
    let builder = MonitoringSystem::builder(SimConfig::small());
    let metric = builder.registry().register("site.custom_counter", Unit::Count, "test feed");
    let dead = Arc::new(AtomicBool::new(false));
    let mut mon = builder
        .install_collector(Box::new(FlakyCollector { metric, dead: dead.clone() }))
        .build();
    mon.run_ticks(10);
    assert!(
        !mon.signals().iter().any(|s| s.kind == SignalKind::MonitoringGap),
        "healthy feeds raise nothing"
    );
    // The daemon dies silently.
    dead.store(true, Ordering::Relaxed);
    mon.run_ticks(5);
    let gaps: Vec<_> =
        mon.signals().iter().filter(|s| s.kind == SignalKind::MonitoringGap).collect();
    assert!(!gaps.is_empty(), "silence detected");
    assert!(gaps.iter().all(|s| s.detail.contains("site_custom")));
    // Recovery clears the condition for subsequent ticks.
    dead.store(false, Ordering::Relaxed);
    let before = gaps.len();
    mon.run_ticks(1); // one tick to beat again
    mon.run_ticks(3);
    let after = mon
        .signals()
        .iter()
        .filter(|s| s.kind == SignalKind::MonitoringGap)
        .count();
    // Cooldowns aside: no *new* gap signals once the feed is back.
    assert!(after <= before + 1, "before {before} after {after}");
}

#[test]
fn custom_collector_data_lands_in_the_store() {
    let builder = MonitoringSystem::builder(SimConfig::small());
    let metric = builder.registry().register("site.custom_counter", Unit::Count, "test feed");
    let mut mon = builder
        .install_collector(Box::new(FlakyCollector {
            metric,
            dead: Arc::new(AtomicBool::new(false)),
        }))
        .build();
    mon.run_ticks(5);
    // The metric registered via the builder resolves in the built system.
    assert_eq!(mon.registry().lookup("site.custom_counter"), Some(metric));
    let pts = mon.query().series(
        SeriesKey::new(metric, CompId::SYSTEM),
        hpcmon_store::TimeRange::all(),
    );
    assert_eq!(pts.len(), 5);
    assert_eq!(pts[0].1, 1.0);
    assert_eq!(pts[4].1, 5.0);
}

#[test]
fn queue_backlog_anomaly_traces_to_filesystem() {
    // CSC/NERSC: "large or sudden changes in outstanding demand can
    // indicate ... a blockage in the queue"; here the blockage is a
    // degraded filesystem stretching I/O jobs so the queue backs up, and
    // a z-score detector on queue depth fires.
    // A backlog builds *gradually*, which evades windowed z-scores (the
    // baseline absorbs the ramp) — so sites watch the queue with a plain
    // threshold, and that is what we attach here.
    let builder = MonitoringSystem::builder(SimConfig::small());
    let queue_metric = builder.metrics().queue_depth;
    let mut mon = builder
        .attach_detector(DetectorAttachment::new(
            SeriesKey::new(queue_metric, CompId::SYSTEM),
            Box::new(ThresholdDetector::above(4.0)),
            SignalKind::MetricAnomaly,
            Severity::Warning,
            "queue depth anomaly",
        ))
        .build();
    // A stream of I/O jobs that fits comfortably when the filesystem is
    // healthy (~7.5 min effective runtime, one submitted every 8 min).
    for k in 0..90u64 {
        mon.submit_job(JobSpec::new(
            AppProfile::io_storm(&format!("io{k}")),
            "u",
            16,
            5 * MINUTE_MS,
            Ts::from_mins(k * 8),
        ));
    }
    mon.run_ticks(60);
    let healthy_anoms = mon
        .signals()
        .iter()
        .filter(|s| s.detail.contains("queue depth"))
        .count();
    // Cripple the filesystem: jobs stretch ~10x, the queue backs up.
    for ost in 0..16 {
        mon.schedule_fault(Ts::from_mins(61), FaultKind::OstDegrade { ost, factor: 10.0 });
    }
    mon.run_ticks(120);
    let anoms: Vec<_> = mon
        .signals()
        .iter()
        .filter(|s| s.detail.contains("queue depth"))
        .collect();
    assert!(anoms.len() > healthy_anoms, "backlog anomaly detected: {}", anoms.len());
    // And the operator's wait estimate balloons accordingly.
    let wait = mon.estimate_wait_ms(64).expect("fits eventually");
    assert!(wait > 30 * MINUTE_MS, "wait estimate reflects the backlog: {wait}");
}
