//! Determinism of the parallel tick pipeline: the same scenario run with
//! `workers = 0` (serial), `1`, and `4` must produce identical
//! `TickReport`s, identical signal streams, and — with self-telemetry off,
//! which removes wall-clock-valued series (latency p95s) — a byte-identical
//! store.
//!
//! Telemetry-on runs are still compared on reports, signals, and the
//! *set* of stored series: only the values of timing-derived series may
//! differ (they differ between two serial runs too; see DESIGN.md §9).

use hpcmon::pipeline::DetectorAttachment;
use hpcmon::system::TickReport;
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_analysis::ZScoreDetector;
use hpcmon_collect::StdMetrics;
use hpcmon_metrics::{CompId, MetricRegistry, SeriesKey, Severity, Ts};
use hpcmon_response::{Signal, SignalKind};
use hpcmon_sim::{AppProfile, FaultKind, JobSpec};

const WORKER_COUNTS: [usize; 3] = [0, 1, 4];

fn build(workers: usize, self_telemetry: bool) -> MonitoringSystem {
    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .self_telemetry(self_telemetry)
        .workers(workers)
        .attach_detector(DetectorAttachment::new(
            SeriesKey::new(
                StdMetrics::register(&MetricRegistry::new()).probe_ost_latency,
                CompId::ost(3),
            ),
            Box::new(ZScoreDetector::new(32, 6.0).with_sigma_floor(0.05)),
            SignalKind::MetricAnomaly,
            Severity::Error,
            "OST latency anomaly",
        ))
        .build();
    mon.submit_job(JobSpec::new(
        AppProfile::checkpointing("climate"),
        "bob",
        32,
        40 * 60_000,
        Ts::ZERO,
    ));
    mon.submit_job(JobSpec::new(
        AppProfile::compute_heavy("stencil"),
        "alice",
        16,
        20 * 60_000,
        Ts::from_mins(3),
    ));
    mon.schedule_fault(Ts::from_mins(5), FaultKind::NodeHang { node: 3 });
    mon.schedule_fault(Ts::from_mins(16), FaultKind::OstDegrade { ost: 3, factor: 12.0 });
    mon
}

/// Every stored point of every series, in deterministic series order.
fn dump_store(mon: &MonitoringSystem) -> Vec<(SeriesKey, Vec<(Ts, f64)>)> {
    mon.store()
        .all_series()
        .into_iter()
        .map(|k| (k, mon.store().query(k, Ts::ZERO, Ts(u64::MAX))))
        .collect()
}

fn run(workers: usize, self_telemetry: bool) -> (Vec<TickReport>, Vec<Signal>, MonitoringSystem) {
    let mut mon = build(workers, self_telemetry);
    let reports: Vec<TickReport> = (0..25).map(|_| mon.tick()).collect();
    let signals = mon.signals().to_vec();
    (reports, signals, mon)
}

#[test]
fn store_contents_are_byte_identical_across_worker_counts() {
    // Telemetry off: no wall-clock-valued series, so the ENTIRE store —
    // every series, every point, every value — must match bit-for-bit.
    let (base_reports, base_signals, base_mon) = run(WORKER_COUNTS[0], false);
    let base_dump = dump_store(&base_mon);
    assert!(base_reports.iter().any(|r| !r.signals.is_empty()), "scenario produces signals");
    for &workers in &WORKER_COUNTS[1..] {
        let (reports, signals, mon) = run(workers, false);
        assert_eq!(base_reports, reports, "TickReports differ at workers={workers}");
        assert_eq!(base_signals, signals, "signal streams differ at workers={workers}");
        assert_eq!(base_mon.store().stats(), mon.store().stats());
        let dump = dump_store(&mon);
        assert_eq!(base_dump.len(), dump.len());
        for ((bk, bp), (k, p)) in base_dump.iter().zip(&dump) {
            assert_eq!(bk, k, "series sets diverge at workers={workers}");
            assert_eq!(bp.len(), p.len(), "{bk:?} point counts differ at workers={workers}");
            for ((bt, bv), (t, v)) in bp.iter().zip(p) {
                assert_eq!(bt, t, "{bk:?} timestamps differ at workers={workers}");
                assert_eq!(bv.to_bits(), v.to_bits(), "{bk:?} values differ at workers={workers}");
            }
        }
    }
}

#[test]
fn reports_and_signals_match_with_self_telemetry_on() {
    // With the self feed running, timing-valued series (stage latency
    // p95s) are wall-clock dependent — nondeterministic even between two
    // serial runs.  Everything else must still match: per-tick reports,
    // the signal stream, and the set of series the store holds.
    let (base_reports, base_signals, base_mon) = run(WORKER_COUNTS[0], true);
    for &workers in &WORKER_COUNTS[1..] {
        let (reports, signals, mon) = run(workers, true);
        assert_eq!(base_reports, reports, "TickReports differ at workers={workers}");
        assert_eq!(base_signals, signals, "signal streams differ at workers={workers}");
        assert_eq!(
            base_mon.store().all_series(),
            mon.store().all_series(),
            "series sets differ at workers={workers}"
        );
        let s = mon.store().stats();
        let b = base_mon.store().stats();
        assert_eq!(
            (b.series, b.hot_points, b.warm_points),
            (s.series, s.hot_points, s.warm_points)
        );
    }
}

#[test]
fn parallel_run_is_reproducible_with_itself() {
    // Two runs at the same worker count must agree — concurrency admitted
    // no scheduling nondeterminism into the data path.
    let (r1, s1, m1) = run(4, false);
    let (r2, s2, m2) = run(4, false);
    assert_eq!(r1, r2);
    assert_eq!(s1, s2);
    assert_eq!(dump_store(&m1), dump_store(&m2));
}
