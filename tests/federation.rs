//! Federation integration suite: scatter-gather vs a merged-cluster
//! oracle, partition provenance, clock-skew alignment, deadline shedding,
//! and seed + worker-count bit-identity.

use hpcmon_chaos::{ChaosFault, ChaosPlan, ScheduledFault};
use hpcmon_federation::{
    site_comp, FedResponse, Federation, FederationConfig, SiteSpec, SiteStatus, WanLinkSpec,
};
use hpcmon_gateway::QueryRequest;
use hpcmon_metrics::{CompId, SeriesKey, Ts};
use hpcmon_response::Consumer;
use hpcmon_sim::{SimConfig, TopologySpec};
use hpcmon_store::{AggFn, TimeRange};
use std::collections::BTreeMap;

/// A small member-site machine: 16 nodes so multi-site suites stay fast.
fn site_config(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.topology = TopologySpec::Torus3D { dims: [2, 2, 2], nodes_per_router: 2 };
    cfg.seed = seed;
    cfg
}

fn sites(n: usize) -> Vec<SiteSpec> {
    (0..n).map(|i| SiteSpec::new(format!("site{i}"), site_config(100 + i as u64))).collect()
}

fn admin() -> Consumer {
    Consumer::admin("fed-dashboard")
}

#[test]
fn scatter_gather_matches_merged_cluster_oracle() {
    let mut fed = Federation::new(FederationConfig::new(sites(3)));
    fed.run_ticks(20);

    // Oracle 1: the global power aggregate, computed straight off the
    // member stores (one System series per site, summed per timestamp).
    let metric = fed.site_system(0).metrics().system_power;
    let mut oracle: BTreeMap<Ts, f64> = BTreeMap::new();
    for i in 0..fed.num_sites() {
        let key = SeriesKey::new(metric, CompId::SYSTEM);
        for (ts, v) in fed.site_system(i).store().query(key, Ts::ZERO, Ts(u64::MAX)) {
            *oracle.entry(ts).or_insert(0.0) += v;
        }
    }
    let request =
        QueryRequest::AggregateAcross { metric, range: TimeRange::all(), agg: AggFn::Sum };
    let result = fed.federated_query(&admin(), &request, 1_000);
    assert!(result.complete(), "no faults: every site answers");
    match &result.merged {
        FedResponse::Points(points) => {
            assert_eq!(points.len(), oracle.len());
            for (got, want) in points.iter().zip(oracle.iter()) {
                assert_eq!(got.0, *want.0);
                assert!((got.1 - want.1).abs() < 1e-9, "sum mismatch at {:?}", got.0);
            }
        }
        other => panic!("expected merged points, got {other:?}"),
    }

    // Oracle 2: global top-k CPU — per-site rankings combined and
    // re-sorted must equal the federated merge (with site attribution).
    let cpu = fed.site_system(0).metrics().node_cpu;
    let at = Ts(20 * fed.tick_ms());
    let mut rows: Vec<(usize, u32, f64)> = Vec::new();
    for i in 0..fed.num_sites() {
        for (comp, v) in fed.site_system(i).query().top_components_at(cpu, at, 1_000, 1_000) {
            rows.push((i, comp.index, v));
        }
    }
    rows.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    rows.truncate(10);
    let request = QueryRequest::TopComponentsAt { metric: cpu, at, tolerance_ms: 1_000, limit: 10 };
    let result = fed.federated_query(&admin(), &request, 1_000);
    match &result.merged {
        FedResponse::Ranked(ranked) => {
            assert_eq!(ranked.len(), rows.len());
            for (got, want) in ranked.iter().zip(rows.iter()) {
                assert_eq!(got.site, format!("site{}", want.0));
                assert_eq!(got.comp.index, want.1);
                assert_eq!(got.value.to_bits(), want.2.to_bits());
            }
        }
        other => panic!("expected merged ranking, got {other:?}"),
    }
}

#[test]
fn partition_yields_partial_result_with_provenance() {
    let partitioned = ["site2", "site5", "site7"];
    let plan = ChaosPlan::from_faults(
        partitioned
            .iter()
            .map(|site| ScheduledFault {
                at_tick: 5,
                fault: ChaosFault::WanPartition { site: site.to_string(), ticks: 20 },
            })
            .collect(),
    );
    let mut fed = Federation::new(FederationConfig::new(sites(10)).link_plan(7, plan));
    fed.run_ticks(8);

    let cpu = fed.site_system(0).metrics().node_cpu;
    let request = QueryRequest::TopComponentsAt {
        metric: cpu,
        at: Ts(8 * fed.tick_ms()),
        tolerance_ms: 1_000,
        limit: 5,
    };
    let result = fed.federated_query(&admin(), &request, 1_000);

    assert!(!result.complete());
    assert_eq!(result.unreachable_sites(), partitioned.to_vec());
    assert_eq!(result.outcomes.len(), 10, "every site accounted for");
    for outcome in &result.outcomes {
        if partitioned.contains(&outcome.site.as_str()) {
            assert_eq!(outcome.status, SiteStatus::Partitioned, "{}", outcome.site);
        } else {
            assert_eq!(outcome.status, SiteStatus::Answered, "{}", outcome.site);
        }
    }
    match &result.merged {
        FedResponse::Ranked(rows) => {
            assert!(!rows.is_empty(), "partial result still carries data");
            assert!(rows.iter().all(|r| !partitioned.contains(&r.site.as_str())));
        }
        other => panic!("expected ranking, got {other:?}"),
    }
    assert_eq!(fed.wan_counts().partition, 3);
}

#[test]
fn bit_identity_across_worker_counts() {
    let plan = || {
        ChaosPlan::from_faults(vec![
            ScheduledFault {
                at_tick: 4,
                fault: ChaosFault::WanPartition { site: "site0".into(), ticks: 3 },
            },
            ScheduledFault {
                at_tick: 6,
                fault: ChaosFault::WanDelay { site: "site1".into(), added_ticks: 2, ticks: 5 },
            },
            ScheduledFault {
                at_tick: 10,
                fault: ChaosFault::WanBandwidth {
                    site: "site1".into(),
                    bytes_per_tick: 64,
                    ticks: 4,
                },
            },
        ])
    };
    let run = |workers: usize| {
        let specs = sites(3).into_iter().map(|s| s.workers(workers)).collect();
        let mut fed = Federation::new(FederationConfig::new(specs).link_plan(11, plan()));
        fed.run_ticks(25);
        let metric = fed.site_system(0).metrics().system_power;
        let request =
            QueryRequest::AggregateAcross { metric, range: TimeRange::all(), agg: AggFn::Sum };
        let answer = fed.federated_query(&admin(), &request, 1_000);
        (fed.canonical_store(), serde_json::to_string(&answer).expect("serializable"))
    };
    let (store0, answer0) = run(0);
    let (store2, answer2) = run(2);
    assert_eq!(store0, store2, "rollup stores must be bit-identical");
    assert_eq!(answer0, answer2, "federated answers must be bit-identical");
}

#[test]
fn clock_skew_is_aligned_not_interleaved() {
    const SKEW_TICKS: u64 = 5;
    let mut specs = sites(2);
    specs[1] = specs[1].clone().epoch_offset_ticks(SKEW_TICKS);
    let mut fed = Federation::new(FederationConfig::new(specs));
    fed.run_ticks(10);
    let tick_ms = fed.tick_ms();

    // The skew is real: site1's store runs on its own clock, ahead of
    // site0 by SKEW_TICKS ticks.  A naive merge interleaving raw
    // site-local timestamps would mis-order these samples.
    let metric = fed.site_system(0).metrics().system_power;
    let key = SeriesKey::new(metric, CompId::SYSTEM);
    let raw0 = fed.site_system(0).store().query(key, Ts::ZERO, Ts(u64::MAX));
    let raw1 = fed.site_system(1).store().query(key, Ts::ZERO, Ts(u64::MAX));
    assert_eq!(raw0.first().unwrap().0, Ts(tick_ms));
    assert_eq!(raw1.first().unwrap().0, Ts((SKEW_TICKS + 1) * tick_ms));

    // Naive merge would see 20 distinct timestamps; the aligned merge
    // sees 10, one per federation tick, each the sum of both sites.
    let request =
        QueryRequest::AggregateAcross { metric, range: TimeRange::all(), agg: AggFn::Sum };
    let result = fed.federated_query(&admin(), &request, 1_000);
    assert!(result.complete());
    match &result.merged {
        FedResponse::Points(points) => {
            assert_eq!(points.len(), 10, "one aligned point per tick, not an interleaving");
            for (i, (ts, v)) in points.iter().enumerate() {
                assert_eq!(*ts, Ts((i as u64 + 1) * tick_ms));
                let want = raw0[i].1 + raw1[i].1;
                assert!((v - want).abs() < 1e-9, "aligned sum at tick {}", i + 1);
            }
        }
        other => panic!("expected points, got {other:?}"),
    }

    // Rollups align too: both sites' fed series share the same fed-time
    // timestamps in the rollup store.
    let ids = fed.metric_ids();
    let ts_of = |comp: CompId| -> Vec<u64> {
        fed.store()
            .query(SeriesKey::new(ids.power_w, comp), Ts::ZERO, Ts(u64::MAX))
            .into_iter()
            .map(|(t, _)| t.0)
            .collect()
    };
    let t0 = ts_of(site_comp(0));
    let t1 = ts_of(site_comp(1));
    assert!(!t0.is_empty());
    assert_eq!(t0, t1, "rollup timestamps re-aligned to federation time");
}

#[test]
fn deadline_budget_sheds_slow_site() {
    let mut specs = sites(3);
    specs[2] = specs[2].clone().link(WanLinkSpec {
        latency_ticks: 5,
        bandwidth_bytes_per_tick: None,
        max_backlog: 64,
    });
    let mut fed = Federation::new(FederationConfig::new(specs));
    fed.run_ticks(10);

    let metric = fed.site_system(0).metrics().system_power;
    let request =
        QueryRequest::AggregateAcross { metric, range: TimeRange::all(), agg: AggFn::Sum };
    // Budget 4 ticks: site2's round trip is 10 ticks — shed, with the
    // arithmetic in the provenance.
    let result = fed.federated_query(&admin(), &request, 4);
    assert_eq!(result.outcomes[0].status, SiteStatus::Answered);
    assert_eq!(result.outcomes[1].status, SiteStatus::Answered);
    assert_eq!(result.outcomes[2].status, SiteStatus::TimedOut { rtt_ticks: 10, budget_ticks: 4 });
    assert_eq!(result.unreachable_sites(), vec!["site2"]);
    assert_eq!(fed.deadline_shed(), 1);

    // The shed shows up on the federation's own telemetry series after
    // the next tick publishes self series.
    fed.tick();
    let ids = fed.metric_ids();
    let series = fed.store().query(
        SeriesKey::new(ids.self_deadline_shed, CompId::SYSTEM),
        Ts::ZERO,
        Ts(u64::MAX),
    );
    assert_eq!(series.last().map(|(_, v)| *v), Some(1.0));
}

#[test]
fn rollups_cross_the_wan_with_latency_and_stay_o_sites() {
    let mut specs = sites(2);
    specs[1] = specs[1].clone().link(WanLinkSpec {
        latency_ticks: 3,
        bandwidth_bytes_per_tick: None,
        max_backlog: 64,
    });
    let mut fed = Federation::new(FederationConfig::new(specs));
    let ids = fed.metric_ids();

    fed.run_ticks(2);
    let series_for = |fed: &Federation, i: usize| {
        fed.store().query(SeriesKey::new(ids.power_w, site_comp(i)), Ts::ZERO, Ts(u64::MAX)).len()
    };
    assert!(series_for(&fed, 0) > 0, "1-tick link has delivered");
    assert_eq!(series_for(&fed, 1), 0, "3-tick link still in flight");
    fed.run_ticks(3);
    assert!(series_for(&fed, 1) > 0, "slow link catches up");
    assert_eq!(
        fed.rollups_delivered(),
        fed.store().query(SeriesKey::new(ids.power_w, site_comp(0)), Ts::ZERO, Ts(u64::MAX)).len()
            as u64
            + series_for(&fed, 1) as u64
    );

    // The point of the rollup plane: the federation store holds O(sites)
    // series while each member store holds O(nodes).
    let fed_series = fed.store().all_series().len();
    let site_series = fed.site_system(0).store().all_series().len();
    assert!(
        fed_series < site_series / 2,
        "fed store has {fed_series} series vs {site_series} per member"
    );
}

/// WAN link state is republished as `hpcmon.self.fed.wan.*` gauges (one
/// series per member site), and with the head-level health plane on, a
/// WAN partition pages the per-site `federation/wan-delivery` SLO with
/// deterministic tick stamps and a per-site rollup row on the board.
#[test]
fn wan_telemetry_and_head_health_page_on_partition() {
    use hpcmon_health::Transition;
    let plan = ChaosPlan::from_faults(vec![ScheduledFault {
        at_tick: 4,
        fault: ChaosFault::WanPartition { site: "site1".into(), ticks: 4 },
    }]);
    let mut fed = Federation::new(FederationConfig::new(sites(2)).link_plan(3, plan).health(true));
    fed.run_ticks(30);

    // Every link publishes all three gauges every tick, per site comp.
    let ids = fed.metric_ids();
    for i in 0..2 {
        for metric in [ids.wan_backlog_depth, ids.wan_link_dropped, ids.wan_latency_ticks] {
            let pts =
                fed.store().query(SeriesKey::new(metric, site_comp(i)), Ts::ZERO, Ts(u64::MAX));
            assert_eq!(pts.len(), 30, "{} at site{i} publishes every tick", metric.0);
        }
    }
    // The partition is visible in the gauge: site1's backlog peak (the
    // queue behind the cut link) clears the healthy link's steady-state
    // in-flight depth.
    let peak = |i: usize| {
        fed.store()
            .query(SeriesKey::new(ids.wan_backlog_depth, site_comp(i)), Ts::ZERO, Ts(u64::MAX))
            .into_iter()
            .fold(0.0f64, |m, (_, v)| m.max(v))
    };
    assert!(peak(1) > peak(0), "partition queues rollups: {} vs {}", peak(1), peak(0));

    // Head health pages exactly one per-site episode, with exact stamps
    // for onset (the partition lands at tick 4, confirms at 5).
    let eps: Vec<(u64, Transition)> = fed
        .alert_events()
        .iter()
        .filter(|e| e.key == "federation/wan-delivery@site1")
        .map(|e| (e.tick, e.transition))
        .collect();
    assert_eq!(eps[0], (4, Transition::Pending), "{}", fed.health_timeline());
    assert_eq!(eps[1], (5, Transition::Firing));
    assert_eq!(eps.len(), 3, "one episode: {}", fed.health_timeline());
    let (resolved_tick, t) = eps[2];
    assert_eq!(t, Transition::Resolved);
    assert!((10..=20).contains(&resolved_tick), "resolves after the window clears");
    assert!(
        !fed.alert_events().iter().any(|e| e.key.ends_with("@site0")),
        "the healthy site never pages"
    );

    // The operator board carries one rollup row per site.
    let rep = fed.health_report().expect("health is on");
    let row = |name: &str| rep.sites.iter().find(|s| s.site == name).expect("site row");
    assert_eq!(rep.sites.len(), 2);
    assert_eq!(row("site1").firing, 0, "resolved by tick 30");
    assert_eq!(row("site0").firing, 0);
}
