//! Crash-tolerant durability: WAL + checkpoint recovery under disk-fault
//! chaos (DESIGN.md §15).
//!
//! These tests pin the durability contract end to end: a system with the
//! plane attached produces the *same state-hash chain* as a twin without
//! it (durability is hash-neutral); a crash at any tick recovers — restore
//! the newest checkpoint, replay the WAL tail — to a state byte-identical
//! to an uninterrupted reference at the resume tick; fsync-per-tick loses
//! zero ticks, group-commit loses at most one window; torn tails are
//! truncated, mid-log corruption is diagnosed to a tick and fails closed,
//! and none of it ever panics — including under arbitrary truncations and
//! single-bit flips of the on-disk files.

use hpcmon::health::{HealthConfig, Transition};
use hpcmon::system::durability::decode_tick_record;
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_chaos::{ChaosFault, ChaosPlan, ScheduledFault};
use hpcmon_durability::wal::{decode_checkpoint, scan_segment};
use hpcmon_durability::{
    DurabilityConfig, DurabilityPlane, RecoveredState, ScanEnd, SimDisk, StorageMedium, SyncPolicy,
};
use hpcmon_metrics::Ts;
use hpcmon_sim::{AppProfile, JobSpec};
use proptest::prelude::*;
use std::sync::{Arc, Once};

/// Injected collector panics unwind through the supervisor's
/// `catch_unwind`; keep the default hook from spamming test output with
/// expected backtraces while leaving real panics loud.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("chaos: injected collector panic"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn plan(faults: Vec<(u64, ChaosFault)>) -> ChaosPlan {
    ChaosPlan::from_faults(
        faults.into_iter().map(|(at_tick, fault)| ScheduledFault { at_tick, fault }).collect(),
    )
}

/// Pipeline and disk faults that are all lossless under fsync-per-tick:
/// refused appends queue in the backlog and retry, torn writes only bite
/// unsynced bytes, and there is deliberately no `DiskCorruptByte` (bit rot
/// in the live WAL tail is legitimate loss, exercised separately).
fn lossless_plan() -> ChaosPlan {
    plan(vec![
        (3, ChaosFault::CollectorPanic { collector: "power".into() }),
        (4, ChaosFault::BrokerTopicStall { topic: "metrics/frame".into(), ticks: 2 }),
        (6, ChaosFault::DiskWriteFail { ticks: 2 }),
        (9, ChaosFault::StoreWriteFail { shard: 0, ticks: 2 }),
        (11, ChaosFault::DiskFull { ticks: 2 }),
        (15, ChaosFault::DiskTornWrite),
    ])
}

fn builder(workers: usize) -> hpcmon::system::MonitorBuilder {
    MonitoringSystem::builder(SimConfig::small()).self_telemetry(false).workers(workers)
}

/// External inputs submitted before tick 1; the WAL records them, so the
/// recovered system must *not* have them resubmitted by hand.
fn seed_inputs(mon: &mut MonitoringSystem) {
    mon.submit_job(JobSpec::new(
        AppProfile::checkpointing("climate"),
        "bob",
        32,
        40 * 60_000,
        Ts::ZERO,
    ));
}

/// Canonical byte-diffable image of the full core state.
fn state_json(mon: &MonitoringSystem) -> String {
    serde_json::to_string(&mon.snapshot()).expect("snapshot serializes")
}

/// Run a fresh reference twin (no durability plane) for `ticks` ticks and
/// return its per-tick hash chain plus the system itself.
fn reference_run(
    mk: impl Fn() -> hpcmon::system::MonitorBuilder,
    ticks: u64,
) -> (Vec<hpcmon::TickStateHash>, MonitoringSystem) {
    let mut mon = mk().build();
    mon.set_state_hashing(true);
    seed_inputs(&mut mon);
    let mut chain = Vec::new();
    for _ in 0..ticks {
        mon.tick();
        chain.push(mon.last_state_hash().expect("hashing on"));
    }
    (chain, mon)
}

/// Fsync-per-tick: crash at an arbitrary tick under active chaos
/// (write-fail, disk-full, torn-write windows all in flight) and recover
/// with **zero loss** — the recovered state is byte-identical to an
/// uninterrupted reference, at every worker count.
#[test]
fn fsync_crash_recovers_zero_loss_at_workers_0_and_4() {
    quiet_injected_panics();
    let crash_tick = 17u64;
    let cfg = DurabilityConfig { sync: SyncPolicy::EveryTick, checkpoint_every: 8, scrub_every: 4 };
    for workers in [0usize, 4] {
        let mk = move || builder(workers).chaos(7, lossless_plan());
        let (chain, mut reference) = reference_run(mk, crash_tick);

        let disk = Arc::new(SimDisk::new());
        let mut durable = mk().durability(disk.clone(), cfg).build();
        durable.set_state_hashing(true);
        seed_inputs(&mut durable);
        for _ in 0..crash_tick {
            durable.tick();
        }
        // The plane never feeds back into monitored state: same hash chain.
        assert_eq!(
            durable.last_state_hash().unwrap(),
            chain[crash_tick as usize - 1],
            "durability plane must be hash-neutral (workers={workers})"
        );
        let counts = durable.durability_counts().unwrap();
        assert_eq!(counts.records_appended, crash_tick, "backlog drained every record");
        assert!(counts.append_failures > 0, "the fault windows actually bit");
        assert!(counts.checkpoints >= 2);
        drop(durable);
        disk.crash(); // power cut; fsync-per-tick means nothing was pending

        let mut recovered = mk().build();
        recovered.set_state_hashing(true);
        let outcome = recovered.recover_from_medium(disk.clone(), cfg);
        assert_eq!(outcome.resumed_tick, crash_tick, "zero ticks lost (workers={workers})");
        assert_eq!(outcome.hash_mismatches, 0, "{outcome:?}");
        assert_eq!(outcome.undecodable_records, 0);
        assert_eq!(outcome.checkpoint_tick, Some(16), "checkpoint at tick 16 restored");
        assert_eq!(outcome.replayed_ticks, 1, "only the tail past the checkpoint replays");
        assert_eq!(recovered.last_state_hash().unwrap(), chain[crash_tick as usize - 1]);
        assert_eq!(
            state_json(&recovered),
            state_json(&reference),
            "recovered state byte-identical to the uninterrupted reference"
        );
        // And the recovered system continues in lockstep with the reference.
        for _ in 0..3 {
            reference.tick();
            recovered.tick();
        }
        assert_eq!(recovered.last_state_hash(), reference.last_state_hash());
    }
}

/// Group-commit: a crash between syncs loses at most one commit window of
/// ticks, and the survivors recover to a byte-identical prefix state.
#[test]
fn group_commit_crash_loses_at_most_one_window() {
    quiet_injected_panics();
    let crash_tick = 18u64;
    let cfg =
        DurabilityConfig { sync: SyncPolicy::GroupCommit(4), checkpoint_every: 0, scrub_every: 0 };
    let mk = || builder(0).chaos(7, lossless_plan());
    let (chain, _reference) = reference_run(mk, crash_tick);

    let disk = Arc::new(SimDisk::new());
    let mut durable = mk().durability(disk.clone(), cfg).build();
    durable.set_state_hashing(true);
    seed_inputs(&mut durable);
    for _ in 0..crash_tick {
        durable.tick();
    }
    drop(durable);
    // The tick-15 DiskTornWrite is armed: the crash keeps a seeded partial
    // prefix of the unsynced tail — a record cut mid-frame.
    disk.crash();

    let mut recovered = mk().build();
    recovered.set_state_hashing(true);
    let outcome = recovered.recover_from_medium(disk.clone(), cfg);
    let resumed = outcome.resumed_tick;
    assert!(resumed <= crash_tick);
    assert!(
        resumed + cfg.sync.loss_bound() >= crash_tick,
        "lost more than one commit window: resumed {resumed}, crashed {crash_tick}"
    );
    assert!(resumed >= 15, "everything up to the last group sync survives");
    assert_eq!(outcome.hash_mismatches, 0, "{outcome:?}");
    assert_eq!(outcome.replayed_ticks, resumed, "no checkpoint: the whole WAL replays");
    assert_eq!(recovered.last_state_hash().unwrap(), chain[resumed as usize - 1]);

    // Byte-diff against a fresh reference run to exactly the resume tick.
    let (_, ref_at_resume) = reference_run(mk, resumed);
    assert_eq!(state_json(&recovered), state_json(&ref_at_resume));
}

/// A flipped bit in the middle of the log is *corruption*, not a crash
/// artifact: recovery diagnoses it to the exact tick, cuts the log there,
/// recovers the clean prefix, and never panics.
#[test]
fn midlog_corruption_fails_closed_to_a_tick() {
    let cfg = DurabilityConfig { sync: SyncPolicy::EveryTick, checkpoint_every: 0, scrub_every: 0 };
    let mk = || builder(0);
    let (chain, _reference) = reference_run(mk, 12);

    let disk = Arc::new(SimDisk::new());
    let mut durable = mk().durability(disk.clone(), cfg).build();
    durable.set_state_hashing(true);
    seed_inputs(&mut durable);
    for _ in 0..12 {
        durable.tick();
    }
    drop(durable);

    // Flip one payload bit inside the tick-6 record of the sole segment.
    let seg = disk.read("wal-0000000000.seg").unwrap();
    let (records, end) = scan_segment(&seg);
    assert_eq!(end, ScanEnd::Clean);
    assert_eq!(records.len(), 12);
    let mut off = 8; // segment magic
    for r in &records[..5] {
        off += 17 + r.payload.len(); // record header + payload
    }
    let mut mutated = seg.clone();
    mutated[off + 17 + 3] ^= 0x01;
    let bad_disk = Arc::new(SimDisk::new());
    bad_disk.overwrite("wal-0000000000.seg", &mutated).unwrap();

    let mut recovered = mk().build();
    recovered.set_state_hashing(true);
    let outcome = recovered.recover_from_medium(bad_disk, cfg);
    assert_eq!(outcome.report.corrupt_events, 1);
    assert_eq!(outcome.report.first_bad_tick, Some(6), "damage pinned to the flipped record");
    assert_eq!(outcome.resumed_tick, 5, "clean prefix before the damage recovers");
    assert_eq!(outcome.hash_mismatches, 0);
    assert_eq!(recovered.last_state_hash().unwrap(), chain[4]);
    let (_, ref_at_resume) = reference_run(mk, 5);
    assert_eq!(state_json(&recovered), state_json(&ref_at_resume));
}

/// Dense disk chaos — bit rot, write failures, torn writes, a full disk —
/// with crashes dropped at different ticks: recovery never panics and is
/// always *prefix-consistent* (the recovered state equals an
/// uninterrupted reference at whatever tick it resumed), even when rot in
/// the live tail makes some loss legitimate.
#[test]
fn crash_soak_under_disk_chaos_is_prefix_consistent() {
    quiet_injected_panics();
    let soak_plan = || {
        plan(vec![
            (2, ChaosFault::DiskCorruptByte),
            (3, ChaosFault::DiskWriteFail { ticks: 2 }),
            (5, ChaosFault::DiskTornWrite),
            (6, ChaosFault::DiskFull { ticks: 2 }),
            (9, ChaosFault::DiskCorruptByte),
            (10, ChaosFault::CollectorPanic { collector: "power".into() }),
            (13, ChaosFault::DiskTornWrite),
            (14, ChaosFault::DiskCorruptByte),
        ])
    };
    let cfg =
        DurabilityConfig { sync: SyncPolicy::GroupCommit(2), checkpoint_every: 4, scrub_every: 3 };
    for crash_tick in [7u64, 16] {
        let mk = || builder(0).chaos(23, soak_plan());
        let disk = Arc::new(SimDisk::new());
        let mut durable = mk().durability(disk.clone(), cfg).build();
        durable.set_state_hashing(true);
        seed_inputs(&mut durable);
        for _ in 0..crash_tick {
            durable.tick();
        }
        drop(durable);
        disk.crash();

        let mut recovered = mk().build();
        recovered.set_state_hashing(true);
        let outcome = recovered.recover_from_medium(disk.clone(), cfg);
        let resumed = outcome.resumed_tick;
        assert!(resumed <= crash_tick, "recovery cannot invent ticks");
        assert_eq!(outcome.hash_mismatches, 0, "replayed state must match the recorded hashes");

        // A resume at tick 0 means the whole log was destroyed — and with
        // it the inputs submitted before tick 1, so the reference for that
        // prefix is a fresh, un-seeded build.
        let mut ref_at_resume = if resumed == 0 {
            let mut fresh = mk().build();
            fresh.set_state_hashing(true);
            fresh
        } else {
            reference_run(mk, resumed).1
        };
        assert_eq!(
            state_json(&recovered),
            state_json(&ref_at_resume),
            "crash at {crash_tick}, resumed {resumed}: prefix not consistent ({:?})",
            outcome.report
        );
        // Still in lockstep going forward.
        ref_at_resume.tick();
        recovered.tick();
        assert_eq!(recovered.last_state_hash(), ref_at_resume.last_state_hash());
    }
}

/// A sustained disk-fault window burns the `store.durability` SLO budget:
/// the health plane raises the durability alert and resolves it once the
/// backlog drains.
#[test]
fn disk_fault_window_fires_the_durability_slo() {
    let cfg = DurabilityConfig { sync: SyncPolicy::EveryTick, checkpoint_every: 8, scrub_every: 0 };
    let disk = Arc::new(SimDisk::new());
    let mut mon = builder(0)
        .chaos(11, plan(vec![(4, ChaosFault::DiskWriteFail { ticks: 12 })]))
        .health(HealthConfig::standard().durability())
        .durability(disk, cfg)
        .build();
    mon.run_ticks(36);
    let transitions: Vec<(u64, Transition)> = mon
        .alert_events()
        .iter()
        .filter(|e| e.key == "store/durability")
        .map(|e| (e.tick, e.transition))
        .collect();
    assert!(
        transitions.iter().any(|(_, t)| *t == Transition::Firing),
        "durability SLO never fired: {transitions:?}\n{}",
        mon.health_timeline()
    );
    assert!(
        transitions.iter().any(|(_, t)| *t == Transition::Resolved),
        "durability SLO never resolved after the window: {transitions:?}"
    );
}

/// The WAL payload is the real thing: each record decodes to the tick's
/// external inputs, its state hash, and every sample of the published
/// frame.
#[test]
fn wal_records_carry_inputs_frame_samples_and_hashes() {
    let cfg = DurabilityConfig { sync: SyncPolicy::EveryTick, checkpoint_every: 0, scrub_every: 0 };
    let disk = Arc::new(SimDisk::new());
    let mut mon = builder(0).durability(disk.clone(), cfg).build();
    mon.set_state_hashing(true);
    seed_inputs(&mut mon);
    mon.run_ticks(3);

    let seg = disk.read("wal-0000000000.seg").unwrap();
    let (records, end) = scan_segment(&seg);
    assert_eq!(end, ScanEnd::Clean);
    assert_eq!(records.len(), 3);
    for (i, r) in records.iter().enumerate() {
        let tick = i as u64 + 1;
        assert_eq!(r.tick, tick);
        let (dtr, samples) = decode_tick_record(&r.payload).expect("record decodes");
        assert_eq!(dtr.tick, tick);
        let hash = dtr.hash.expect("hashing was on, so records carry the chain");
        assert_eq!(hash.tick, tick);
        assert!(
            samples.len() > 100,
            "frame samples are durable ({} at tick {tick})",
            samples.len()
        );
    }
    let (first, _) = decode_tick_record(&records[0].payload).unwrap();
    assert_eq!(first.inputs.jobs.len(), 1, "tick 1 recorded the submitted job");
}

// ---------------------------------------------------------------------------
// Property tests: arbitrary damage to the on-disk files (satellite: every
// truncation prefix and every single-bit flip).  These drive the plane
// directly with synthetic payloads so thousands of recoveries stay cheap.
// ---------------------------------------------------------------------------

fn plane_cfg() -> DurabilityConfig {
    DurabilityConfig { sync: SyncPolicy::EveryTick, checkpoint_every: 5, scrub_every: 0 }
}

fn synthetic_payload(tick: u64) -> Vec<u8> {
    (0..40u8).map(|i| (tick as u8).wrapping_mul(31).wrapping_add(i)).collect()
}

/// Record 14 ticks with checkpoints at 5 and 10, then hand back the
/// durable file images.  Retention leaves `ckpt-5`, `ckpt-10`, `wal-6`
/// (ticks 6–10) and `wal-11` (ticks 11–14).
fn recorded_log() -> Vec<(String, Vec<u8>)> {
    let disk = Arc::new(SimDisk::new());
    let mut plane = DurabilityPlane::new(disk.clone(), plane_cfg());
    for tick in 1..=14u64 {
        plane.append_tick(tick, &synthetic_payload(tick));
        plane.end_tick(tick);
        if tick % 5 == 0 {
            plane.checkpoint(tick, format!("snap-{tick}").as_bytes()).unwrap();
        }
    }
    let files = disk.durable_files();
    assert_eq!(files.len(), 4, "{files:?}");
    files
}

/// Whether a file image is self-evidently damaged, by the same CRC rules
/// recovery uses.
fn is_damaged(name: &str, bytes: &[u8]) -> bool {
    if name.ends_with(".seg") {
        !matches!(scan_segment(bytes).1, ScanEnd::Clean)
    } else {
        decode_checkpoint(bytes).is_none()
    }
}

/// The recovered state must always be a trustworthy contiguous chain with
/// byte-exact payloads, whatever was done to the files.
fn assert_chain_integrity(state: &RecoveredState) {
    if let Some((tick, payload)) = &state.checkpoint {
        assert!(*tick == 5 || *tick == 10);
        assert_eq!(payload, format!("snap-{tick}").as_bytes());
        if let Some(first) = state.records.first() {
            assert_eq!(first.tick, tick + 1, "replay starts right after the checkpoint");
        }
    }
    for pair in state.records.windows(2) {
        assert_eq!(pair[1].tick, pair[0].tick + 1, "recovered records must be contiguous");
    }
    for r in &state.records {
        assert!((1..=14).contains(&r.tick));
        assert_eq!(r.payload, synthetic_payload(r.tick), "payload integrity at tick {}", r.tick);
    }
    let report = &state.report;
    assert!(report.corrupt_events == 0 || report.first_bad_tick.is_some());
}

/// Recover a mutated copy of the log and check the fail-closed contract:
/// never panic, never hand back an untrustworthy record, and if the
/// mutated file is CRC-damaged, say so in the report.
fn recover_mutated(files: &[(String, Vec<u8>)], mutated_idx: usize) {
    let disk = Arc::new(SimDisk::new());
    for (name, bytes) in files {
        disk.overwrite(name, bytes).unwrap();
    }
    let (_plane, state) = DurabilityPlane::recover(disk, plane_cfg());
    assert_chain_integrity(&state);
    let (name, bytes) = &files[mutated_idx];
    // A damaged *fallback* checkpoint is shadowed by the valid newest one:
    // recovery stops at the first checkpoint that validates and never
    // reads further back, so only damage it actually saw must be reported.
    let shadowed = name == "ckpt-0000000005.ck" && state.report.checkpoint_tick == Some(10);
    if is_damaged(name, bytes) && !shadowed {
        let r = &state.report;
        assert!(
            r.torn_tail_bytes > 0
                || r.corrupt_events > 0
                || r.checkpoints_invalid > 0
                || r.records_dropped > 0,
            "CRC damage in {name} went unreported: {r:?}"
        );
    }
}

/// Every truncation prefix of the live tail segment: recovery never
/// panics, keeps at least the checkpointed prefix, and reports torn bytes
/// whenever the cut is not on a record boundary.
#[test]
fn every_truncation_of_the_live_tail_recovers() {
    let files = recorded_log();
    let tail = files.iter().position(|(n, _)| n == "wal-0000000011.seg").unwrap();
    let full = files[tail].1.clone();
    for cut in 0..=full.len() {
        let mut mutated = files.clone();
        mutated[tail].1.truncate(cut);
        let disk = Arc::new(SimDisk::new());
        for (name, bytes) in &mutated {
            disk.overwrite(name, bytes).unwrap();
        }
        let (_plane, state) = DurabilityPlane::recover(disk, plane_cfg());
        assert_chain_integrity(&state);
        let last = state.report.last_tick.unwrap();
        assert!((10..=14).contains(&last), "cut {cut}: checkpointed prefix lost ({last})");
        if is_damaged("wal-0000000011.seg", &mutated[tail].1) {
            assert!(state.report.torn_tail_bytes > 0, "cut {cut}: {:?}", state.report);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncate any file — segment or checkpoint — to any prefix length:
    /// recovery never panics and reports whatever the cut destroyed.
    #[test]
    fn recovery_survives_any_truncation(file_sel in 0usize..10_000, cut_sel in 0usize..100_000) {
        let mut files = recorded_log();
        let idx = file_sel % files.len();
        let cut = cut_sel % (files[idx].1.len() + 1);
        files[idx].1.truncate(cut);
        recover_mutated(&files, idx);
    }

    /// Flip any single bit of any file: CRC framing catches it, recovery
    /// never panics, and the damage is counted — as a torn tail, a corrupt
    /// record, or an invalid checkpoint.
    #[test]
    fn recovery_survives_any_single_bit_flip(
        file_sel in 0usize..10_000,
        byte_sel in 0usize..100_000,
        bit in 0u32..8,
    ) {
        let mut files = recorded_log();
        let idx = file_sel % files.len();
        let byte = byte_sel % files[idx].1.len();
        files[idx].1[byte] ^= 1u8 << bit;
        recover_mutated(&files, idx);
    }
}
