//! LANL burst-buffer story end-to-end: configuration checks catch the
//! silently misconfigured buffer node, and the monitoring data shows the
//! traffic spilling to the parallel filesystem.

use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_metrics::{CompId, SeriesKey, Ts, MINUTE_MS};
use hpcmon_sim::{AppProfile, BbConfig, FaultKind, JobSpec};
use hpcmon_store::{LogQuery, TimeRange};

fn bb_system() -> MonitoringSystem {
    let mut cfg = SimConfig::small();
    cfg.burst_buffer = Some(BbConfig::small());
    MonitoringSystem::builder(cfg).bench_suite_every(Some(2)).build()
}

#[test]
fn bb_metrics_are_collected() {
    let mut mon = bb_system();
    mon.submit_job(JobSpec::new(
        AppProfile::checkpointing("climate"),
        "u",
        64,
        60 * MINUTE_MS,
        Ts::ZERO,
    ));
    mon.run_ticks(15);
    let m = mon.metrics();
    // Per-bb-node series exist and show absorption during write phases.
    let occupancy =
        mon.query().series(SeriesKey::new(m.bb_occupancy, CompId::bb(0)), TimeRange::all());
    assert_eq!(occupancy.len(), 15);
    let configured =
        mon.query().series(SeriesKey::new(m.bb_configured, CompId::bb(0)), TimeRange::all());
    assert!(configured.iter().all(|&(_, v)| v == 1.0));
    // The checkpoint burst at job-minutes 8..10 shows up somewhere.
    let absorb = mon.query().aggregate_across_components(
        m.bb_absorb_bps,
        TimeRange::all(),
        hpcmon_store::AggFn::Sum,
    );
    assert!(absorb.iter().any(|&(_, v)| v > 1.0e9), "checkpoint burst absorbed");
}

#[test]
fn misconfiguration_caught_by_config_check_not_logs() {
    let mut mon = bb_system();
    mon.run_ticks(4);
    mon.schedule_fault(Ts::from_mins(5), FaultKind::BbMisconfigure { bb: 1 });
    mon.run_ticks(6);
    // The config check failed and logged a bench warning naming the node.
    let hits = mon.log_store().search(&LogQuery::tokens(&["bb", "configured"]));
    assert!(!hits.is_empty(), "configuration check caught it");
    assert!(hits.iter().any(|r| r.message.contains("[1]")), "{hits:?}");
    // The configured metric for node 1 dropped to 0.
    let m = mon.metrics();
    let configured = mon.query().series(
        SeriesKey::new(m.bb_configured, CompId::bb(1)),
        TimeRange::new(Ts::from_mins(6), Ts(u64::MAX)),
    );
    assert!(configured.iter().all(|&(_, v)| v == 0.0));
    // Repair clears the check.
    mon.schedule_fault(Ts::from_mins(12), FaultKind::BbRepair { bb: 1 });
    mon.run_ticks(4);
    assert!(mon.engine().burst_buffer().unwrap().all_configured());
}

#[test]
fn spill_pressure_is_visible_on_the_filesystem() {
    // Misconfigure ALL buffer nodes: every checkpoint byte spills to the
    // PFS, and the fs write-rate series shows it.
    let measure = |sabotage: bool| -> f64 {
        let mut mon = bb_system();
        if sabotage {
            for i in 0..4 {
                mon.schedule_fault(Ts::from_mins(1), FaultKind::BbMisconfigure { bb: i });
            }
        }
        mon.submit_job(JobSpec::new(
            AppProfile::checkpointing("climate"),
            "u",
            64,
            60 * MINUTE_MS,
            Ts::ZERO,
        ));
        mon.run_ticks(25);
        let m = mon.metrics();
        mon.query()
            .series(SeriesKey::new(m.fs_agg_write_bps, CompId::SYSTEM), TimeRange::all())
            .iter()
            .map(|p| p.1)
            .fold(0.0, f64::max)
    };
    let healthy_peak = measure(false);
    let sabotaged_peak = measure(true);
    assert!(
        sabotaged_peak > 2.0 * healthy_peak.max(1.0),
        "spill shows on the PFS: healthy {healthy_peak} sabotaged {sabotaged_peak}"
    );
}
