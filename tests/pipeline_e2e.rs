//! End-to-end pipeline integration: machine → collect → transport →
//! store → analyze → respond, exercised across crate boundaries.

use hpcmon::pipeline::DetectorAttachment;
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_analysis::{MadDetector, ZScoreDetector};
use hpcmon_metrics::{CompId, JobState, SeriesKey, Severity, Ts, MINUTE_MS};
use hpcmon_response::{Consumer, SignalKind};
use hpcmon_sim::{AppProfile, FaultKind, JobSpec};
use hpcmon_store::{AggFn, LogQuery, TimeRange};

fn system() -> MonitoringSystem {
    MonitoringSystem::builder(SimConfig::small()).build()
}

#[test]
fn full_hour_of_operations() {
    let mut mon = system();
    for i in 0..6u64 {
        mon.submit_job(JobSpec::new(
            AppProfile::checkpointing("climate"),
            "alice",
            16,
            30 * MINUTE_MS,
            Ts::from_mins(i * 5),
        ));
    }
    let summary = mon.run_ticks(60);
    assert_eq!(summary.ticks, 60);
    assert!(summary.samples > 50_000);
    // Jobs completed and their records carry allocations + timeframes.
    let completed: Vec<_> = mon
        .engine()
        .scheduler()
        .records()
        .iter()
        .filter(|r| r.state == JobState::Completed)
        .collect();
    assert!(!completed.is_empty());
    for rec in completed {
        assert_eq!(rec.nodes.len(), 16);
        assert!(rec.runtime_ms().unwrap() >= 30 * MINUTE_MS);
    }
    // The store answers system-level queries.
    let m = mon.metrics();
    let power =
        mon.query().aggregate_across_components(m.system_power, TimeRange::all(), AggFn::Mean);
    assert_eq!(power.len(), 60, "one point per synchronized tick");
    assert!(power.iter().all(|&(_, w)| w > 10_000.0));
}

#[test]
fn crash_detection_chain_reaches_the_pager() {
    let mut mon = system();
    mon.submit_job(JobSpec::new(
        AppProfile::compute_heavy("stencil"),
        "bob",
        32,
        60 * MINUTE_MS,
        Ts::ZERO,
    ));
    mon.run_ticks(3);
    let victim = mon.engine().scheduler().records()[0].nodes[0];
    mon.schedule_fault(Ts::from_mins(5), FaultKind::NodeCrash { node: victim });
    mon.run_ticks(5);

    // Log chain: crash line stored and searchable.
    let hits = mon.log_store().search(&LogQuery::tokens(&["heartbeat"]));
    assert!(!hits.is_empty());
    // Correlation chain: critical signal emitted.
    assert!(mon
        .signals()
        .iter()
        .any(|s| s.kind == SignalKind::LogCorrelation && s.severity == Severity::Critical));
    // Response chain: ops got paged, node got sidelined.
    assert!(!mon.response_alerts("ops-pager").is_empty());
    assert!(mon.engine().scheduler().out_of_service().contains(&victim));
    // Job failure recorded.
    assert_eq!(mon.engine().scheduler().records()[0].state, JobState::Failed);
}

#[test]
fn silent_degradation_found_by_probes_not_logs() {
    // An OST slows down: nothing logs, but the probe series shifts and an
    // attached detector turns it into a signal (the NCSA story).
    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .attach_detector(DetectorAttachment::new(
            SeriesKey::new(
                hpcmon_collect::StdMetrics::register(&hpcmon_metrics::MetricRegistry::new())
                    .probe_ost_latency,
                CompId::ost(5),
            ),
            Box::new(MadDetector::new(32, 6.0).with_mad_floor(0.05)),
            SignalKind::MetricAnomaly,
            Severity::Error,
            "OST probe latency",
        ))
        .build();
    mon.run_ticks(20);
    let logs_before = mon.log_store().len();
    mon.schedule_fault(Ts::from_mins(21), FaultKind::OstDegrade { ost: 5, factor: 10.0 });
    mon.run_ticks(5);
    // No new non-routine logs from the MACHINE itself (the analysis
    // pipeline's own stored findings are excluded — the detector speaking
    // up is the point, the hardware staying silent is the hazard).
    let new_logs: Vec<_> = (logs_before as u32..mon.log_store().len() as u32)
        .filter_map(|i| mon.log_store().get(i))
        .filter(|r| r.severity > Severity::Info && r.source != "analysis")
        .collect();
    assert!(new_logs.is_empty(), "degradation is silent in machine logs: {new_logs:?}");
    // But the metric pipeline caught it.
    assert!(mon
        .signals()
        .iter()
        .any(|s| s.kind == SignalKind::MetricAnomaly && s.comp == CompId::ost(5)));
}

#[test]
fn hung_node_caught_by_power_not_logs() {
    // KAUST's observation: hangs are invisible in logs but power shows
    // them.  Run one full-machine job, hang a node, and check that a
    // z-score detector on that node's power fires.
    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .attach_detector(DetectorAttachment::new(
            SeriesKey::new(
                hpcmon_collect::StdMetrics::register(&hpcmon_metrics::MetricRegistry::new())
                    .node_power,
                CompId::node(40),
            ),
            Box::new(ZScoreDetector::new(32, 5.0).with_sigma_floor(3.0)),
            SignalKind::PowerAnomaly,
            Severity::Warning,
            "node power deviation",
        ))
        .build();
    mon.submit_job(JobSpec::new(
        AppProfile::compute_heavy("vasp"),
        "kaust",
        128,
        120 * MINUTE_MS,
        Ts::ZERO,
    ));
    mon.run_ticks(20);
    mon.schedule_fault(Ts::from_mins(21), FaultKind::NodeHang { node: 40 });
    mon.run_ticks(5);
    assert!(
        mon.signals()
            .iter()
            .any(|s| s.kind == SignalKind::PowerAnomaly && s.comp == CompId::node(40)),
        "power detector must catch the silent hang"
    );
}

#[test]
fn user_portal_sees_only_its_own_problems() {
    let mut mon = system();
    mon.submit_job(JobSpec::new(
        AppProfile::compute_heavy("private_app"),
        "alice",
        16,
        60 * MINUTE_MS,
        Ts::ZERO,
    ));
    mon.run_ticks(2);
    let alice_node = mon.engine().scheduler().records()[0].nodes[0];
    mon.schedule_fault(Ts::from_mins(4), FaultKind::ServiceDown { node: alice_node, service: 0 });
    mon.run_ticks(4);
    let bob = Consumer::user("bob-portal", "bob");
    let alice = Consumer::user("alice-portal", "alice");
    let admin = Consumer::admin("ops");
    let bob_view = mon.signals_for(&bob);
    let alice_view = mon.signals_for(&alice);
    let admin_view = mon.signals_for(&admin);
    assert_eq!(admin_view.len(), mon.signals().len());
    // Alice's node problem carries her username; bob must not see it.
    assert!(alice_view
        .iter()
        .any(|s| s.kind == SignalKind::HealthCheckFailure && s.user.as_deref() == Some("alice")));
    assert!(bob_view.iter().all(|s| s.user.as_deref() != Some("alice")));
}

#[test]
fn archive_then_query_history_with_current_data() {
    let mut mon = system();
    mon.run_ticks(30);
    let m = mon.metrics();
    let key = SeriesKey::new(m.system_power, CompId::SYSTEM);
    let before = mon.query().series(key, TimeRange::all()).len();
    assert_eq!(before, 30);
    // Archive the first month of operations away (everything so far)...
    let now = mon.engine().now();
    let cat = {
        let store = mon.store();
        store.seal_all();
        let blocks = store.evict_warm_before(now);
        assert!(!blocks.is_empty());
        mon.archive_mut().file_segment(blocks).expect("blocks are non-empty")
    };
    assert_eq!(mon.query().series(key, TimeRange::all()).len(), 0);
    assert_eq!(mon.archive().locate(Ts::ZERO, now).len(), 1);
    // ...keep operating...
    mon.run_ticks(10);
    // ...then reload history for a joint historical+current analysis.
    assert!(mon.archive().reload_into(cat.segment, mon.store()));
    let full = mon.query().series(key, TimeRange::all()).len();
    assert_eq!(full, 40, "history and fresh data queried together");
}

#[test]
fn live_consumer_rides_the_broker() {
    use hpcmon_transport::{BackpressurePolicy, TopicFilter};
    let mut mon = system();
    // An external dashboard subscribes to frames; a lossy deep-history
    // tool subscribes to logs.
    let frames =
        mon.broker().subscribe(TopicFilter::new("metrics/#"), 64, BackpressurePolicy::DropOldest);
    let logs = mon.broker().subscribe(TopicFilter::new("logs/#"), 1_024, BackpressurePolicy::Block);
    mon.schedule_fault(Ts::from_mins(3), FaultKind::LinkDown { link: 0 });
    mon.run_ticks(5);
    let frame_envs = frames.drain();
    assert_eq!(frame_envs.len(), 5, "one frame per tick");
    assert!(frame_envs.iter().all(|e| e.payload.frame_len().is_some()));
    let log_envs = logs.drain();
    assert!(log_envs.iter().any(|e| e.topic == "logs/hwerr"), "link failure routed by source");
}
