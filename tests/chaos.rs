//! Monitoring-plane fault injection: determinism and self-healing
//! invariants (DESIGN.md §10).
//!
//! The chaos engine breaks the *observers* — collectors panic and hang,
//! envelopes arrive bit-flipped, store shards refuse writes, broker topics
//! stall — and these tests pin the survival contract: every fault is
//! deterministic by seed (bit-identical store dumps at any worker count),
//! every collector gap surfaces through the deadman within two ticks,
//! recovery restores full coverage, and no frame accepted by the spill
//! queue is lost without being counted in `spill.dropped`.

use hpcmon::system::TickReport;
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_chaos::{BreakerState, ChaosFault, ChaosPlan, ScheduledFault};
use hpcmon_metrics::{CompId, SeriesKey, Ts};
use hpcmon_response::{Signal, SignalKind};
use hpcmon_sim::{AppProfile, JobSpec};
use std::sync::Once;

/// Injected collector panics unwind through the supervisor's
/// `catch_unwind`; keep the default hook from spamming test output with
/// expected backtraces while leaving real panics loud.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("chaos: injected collector panic"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn plan(faults: Vec<(u64, ChaosFault)>) -> ChaosPlan {
    ChaosPlan::from_faults(
        faults.into_iter().map(|(at_tick, fault)| ScheduledFault { at_tick, fault }).collect(),
    )
}

/// One of every fault kind, overlapping, against the standard collectors.
fn dense_plan() -> ChaosPlan {
    plan(vec![
        (3, ChaosFault::CollectorPanic { collector: "power".into() }),
        (5, ChaosFault::CollectorHang { collector: "node".into(), ticks: 2 }),
        (6, ChaosFault::CollectorSlow { collector: "fs".into(), factor: 16.0, ticks: 2 }),
        (8, ChaosFault::BrokerTopicStall { topic: "metrics/frame".into(), ticks: 2 }),
        (10, ChaosFault::EnvelopeCorrupt { rate: 0.6, ticks: 4 }),
        (12, ChaosFault::StoreWriteFail { shard: 0, ticks: 3 }),
        (14, ChaosFault::GatewayWorkerDeath),
    ])
}

fn builder(workers: usize) -> hpcmon::system::MonitorBuilder {
    MonitoringSystem::builder(SimConfig::small()).self_telemetry(false).workers(workers)
}

fn with_job(mut mon: MonitoringSystem) -> MonitoringSystem {
    mon.submit_job(JobSpec::new(
        AppProfile::checkpointing("climate"),
        "bob",
        32,
        40 * 60_000,
        Ts::ZERO,
    ));
    mon
}

/// Every stored point of every series, in deterministic series order.
fn dump_store(mon: &MonitoringSystem) -> Vec<(SeriesKey, Vec<(Ts, f64)>)> {
    mon.store()
        .all_series()
        .into_iter()
        .map(|k| (k, mon.store().query(k, Ts::ZERO, Ts(u64::MAX))))
        .collect()
}

fn assert_dumps_bit_identical(
    base: &[(SeriesKey, Vec<(Ts, f64)>)],
    other: &[(SeriesKey, Vec<(Ts, f64)>)],
    label: &str,
) {
    assert_eq!(base.len(), other.len(), "series counts differ: {label}");
    for ((bk, bp), (k, p)) in base.iter().zip(other) {
        assert_eq!(bk, k, "series sets diverge: {label}");
        assert_eq!(bp.len(), p.len(), "{bk:?} point counts differ: {label}");
        for ((bt, bv), (t, v)) in bp.iter().zip(p) {
            assert_eq!(bt, t, "{bk:?} timestamps differ: {label}");
            assert_eq!(bv.to_bits(), v.to_bits(), "{bk:?} values differ: {label}");
        }
    }
}

fn run_chaos(workers: usize, seed: u64) -> (Vec<TickReport>, Vec<Signal>, MonitoringSystem) {
    quiet_injected_panics();
    let mut mon = with_job(builder(workers).chaos(seed, dense_plan()).build());
    let reports: Vec<TickReport> = (0..20).map(|_| mon.tick()).collect();
    let signals = mon.signals().to_vec();
    (reports, signals, mon)
}

/// (c) Same seed + same schedule ⇒ bit-identical store dumps, reports,
/// signals, and injection counts at workers 0 and 4.
#[test]
fn chaos_runs_are_bit_identical_across_worker_counts() {
    let (base_reports, base_signals, base_mon) = run_chaos(0, 42);
    let base_dump = dump_store(&base_mon);
    assert!(base_mon.chaos_counts().unwrap().total() >= 7, "dense plan all fired");
    for workers in [1, 4] {
        let (reports, signals, mon) = run_chaos(workers, 42);
        assert_eq!(base_reports, reports, "TickReports differ at workers={workers}");
        assert_eq!(base_signals, signals, "signal streams differ at workers={workers}");
        assert_eq!(base_mon.chaos_counts(), mon.chaos_counts());
        assert_dumps_bit_identical(&base_dump, &dump_store(&mon), &format!("workers={workers}"));
    }
}

/// Chaos is reproducible by seed: reruns agree exactly, and a different
/// seed corrupts a different set of envelopes.
#[test]
fn chaos_is_reproducible_by_seed() {
    let (r1, s1, m1) = run_chaos(0, 7);
    let (r2, s2, m2) = run_chaos(0, 7);
    assert_eq!(r1, r2);
    assert_eq!(s1, s2);
    assert_eq!(m1.chaos_counts(), m2.chaos_counts());
    assert_dumps_bit_identical(&dump_store(&m1), &dump_store(&m2), "same seed rerun");
    let (_, _, m3) = run_chaos(0, 8);
    assert_ne!(
        dump_store(&m1),
        dump_store(&m3),
        "a different seed flips different envelopes, so different frames survive"
    );
}

/// Supervision with no chaos plan changes nothing: reports, signals, and
/// the stored bytes match an unsupervised run exactly.
#[test]
fn supervision_without_chaos_is_bit_identical_to_baseline() {
    let run = |supervised: bool| {
        let mut mon = with_job(builder(0).supervision(supervised).build());
        let reports: Vec<TickReport> = (0..15).map(|_| mon.tick()).collect();
        (reports, mon.signals().to_vec(), dump_store(&mon))
    };
    let (base_reports, base_signals, base_dump) = run(false);
    let (reports, signals, dump) = run(true);
    assert_eq!(base_reports, reports);
    assert_eq!(base_signals, signals);
    assert_dumps_bit_identical(&base_dump, &dump, "supervision on, chaos off");
}

/// A faulted collector surfaces as a `MonitoringGap` within two ticks of
/// injection (quarantine collapses the deadman grace), and once the fault
/// clears the backoff probe re-admits it: quarantine empties and frame
/// coverage returns to 100%.
#[test]
fn collector_fault_surfaces_within_two_ticks_and_heals() {
    quiet_injected_panics();
    let fault_tick = 5u64;
    let p =
        plan(vec![(fault_tick, ChaosFault::CollectorHang { collector: "power".into(), ticks: 3 })]);
    let mut mon = with_job(builder(0).chaos(99, p).build());
    let mut gap_tick = None;
    for tick in 1..=16u64 {
        let r = mon.tick();
        if gap_tick.is_none()
            && r.signals
                .iter()
                .any(|s| s.kind == SignalKind::MonitoringGap && s.detail.contains("power"))
        {
            gap_tick = Some(tick);
        }
        if (fault_tick..fault_tick + 3).contains(&tick) {
            assert_eq!(mon.quarantined_collectors(), 1, "quarantined while hung (tick {tick})");
            let cov = mon.last_coverage().unwrap();
            assert!(!cov.is_full(), "coverage reflects the gap (tick {tick})");
            assert!(cov.pct() < 100.0);
        }
    }
    let gap_tick = gap_tick.expect("hang surfaced as MonitoringGap");
    assert!(
        gap_tick <= fault_tick + 1,
        "gap must surface within 2 ticks of injection: got tick {gap_tick}"
    );
    // Fault expired at tick 8; the backoff probe (1 -> 2 -> 4, capped)
    // re-admits well before tick 16.
    assert_eq!(mon.quarantined_collectors(), 0, "probe re-admitted the collector");
    assert!(mon.last_coverage().unwrap().is_full(), "coverage back to 100%");
    assert!(
        mon.signals().iter().any(|s| s.kind == SignalKind::MonitoringGap),
        "the gap was reported, never silent"
    );
}

/// Store write faults trip the breaker and spill frames; when the shard
/// heals, the half-open probe drains the spill in arrival order — the
/// final store contents are identical to a fault-free run, with zero
/// frames dropped.
#[test]
fn store_fault_spills_then_drains_losslessly() {
    quiet_injected_panics();
    let baseline = {
        let mut mon = with_job(builder(0).supervision(true).build());
        let reports: Vec<TickReport> = (0..14).map(|_| mon.tick()).collect();
        (reports, dump_store(&mon))
    };
    let p = plan(vec![(4, ChaosFault::StoreWriteFail { shard: 0, ticks: 3 })]);
    let mut mon = with_job(builder(0).chaos(5, p).build());
    let mut spilled_at_peak = 0usize;
    let mut reports = Vec::new();
    for tick in 1..=14u64 {
        reports.push(mon.tick());
        if (4..=6).contains(&tick) {
            assert_ne!(
                mon.breaker_state(),
                BreakerState::Closed,
                "breaker tripped during the outage (tick {tick})"
            );
            spilled_at_peak = spilled_at_peak.max(mon.spill_depth());
        }
    }
    assert!(spilled_at_peak > 0, "frames spilled while the shard refused writes");
    assert_eq!(mon.breaker_state(), BreakerState::Closed, "breaker closed after the probe");
    assert_eq!(mon.spill_depth(), 0, "spill fully drained");
    assert_eq!(mon.spill_dropped(), 0, "bounded queue never overflowed here");
    assert_eq!(baseline.0, reports, "analysis was unaffected by the store outage");
    assert_dumps_bit_identical(
        &baseline.1,
        &dump_store(&mon),
        "store contents after drain match a fault-free run",
    );
}

/// A stalled broker topic buffers frames in order and replays them the
/// tick the stall clears: nothing is lost, nothing is reordered.
#[test]
fn topic_stall_buffers_then_drains_in_order() {
    quiet_injected_panics();
    let baseline = {
        let mut mon = with_job(builder(0).supervision(true).build());
        mon.run_ticks(12);
        dump_store(&mon)
    };
    let p =
        plan(vec![(4, ChaosFault::BrokerTopicStall { topic: "metrics/frame".into(), ticks: 2 })]);
    let mut mon = with_job(builder(0).chaos(11, p).build());
    for tick in 1..=12u64 {
        mon.tick();
        match tick {
            4 => assert_eq!(mon.stalled_frames(), 1, "first stalled frame buffered"),
            5 => assert_eq!(mon.stalled_frames(), 2, "second stalled frame buffered"),
            6 => assert_eq!(mon.stalled_frames(), 0, "stall cleared, buffer drained"),
            _ => {}
        }
    }
    assert_dumps_bit_identical(&baseline, &dump_store(&mon), "stalled frames arrived late, intact");
}

/// (a) Corrupt envelopes are counted and skipped — decode failures land in
/// `transport.decode_errors` with drop provenance, undetectable flips pass
/// through, and the arithmetic closes: every published frame is either
/// stored or counted as a decode error.
#[test]
fn corrupt_envelopes_are_counted_and_skipped() {
    quiet_injected_panics();
    let ticks = 12u64;
    let p = plan(vec![(1, ChaosFault::EnvelopeCorrupt { rate: 0.7, ticks: 10 })]);
    let mut mon = with_job(builder(0).chaos(1234, p).build());
    mon.run_ticks(ticks);
    let corrupted = mon.chaos_counts().unwrap().envelope_corrupt;
    let decode_errors = mon.broker().stats().decode_errors;
    assert!(corrupted > 0, "the rate draw hit some envelopes");
    assert!(decode_errors > 0, "some flips broke the JSON envelope");
    assert!(decode_errors <= corrupted, "only corrupted envelopes can fail decode");
    // A frame survives iff its envelope decoded: stored frame count per
    // tick-resolution series equals ticks minus decode failures.
    let m = mon.metrics();
    let stored = mon
        .store()
        .query(SeriesKey::new(m.system_power, CompId::SYSTEM), Ts::ZERO, Ts(u64::MAX))
        .len() as u64;
    assert_eq!(stored, ticks - decode_errors, "skipped frames are exactly the decode errors");
}

/// Gateway worker deaths are absorbed: the dead worker is reaped and
/// respawned on the next tick and queries keep succeeding.
#[test]
fn gateway_worker_death_is_respawned_under_chaos() {
    use hpcmon_gateway::{GatewayConfig, QueryRequest};
    use hpcmon_response::Consumer;
    use hpcmon_store::TimeRange;
    quiet_injected_panics();
    let p = plan(vec![(3, ChaosFault::GatewayWorkerDeath)]);
    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .gateway(GatewayConfig { default_deadline_ms: 10_000, ..GatewayConfig::default() })
        .chaos(77, p)
        .build();
    let gw = mon.gateway().unwrap().clone();
    let full_strength = gw.worker_count();
    mon.run_ticks(2);
    let respawned = mon.telemetry().counter("gateway.workers.respawned");
    mon.run_ticks(1); // tick 3: the death is injected
    assert_eq!(mon.chaos_counts().unwrap().gateway_worker_death, 1);
    // The claimed worker exits at a job boundary; the next ticks reap and
    // respawn it.  Poll a few ticks — thread exit is asynchronous.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while respawned.get() == 0 && std::time::Instant::now() < deadline {
        mon.run_ticks(1);
    }
    assert_eq!(respawned.get(), 1, "exactly one worker died and was respawned");
    assert_eq!(gw.worker_count(), full_strength, "back to full strength");
    let m = mon.metrics();
    let resp = gw.query(
        &Consumer::admin("ops"),
        QueryRequest::Series {
            key: SeriesKey::new(m.system_power, CompId::SYSTEM),
            range: TimeRange::all(),
        },
    );
    assert!(resp.is_ok(), "gateway still serves after the death: {resp:?}");
}
