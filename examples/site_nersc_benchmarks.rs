//! NERSC-style periodic benchmark tracking (paper §II-3, Figure 2).
//!
//! Runs the benchmark suite continuously while a filesystem degradation
//! and a network-contention era are injected, plots the time-to-solution
//! series with the detected onsets marked, and compares detected vs
//! injected onset times.
//!
//! ```sh
//! cargo run --release --example site_nersc_benchmarks
//! ```

use hpcmon::scenarios::fig2_bench_suite;
use hpcmon_viz::{svg_line_chart, LineChart};

fn main() {
    let r = fig2_bench_suite(2018);

    let mut io_chart = LineChart::new("I/O benchmark time-to-solution (Figure 2)", 70, 10)
        .with_unit("s")
        .add_series("io bench", r.io_series.clone())
        .add_marker(r.injected_io_onset);
    if let Some(t) = r.detected_io_onset {
        io_chart = io_chart.add_marker(t);
    }
    println!("{}", io_chart.render());

    let mut net_chart = LineChart::new("Network benchmark time-to-solution", 70, 10)
        .with_unit("s")
        .add_series("net bench", r.net_series.clone())
        .add_marker(r.injected_net_onset);
    if let Some(t) = r.detected_net_onset {
        net_chart = net_chart.add_marker(t);
    }
    println!("{}", net_chart.render());

    println!(
        "I/O degradation: injected at {}, CUSUM detected at {}",
        r.injected_io_onset,
        r.detected_io_onset.map(|t| t.display_hms()).unwrap_or_else(|| "MISSED".into())
    );
    println!(
        "network contention: injected at {}, CUSUM detected at {}",
        r.injected_net_onset,
        r.detected_net_onset.map(|t| t.display_hms()).unwrap_or_else(|| "MISSED".into())
    );

    // Publishable plot image, like NERSC's user-facing pages.
    let svg = svg_line_chart(
        "Benchmark performance over time",
        "s",
        800,
        400,
        &[("io".to_owned(), r.io_series.clone()), ("network".to_owned(), r.net_series.clone())],
    );
    let path = std::env::temp_dir().join("hpcmon_fig2.svg");
    std::fs::write(&path, svg).expect("write svg");
    println!("\nplot image written to {}", path.display());
}
