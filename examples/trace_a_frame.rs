//! Trace a frame: follow one datum end-to-end through the pipeline.
//!
//! Runs the monitored machine with always-on tracing, prints one healthy
//! frame's span tree (collect → transport → store, analysis, response),
//! then induces a backpressure drop and a gateway deadline shed and shows
//! the drop-provenance traces that explain each loss.  Writes the healthy
//! frame's flamegraph timeline to `trace_timeline.svg`.
//!
//! ```sh
//! cargo run --release --example trace_a_frame
//! ```

use hpcmon::trace::{DropReason, Sampler};
use hpcmon::viz::{render_span_tree, svg_trace_timeline};
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_gateway::{GatewayConfig, QueryRequest};
use hpcmon_metrics::{CompId, SeriesKey, Ts, MINUTE_MS};
use hpcmon_response::Consumer;
use hpcmon_sim::{AppProfile, JobSpec};
use hpcmon_store::TimeRange;
use hpcmon_transport::{BackpressurePolicy, TopicFilter};
use std::time::Duration;

fn main() {
    // Full pipeline with a gateway, tracing every frame.
    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .tracing(Sampler::always())
        .gateway(GatewayConfig { default_deadline_ms: 10_000, ..GatewayConfig::default() })
        .build();
    mon.submit_job(JobSpec::new(
        AppProfile::compute_heavy("stencil3d"),
        "alice",
        32,
        25 * MINUTE_MS,
        Ts::ZERO,
    ));
    mon.run_ticks(10);

    // --- 1. A healthy frame, end to end -------------------------------
    let healthy =
        mon.traces().completed().rev().find(|t| !t.has_drop()).expect("a lossless frame exists");
    println!("=== a healthy frame, end to end ===");
    print!("{}", render_span_tree(healthy));
    let svg = svg_trace_timeline(healthy, 900);
    std::fs::write("trace_timeline.svg", &svg).expect("write svg");
    println!("(flamegraph timeline written to trace_timeline.svg, {} bytes)\n", svg.len());

    // --- 2. Where did my frame go? Backpressure drop provenance -------
    // A consumer that never drains a two-slot queue: further frames to it
    // are dropped, and every drop records which stage lost it and why.
    let _laggard = mon.broker().subscribe(
        TopicFilter::new("metrics/frame"),
        2,
        BackpressurePolicy::DropNewest,
    );
    mon.run_ticks(4);
    println!("=== a frame lost to backpressure ===");
    let dropped = mon.traces().with_drops().next_back().expect("induced drop traced");
    print!("{}", render_span_tree(dropped));
    println!();

    // --- 3. Where did my answer go? Gateway shed provenance -----------
    let gw = mon.gateway().unwrap().clone();
    let req = QueryRequest::Series {
        key: SeriesKey::new(mon.metrics().system_power, CompId::SYSTEM),
        range: TimeRange::all(),
    };
    let _ = gw.query_with_deadline(&Consumer::admin("impatient"), req, Duration::from_millis(0));
    mon.run_ticks(2);
    println!("=== a query shed at its deadline ===");
    let shed = mon
        .traces()
        .completed()
        .rev()
        .find(|t| t.first_drop_reason() == Some(DropReason::DeadlineShed))
        .expect("shed query traced");
    print!("{}", render_span_tree(shed));

    // --- 4. The tracing layer's own accounting ------------------------
    let stats = mon.tracer().stats();
    println!("\n=== tracer self-accounting ===");
    println!(
        "sampled traces: {}   spans recorded: {}   ring rejections: {}",
        stats.traces_sampled, stats.spans_recorded, stats.spans_rejected
    );
    println!(
        "completed traces: {} ({} with drops) — exported as hpcmon.self.trace.*",
        mon.traces().completed_total(),
        mon.traces().completed_with_drops()
    );
}
