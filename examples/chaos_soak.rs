//! Chaos soak: 500 ticks under a dense, seeded fault schedule, asserting
//! the survival invariants of DESIGN.md §10 as it goes.
//!
//! Every ~30 ticks a block of monitoring-plane faults fires — collector
//! panics, hangs, and slowdowns, broker topic stalls, envelope bit-flips,
//! store shard write failures, gateway worker deaths — and the soak
//! checks that the plane degrades *legibly* and heals:
//!
//! 1. No panic, no deadlock: the run completes (injected collector
//!    panics are caught by the supervisor, never escape the tick).
//! 2. Every collector fault surfaces as a `MonitoringGap` naming the
//!    collector within 2 ticks of injection — gaps are reported, never
//!    silent.
//! 3. After the last fault clears, quarantine empties, frame coverage
//!    returns to 100%, the ingest breaker closes, and the spill queue
//!    and stall buffer drain to zero.
//! 4. Frame conservation: every frame published toward the store is
//!    either stored, counted in `transport.decode_errors` (corrupted),
//!    or counted in `spill.dropped` — nothing vanishes unaccounted.
//! 5. Reproducibility: the whole soak, rerun with the same seed, yields
//!    a bit-identical store digest and injection counts.
//!
//! ```sh
//! cargo run --release --example chaos_soak            # seed 2018
//! cargo run --release --example chaos_soak -- 7 4     # seed 7, 4 workers
//! ```

use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_chaos::{BreakerState, ChaosFault, ChaosPlan, InjectedCounts};
use hpcmon_gateway::GatewayConfig;
use hpcmon_metrics::{CompId, SeriesKey, Ts, MINUTE_MS};
use hpcmon_response::SignalKind;
use hpcmon_sim::{AppProfile, JobSpec};

const TICKS: u64 = 500;

/// Injected collector panics unwind through the supervisor's catch; keep
/// the default hook from printing 500 ticks' worth of expected backtraces
/// while leaving real panics (and assertion failures) loud.
fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos: injected collector panic"));
        if !injected {
            default(info);
        }
    }));
}

/// The dense schedule: one block of every fault kind every 30 ticks,
/// rotating the targeted collector and store shard.  Returns the plan and
/// the (tick, collector) pairs whose gaps must surface.
fn dense_plan() -> (ChaosPlan, Vec<(u64, &'static str)>) {
    // "power" is deliberately not targeted: its one system-power point
    // per tick is the tracer the frame-conservation check counts, so its
    // segment must go missing only for transport/store reasons.
    let collectors = ["node", "hsn", "fs", "env", "sched", "gpu"];
    let mut plan = ChaosPlan::new();
    let mut expected_gaps = Vec::new();
    let mut block = 0u64;
    loop {
        let base = 10 + block * 30;
        if base + 20 > TICKS.saturating_sub(30) {
            break;
        }
        let c = collectors[(block as usize) % collectors.len()];
        let c2 = collectors[(block as usize + 3) % collectors.len()];
        plan.schedule(base, ChaosFault::CollectorPanic { collector: c.into() });
        expected_gaps.push((base, c));
        plan.schedule(base + 4, ChaosFault::CollectorHang { collector: c2.into(), ticks: 3 });
        expected_gaps.push((base + 4, c2));
        plan.schedule(
            base + 8,
            ChaosFault::CollectorSlow { collector: c.into(), factor: 16.0, ticks: 2 },
        );
        expected_gaps.push((base + 8, c));
        plan.schedule(
            base + 10,
            ChaosFault::BrokerTopicStall { topic: "metrics/frame".into(), ticks: 2 },
        );
        plan.schedule(base + 13, ChaosFault::EnvelopeCorrupt { rate: 0.4, ticks: 4 });
        plan.schedule(
            base + 16,
            ChaosFault::StoreWriteFail { shard: (block % 4) as usize, ticks: 3 },
        );
        plan.schedule(base + 20, ChaosFault::GatewayWorkerDeath);
        block += 1;
    }
    (plan, expected_gaps)
}

struct SoakOutcome {
    digest: Vec<(String, Vec<(u64, u64)>)>,
    counts: InjectedCounts,
    decode_errors: u64,
    gaps_checked: usize,
}

fn run_soak(seed: u64, workers: usize) -> SoakOutcome {
    let (plan, expected_gaps) = dense_plan();
    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .self_telemetry(false)
        .workers(workers)
        .gateway(GatewayConfig { default_deadline_ms: 10_000, ..GatewayConfig::default() })
        .chaos(seed, plan)
        .build();
    mon.submit_job(JobSpec::new(
        AppProfile::checkpointing("climate"),
        "bob",
        32,
        400 * MINUTE_MS,
        Ts::ZERO,
    ));
    let full_strength = mon.gateway().unwrap().worker_count();

    // Invariant 2: each collector fault must surface as a MonitoringGap
    // naming its collector within 2 ticks.  Faults can overlap, so track
    // open windows and retire them on a matching signal.
    let mut gap_windows: Vec<(u64, &str)> = Vec::new();
    let mut next_gap = 0usize;
    let mut gaps_checked = 0usize;
    for tick in 1..=TICKS {
        while next_gap < expected_gaps.len() && expected_gaps[next_gap].0 == tick {
            gap_windows.push(expected_gaps[next_gap]);
            next_gap += 1;
        }
        let report = mon.tick(); // invariant 1: returning at all is the proof
        gap_windows.retain(|&(at, name)| {
            let seen = report
                .signals
                .iter()
                .any(|s| s.kind == SignalKind::MonitoringGap && s.detail.contains(name));
            if seen {
                gaps_checked += 1;
            }
            !seen && {
                assert!(
                    tick < at + 2,
                    "collector fault at tick {at} on '{name}' not surfaced by tick {tick}"
                );
                true
            }
        });
    }
    assert!(gap_windows.is_empty(), "unsurfaced gaps at end of soak: {gap_windows:?}");

    // Invariant 3: the last fault block cleared ~30 ticks before the end,
    // so the plane must have healed completely.
    assert_eq!(mon.quarantined_collectors(), 0, "quarantine must empty after faults clear");
    let cov = mon.last_coverage().expect("supervised run stamps coverage");
    assert!(cov.is_full(), "coverage must return to 100%, got {:.1}%", cov.pct());
    assert_eq!(mon.breaker_state(), BreakerState::Closed, "ingest breaker must close");
    assert_eq!(mon.spill_depth(), 0, "spill queue must drain");
    assert_eq!(mon.stalled_frames(), 0, "stall buffer must drain");
    assert_eq!(mon.gateway().unwrap().worker_count(), full_strength, "dead workers respawned");

    // Invariant 4: frame conservation.  Each tick publishes exactly one
    // raw frame carrying one system-power point; a frame is missing from
    // the store only if its envelope failed decode (corrupted) or it was
    // evicted from the spill queue (counted in spill.dropped, which this
    // schedule's short outages never overflow into).
    let counts = mon.chaos_counts().unwrap();
    let decode_errors = mon.broker().stats().decode_errors;
    let stored = mon
        .store()
        .query(SeriesKey::new(mon.metrics().system_power, CompId::SYSTEM), Ts::ZERO, Ts(u64::MAX))
        .len() as u64;
    assert_eq!(mon.spill_dropped(), 0, "short outages must not overflow the spill queue");
    assert_eq!(
        stored,
        TICKS - decode_errors,
        "every published frame is stored or counted as a decode error"
    );

    let digest = mon
        .store()
        .all_series()
        .into_iter()
        .map(|k| {
            let pts = mon
                .store()
                .query(k, Ts::ZERO, Ts(u64::MAX))
                .into_iter()
                .map(|(t, v)| (t.0, v.to_bits()))
                .collect();
            (format!("{k:?}"), pts)
        })
        .collect();
    SoakOutcome { digest, counts, decode_errors, gaps_checked }
}

fn main() {
    quiet_injected_panics();
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().map(|a| a.parse().expect("seed")).unwrap_or(2018);
    let workers: usize = args.next().map(|a| a.parse().expect("workers")).unwrap_or(0);

    println!("=== chaos soak: {TICKS} ticks, seed {seed}, workers {workers} ===");
    let first = run_soak(seed, workers);
    let c = first.counts;
    println!(
        "  injected: {} total ({} panic, {} hang, {} slow, {} stall, {} corrupt, \
         {} store-fail, {} worker-death)",
        c.total(),
        c.collector_panic,
        c.collector_hang,
        c.collector_slow,
        c.topic_stall,
        c.envelope_corrupt,
        c.store_write_fail,
        c.gateway_worker_death,
    );
    println!("  gaps surfaced within 2 ticks: {}", first.gaps_checked);
    println!("  corrupt envelopes rejected at decode: {}", first.decode_errors);
    println!("  healed: quarantine empty, coverage 100%, breaker closed, spill drained");

    // Invariant 5: bit-identical rerun.
    let second = run_soak(seed, workers);
    assert_eq!(first.counts, second.counts, "injection counts must reproduce by seed");
    assert_eq!(first.decode_errors, second.decode_errors);
    assert_eq!(first.digest, second.digest, "store digest must reproduce bit-for-bit");
    println!("  reproducible: rerun with seed {seed} is bit-identical");
    println!("OK");
}
