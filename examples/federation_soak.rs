//! Federation determinism soak, built for diffing.
//!
//! Ten member sites, 300 federation ticks, and a seeded WAN fault plan
//! that partitions, delays, and bandwidth-squeezes links throughout the
//! run.  Prints a canonical JSON document: the federation rollup store
//! (every series, every point, values as exact bit patterns), a federated
//! scatter answer with its provenance, and the WAN fault/drop counters.
//!
//! CI runs this at two worker counts and byte-diffs the output — the
//! federated answer must be a pure function of the seeds and the fault
//! plan, independent of how many threads each member pipeline uses:
//!
//! ```sh
//! cargo run --release --example federation_soak -- 0 > fed_serial.json
//! cargo run --release --example federation_soak -- 4 > fed_par4.json
//! diff fed_serial.json fed_par4.json
//! ```

use hpcmon::SimConfig;
use hpcmon_chaos::{ChaosFault, ChaosPlan, ScheduledFault};
use hpcmon_federation::{FedQueryResult, Federation, FederationConfig, SiteSpec};
use hpcmon_gateway::QueryRequest;
use hpcmon_metrics::Ts;
use hpcmon_response::Consumer;
use hpcmon_sim::TopologySpec;
use hpcmon_store::{AggFn, TimeRange};
use serde::Serialize;

const SITES: usize = 10;
const TICKS: u64 = 300;

/// The diff surface.  The worker count itself is deliberately NOT in the
/// document — output at any worker count must diff clean.
#[derive(Serialize)]
struct Doc {
    store: Vec<(String, Vec<(u64, u64)>)>,
    global_power: FedQueryResult,
    top_cpu: FedQueryResult,
    rollups_delivered: u64,
    wan_dropped: u64,
    deadline_shed: u64,
    partitions_injected: u64,
    delays_injected: u64,
    bandwidth_injected: u64,
}

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("usage: federation_soak <workers>"))
        .unwrap_or(0);

    // Ten 16-node sites: distinct seeds, staggered clock skews, one slow
    // link, one bandwidth-starved link.
    let sites: Vec<SiteSpec> = (0..SITES)
        .map(|i| {
            let mut cfg = SimConfig::small();
            cfg.topology = TopologySpec::Torus3D { dims: [2, 2, 2], nodes_per_router: 2 };
            cfg.seed = 1000 + i as u64;
            let mut spec = SiteSpec::new(format!("site{i:02}"), cfg)
                .workers(workers)
                .epoch_offset_ticks((i as u64 * 3) % 7);
            if i == 4 {
                spec.link.latency_ticks = 3;
            }
            if i == 7 {
                spec.link.bandwidth_bytes_per_tick = Some(700);
                spec.link.max_backlog = 8;
            }
            spec
        })
        .collect();

    // A rolling WAN fault plan: every 40 ticks some link partitions,
    // another slows down, a third gets squeezed.
    let mut faults = Vec::new();
    for round in 0u64..6 {
        let at = 20 + round * 40;
        faults.push(ScheduledFault {
            at_tick: at,
            fault: ChaosFault::WanPartition {
                site: format!("site{:02}", (round * 3) % SITES as u64),
                ticks: 15,
            },
        });
        faults.push(ScheduledFault {
            at_tick: at + 10,
            fault: ChaosFault::WanDelay {
                site: format!("site{:02}", (round * 3 + 1) % SITES as u64),
                added_ticks: 2,
                ticks: 20,
            },
        });
        faults.push(ScheduledFault {
            at_tick: at + 15,
            fault: ChaosFault::WanBandwidth {
                site: format!("site{:02}", (round * 3 + 2) % SITES as u64),
                bytes_per_tick: 400,
                ticks: 12,
            },
        });
    }
    let plan = ChaosPlan::from_faults(faults);

    let mut fed = Federation::new(FederationConfig::new(sites).link_plan(99, plan));
    fed.run_ticks(TICKS);

    let admin = Consumer::admin("soak");
    let metrics = fed.site_system(0).metrics();
    let global_power = fed.federated_query(
        &admin,
        &QueryRequest::AggregateAcross {
            metric: metrics.system_power,
            range: TimeRange::all(),
            agg: AggFn::Sum,
        },
        100,
    );
    let top_cpu = fed.federated_query(
        &admin,
        &QueryRequest::TopComponentsAt {
            metric: metrics.node_cpu,
            at: Ts(TICKS * fed.tick_ms()),
            tolerance_ms: fed.tick_ms(),
            limit: 20,
        },
        // Tight budget on purpose: the slow link (site04, 6-tick round
        // trip) must shed deterministically.
        5,
    );

    let counts = fed.wan_counts();
    let doc = Doc {
        store: fed.canonical_store(),
        global_power,
        top_cpu,
        rollups_delivered: fed.rollups_delivered(),
        wan_dropped: fed.wan_dropped(),
        deadline_shed: fed.deadline_shed(),
        partitions_injected: counts.partition,
        delays_injected: counts.delay,
        bandwidth_injected: counts.bandwidth,
    };
    println!("{}", serde_json::to_string_pretty(&doc).unwrap());
}
