//! NCSA-style aggregate→drill-down investigation (paper §II-2, Figures 4
//! and 5).
//!
//! An I/O storm appears in the filesystem-wide read rate; the view drills
//! down to the responsible nodes, attributes the job, and then renders the
//! per-job multi-metric panel with its CSV download.
//!
//! ```sh
//! cargo run --release --example site_ncsa_drilldown
//! ```

use hpcmon::scenarios::{fig4_drilldown, fig5_perjob};
use hpcmon_viz::DrilldownView;

fn main() {
    // --- Figure 4: spike → nodes → job ---
    let r = fig4_drilldown(2018);
    let view = DrilldownView::new(
        "Filesystem aggregate read rate (Figure 4)",
        "B/s",
        r.aggregate_read.clone(),
        r.peak,
        r.top_nodes.clone(),
        r.attributed.clone(),
    );
    println!("{}", view.render());
    match &r.attributed {
        Some(job) if job.id == r.culprit.id => {
            println!("attribution CORRECT: ground-truth culprit was job {}\n", r.culprit.id.0)
        }
        Some(job) => println!(
            "attribution mismatch: blamed {} but culprit was {}\n",
            job.id.0, r.culprit.id.0
        ),
        None => println!("no attribution found\n"),
    }
    println!("drill-down table CSV:\n{}", view.table_csv());

    // --- Figure 5: per-job panel + data download ---
    let r5 = fig5_perjob(2018);
    println!("{}", r5.panel_text);
    let path = std::env::temp_dir().join("hpcmon_fig5.csv");
    std::fs::write(&path, &r5.csv).expect("write csv");
    println!(
        "per-job data ({} rows) written to {} — the user-facing 'download the raw data' link",
        r5.csv.lines().count() - 1,
        path.display()
    );
}
