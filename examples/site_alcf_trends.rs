//! ALCF-style trend analysis on HSN link bit-error rates (paper §II-8).
//!
//! A marginal cable degrades in stages; the error-counter series trends
//! upward.  A streaming linear fit quantifies the trend and forecasts when
//! the link will cross the replace-me threshold — "flag and diagnose
//! unusual behaviors on component and subsystem levels."
//!
//! ```sh
//! cargo run --release --example site_alcf_trends
//! ```

use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_analysis::TrendTracker;
use hpcmon_metrics::{CompId, SeriesKey, Ts, MINUTE_MS};
use hpcmon_sim::{AppProfile, FaultKind, JobSpec};
use hpcmon_store::{QueryEngine, TimeRange};
use hpcmon_viz::LineChart;

fn main() {
    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .bench_suite_every(None)
        .with_probes(false)
        .build();
    // Constant traffic so the error counters have exposure.
    mon.submit_job(JobSpec::new(
        AppProfile::comm_heavy("fft"),
        "u",
        128,
        600 * MINUTE_MS,
        Ts::ZERO,
    ));
    mon.run_ticks(2);
    // Find a loaded link and degrade it in escalating stages — the aging
    // cable.
    let net = mon.engine().network();
    let hot_link = (0..net.num_links() as u32)
        .max_by(|&a, &b| net.link_traffic_bytes(a).partial_cmp(&net.link_traffic_bytes(b)).unwrap())
        .expect("links exist");
    for (i, mult) in [50.0, 150.0, 300.0, 600.0, 1_200.0].iter().enumerate() {
        mon.schedule_fault(
            Ts::from_mins(10 + i as u64 * 30),
            FaultKind::LinkDegrade { link: hot_link, error_multiplier: *mult },
        );
    }
    mon.run_ticks(160);

    let m = mon.metrics();
    let q = QueryEngine::new(mon.store());
    let errors = q.series(SeriesKey::new(m.link_errors, CompId::link(hot_link)), TimeRange::all());
    println!(
        "{}",
        LineChart::new(&format!("Bit errors per interval, link {hot_link}"), 70, 10)
            .with_unit("err")
            .add_series("errors", errors.clone())
            .render()
    );

    // Fit the trend over the degradation era and forecast.
    let mut tracker = TrendTracker::new();
    for &(t, v) in errors.iter().filter(|&&(t, _)| t >= Ts::from_mins(10)) {
        tracker.push(t, v);
    }
    let fit = tracker.fit().expect("enough points");
    println!(
        "trend: {:+.4} errors/interval per hour (r² {:.2}, n={})",
        fit.slope_per_sec * 3_600.0,
        fit.r_squared,
        fit.n
    );
    let threshold = 2_000.0;
    match fit.time_to_cross(threshold) {
        Some(when) => println!(
            "forecast: link crosses {threshold} errors/interval at ~{} — schedule replacement",
            when.display_hms()
        ),
        None => println!("forecast: no crossing of {threshold} on current trend"),
    }

    // The CRC-storm correlation rule also fired on the way up.
    let storms = mon.signals().iter().filter(|s| s.detail.contains("crc-retry-storm")).count();
    println!("crc-retry-storm rule fired {storms} times during the decay");
}
