//! CI golden-log gate: record a seeded chaos run serially, replay it at a
//! different worker count, and fail loudly (with artifacts) on divergence.
//!
//! Two subcommands, so the record and replay halves run as separate CI
//! steps with the event log on disk between them:
//!
//! ```sh
//! cargo run --release --example golden_log -- record golden.hpcmrly
//! cargo run --release --example golden_log -- replay golden.hpcmrly 4
//! ```
//!
//! `record` runs a 200-tick fault-injection soak (workers = 0) under the
//! flight recorder and writes the event log.  `replay` re-executes it at
//! the requested worker count and exits non-zero on any hash divergence,
//! after writing `divergence_report.txt` next to the log — CI uploads
//! both as artifacts so the failing run is attachable offline.

use hpcmon::SimConfig;
use hpcmon_chaos::{ChaosFault, ChaosPlan};
use hpcmon_gateway::{GatewayConfig, QueryRequest};
use hpcmon_metrics::{MetricId, Ts, MINUTE_MS};
use hpcmon_replay::{EventLog, FlightRecorder, Replayer, RunSpec};
use hpcmon_response::Consumer;
use hpcmon_sim::{AppProfile, JobSpec};
use hpcmon_store::{AggFn, TimeRange};
use std::path::Path;
use std::process::ExitCode;

const TICKS: u64 = 200;

/// Injected collector panics unwind through the supervisor's catch; keep
/// the default hook quiet for those while leaving real panics loud.
fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos: injected collector panic"));
        if !injected {
            default(info);
        }
    }));
}

fn plan() -> ChaosPlan {
    let collectors = ["node", "hsn", "fs", "env"];
    let mut plan = ChaosPlan::new();
    for block in 0..(TICKS / 50) {
        let base = 10 + block * 50;
        let c = collectors[(block as usize) % collectors.len()];
        plan.schedule(base, ChaosFault::CollectorPanic { collector: c.into() });
        plan.schedule(
            base + 10,
            ChaosFault::BrokerTopicStall { topic: "metrics/frame".into(), ticks: 2 },
        );
        plan.schedule(base + 20, ChaosFault::EnvelopeCorrupt { rate: 0.4, ticks: 4 });
        plan.schedule(
            base + 30,
            ChaosFault::StoreWriteFail { shard: (block % 4) as usize, ticks: 3 },
        );
    }
    plan
}

fn record(path: &Path) {
    let spec = RunSpec::new(SimConfig::small())
        .chaos(2018, plan())
        .supervision(true)
        .gateway(GatewayConfig { default_deadline_ms: 10_000, ..GatewayConfig::default() })
        .snapshot_every(50);
    let mut rec = FlightRecorder::new(spec);
    rec.submit_job(JobSpec::new(
        AppProfile::checkpointing("climate"),
        "bob",
        32,
        400 * MINUTE_MS,
        Ts::ZERO,
    ));
    let ops = Consumer::admin("ops");
    let agg = QueryRequest::AggregateAcross {
        metric: MetricId(0),
        range: TimeRange { from: Ts::ZERO, to: Ts(u64::MAX) },
        agg: AggFn::Mean,
    };
    rec.subscribe(&ops, agg.clone(), "ops/load").expect("gateway is on").expect("valid");
    for t in 0..TICKS {
        if t % 40 == 15 {
            rec.query(&ops, agg.clone()).expect("gateway is on").expect("valid");
        }
        rec.tick();
    }
    let log = rec.finish();
    log.write_to(path).expect("event log writes");
    println!(
        "recorded {} ticks ({} snapshots) -> {}",
        log.len(),
        log.snapshots.len(),
        path.display()
    );
}

fn replay(path: &Path, workers: usize) -> ExitCode {
    let log = EventLog::read_from(path).expect("event log reads");
    let outcome = Replayer::with_workers(&log, workers).run_to_end();
    match outcome.divergence {
        None => {
            println!(
                "replay at {workers} workers: {} / {} tick hashes verified, zero divergence",
                outcome.ticks_verified,
                log.len()
            );
            ExitCode::SUCCESS
        }
        Some(report) => {
            let rendered = report.render();
            eprint!("{rendered}");
            let report_path = path.with_file_name("divergence_report.txt");
            std::fs::write(&report_path, rendered).expect("report writes");
            eprintln!(
                "replay diverged after {} clean ticks; report -> {}",
                outcome.ticks_verified,
                report_path.display()
            );
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    quiet_injected_panics();
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("record") if args.len() == 3 => {
            record(Path::new(&args[2]));
            ExitCode::SUCCESS
        }
        Some("replay") if args.len() == 4 => {
            let workers: usize = args[3].parse().expect("workers must be a number");
            replay(Path::new(&args[2]), workers)
        }
        _ => {
            eprintln!("usage: golden_log record <path> | golden_log replay <path> <workers>");
            ExitCode::FAILURE
        }
    }
}
