//! HLRS-style aggressor/victim classification (paper §II-10).
//!
//! An intermittent network-saturating application makes co-running
//! communication-sensitive jobs' runtimes vary; the classifier finds the
//! victims by runtime variability and implicates the stable co-runner as
//! the aggressor.
//!
//! ```sh
//! cargo run --release --example site_hlrs_aggressor
//! ```

use hpcmon_analysis::{classify_jobs, JobClass};
use hpcmon_metrics::{Ts, MINUTE_MS};
use hpcmon_sim::{AppProfile, JobSpec, SimConfig, SimEngine, TopologySpec};

fn main() {
    let mut cfg = SimConfig::small();
    cfg.topology = TopologySpec::Torus3D { dims: [8, 4, 4], nodes_per_router: 2 };
    cfg.link_capacity_bytes_per_sec = 0.8e9;
    // Random placement: jobs interleave across the torus, so the
    // aggressor's traffic shares links with everyone (the pre-TAS Blue
    // Waters situation under which HLRS-style interference shows up).
    cfg.scheduler.placement = hpcmon_sim::sched::Placement::Random;
    let mut engine = SimEngine::new(cfg);

    // The aggressor: a big network-saturating app with an intermittent
    // duty cycle (its own runtime is consistently self-limited → low
    // variability run to run).
    for k in 0..12u64 {
        engine.submit_job(JobSpec::new(
            AppProfile::comm_heavy("spectral_fft"),
            "noisy",
            128,
            6 * MINUTE_MS,
            Ts::from_mins(k * 45),
        ));
    }
    // The victims: short communication-sensitive jobs throughout; the ones
    // overlapping the aggressor stretch, the rest do not → high CV.
    let mut victim_app = AppProfile::comm_heavy("halo3d");
    victim_app.phases[0].net_bytes_per_sec = 600e6;
    for k in 0..40u64 {
        engine.submit_job(JobSpec::new(
            victim_app.clone(),
            "victim_user",
            16,
            8 * MINUTE_MS,
            Ts::from_mins(3 + k * 11),
        ));
    }
    // A bystander: compute-bound, indifferent to the network.
    for k in 0..20u64 {
        engine.submit_job(JobSpec::new(
            AppProfile::compute_heavy("stencil3d"),
            "quiet_user",
            16,
            8 * MINUTE_MS,
            Ts::from_mins(5 + k * 23),
        ));
    }

    engine.run_until(Ts::from_mins(10 * 60));

    let reports = classify_jobs(engine.scheduler().records(), 0.08, 4);
    println!("=== aggressor/victim classification (runtime variability) ===\n");
    println!(
        "{:<14} {:>5} {:>12} {:>8} {:>10}  class",
        "app", "runs", "mean rt (m)", "cv", "overlap"
    );
    for r in &reports {
        println!(
            "{:<14} {:>5} {:>12.1} {:>8.3} {:>10.2}  {:?}",
            r.app,
            r.runs,
            r.mean_runtime_ms / MINUTE_MS as f64,
            r.cv,
            r.overlap_with_victims,
            r.class
        );
    }
    let victims: Vec<_> =
        reports.iter().filter(|r| r.class == JobClass::Victim).map(|r| r.app.as_str()).collect();
    let aggressors: Vec<_> =
        reports.iter().filter(|r| r.class == JobClass::Aggressor).map(|r| r.app.as_str()).collect();
    println!("\nvictims: {victims:?}");
    println!("aggressor suspects (stable runtimes, co-ran with victims): {aggressors:?}");
}
