//! SNL-style congestion regions and power/p-state sweeps (paper §II-9).
//!
//! Part 1: synchronized HSN stall counters banded into congestion levels
//! and localized to regions — a hotspot job in one cabinet lights up its
//! region only.  Part 2: the p-state sweep showing the energy/runtime
//! tradeoff SNL explores "with the goal of improving application and
//! system energy efficiency while maintaining performance targets".
//!
//! ```sh
//! cargo run --release --example site_snl_congestion
//! ```

use hpcmon::scenarios::{congestion_regions, pstate_sweep};
use hpcmon_viz::CabinetHeatmap;

fn main() {
    // --- congestion regions ---
    let r = congestion_regions(2018);
    println!("=== HSN congestion by region (stall-counter analysis) ===\n");
    println!("{:<8} {:>12} {:>8}  level", "region", "stall ratio", "links");
    for region in &r.map.regions {
        println!(
            "{:<8} {:>12.3} {:>8}  {:?}",
            region.region, region.stall_ratio, region.active_links, region.level
        );
    }
    let values: Vec<f64> = r.map.regions.iter().map(|x| x.stall_ratio).collect();
    println!("\n{}", CabinetHeatmap::new("Congestion heatmap (by cabinet)", 8, values).render());
    println!(
        "hotspot job lives in cabinet {}; regions flagged Medium+: {:?} -> {}",
        r.hot_cabinet,
        r.hot_regions,
        if r.hot_regions.contains(&r.hot_cabinet) { "LOCALIZED CORRECTLY" } else { "missed" }
    );

    // --- p-state sweep ---
    println!("\n=== p-state sweep: runtime / power / energy ===\n");
    println!("{:>6} {:>12} {:>14} {:>14}", "scale", "runtime (m)", "mean power kW", "energy MJ");
    let sweep = pstate_sweep(&[0.5, 0.6, 0.7, 0.8, 0.9, 1.0], 2018);
    for p in &sweep {
        println!(
            "{:>6.2} {:>12.1} {:>14.1} {:>14.2}",
            p.scale,
            p.runtime_ms as f64 / 60_000.0,
            p.mean_power_w / 1_000.0,
            p.energy_j / 1e6
        );
    }
    let best = sweep
        .iter()
        .min_by(|a, b| a.energy_j.partial_cmp(&b.energy_j).expect("no NaN"))
        .expect("non-empty sweep");
    println!(
        "\nenergy-optimal p-state: {:.2} ({:.2} MJ, {:.0}% longer than full speed)",
        best.scale,
        best.energy_j / 1e6,
        100.0 * (best.runtime_ms as f64 / sweep.last().unwrap().runtime_ms as f64 - 1.0)
    );
}
