//! Quickstart: stand up a monitored machine, run a small workload, look
//! at the ops dashboard, and inspect what the monitoring stack produced.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_metrics::{Ts, MINUTE_MS};
use hpcmon_sim::{AppProfile, FaultKind, JobSpec};
use hpcmon_store::TimeRange;
use hpcmon_viz::Dashboard;

fn main() {
    // A 128-node machine with the full monitoring pipeline attached.
    let mut mon = MonitoringSystem::builder(SimConfig::small()).build();

    // A small workload mix.
    for (i, app) in [
        AppProfile::compute_heavy("stencil3d"),
        AppProfile::comm_heavy("spectral_fft"),
        AppProfile::checkpointing("climate"),
    ]
    .into_iter()
    .enumerate()
    {
        mon.submit_job(JobSpec::new(app, "alice", 32, 25 * MINUTE_MS, Ts::from_mins(i as u64)));
    }

    // Something will go wrong at minute 20.
    mon.schedule_fault(Ts::from_mins(20), FaultKind::NodeCrash { node: 17 });

    // One hour of operation.
    let summary = mon.run_ticks(60);
    println!(
        "ran {} ticks: {} samples, {} log records, {} signals, {} actions\n",
        summary.ticks, summary.samples, summary.logs, summary.signals, summary.actions
    );

    // The shared ops dashboard, rendered against the live store.
    let dashboard = Dashboard::ops_default();
    println!("{}", dashboard.render(mon.store(), mon.registry(), TimeRange::all()));

    // What did the response engine do about the crash?
    println!("response actions:");
    for action in mon.actions().iter().take(8) {
        println!("  [{}] {} -> {:?} on {}", action.ts, action.rule, action.action, action.comp);
    }

    // At-a-glance state board and a user-facing wait estimate.
    println!("\n{}", mon.status_board().render());
    match mon.estimate_wait_ms(64) {
        Some(ms) => println!("estimated wait for a 64-node job: {:.1} min", ms as f64 / 60_000.0),
        None => println!("a 64-node job cannot currently fit"),
    }

    // The one-page operations report (markdown for the wiki).
    println!("\n--- ops report ---\n{}", mon.ops_report());

    // Storage footprint: the Table I "keep all data" argument in numbers.
    let stats = mon.store().stats();
    println!(
        "\nstore: {} series, {} hot + {} warm points, {:.2} compressed bytes/point",
        stats.series, stats.hot_points, stats.warm_points, stats.bytes_per_point
    );
    println!("logs: {} records stored", mon.log_store().len());
}
