//! Multi-site federation: a scatter-gather query plane over four sites
//! with WAN trouble.
//!
//! The paper is itself a ten-site collaboration, and its transport
//! requirement is "multiple flexible data paths ... with changes in data
//! direction and data access easily configured".  Here four full
//! monitoring stacks run in tick lockstep behind simulated WAN links:
//! each pushes a site-level rollup to the federation head (so a global
//! dashboard touches O(sites) series, not O(nodes)), and one federated
//! query scatters to every member gateway and merges with per-site
//! provenance — a partitioned site shows up as *named missing*, never as
//! silently absent data.
//!
//! ```sh
//! cargo run --release --example fleet_federation
//! ```

use hpcmon::SimConfig;
use hpcmon_chaos::{ChaosFault, ChaosPlan, ScheduledFault};
use hpcmon_federation::{FedResponse, Federation, FederationConfig, SiteSpec, SiteStatus};
use hpcmon_gateway::QueryRequest;
use hpcmon_metrics::{CompId, SeriesKey, Ts, MINUTE_MS};
use hpcmon_response::Consumer;
use hpcmon_sim::{AppProfile, FaultKind, JobSpec};
use hpcmon_store::{AggFn, TimeRange};

const TICKS: u64 = 45;

fn site(name: &str, seed: u64) -> SiteSpec {
    let mut cfg = SimConfig::small();
    cfg.seed = seed;
    SiteSpec::new(name, cfg)
}

fn main() {
    // Four sites; "delta" sits behind a slower trans-Atlantic link.
    let sites = vec![
        site("alpha", 1),
        site("beta", 2),
        site("gamma", 3),
        site("delta", 4).link(hpcmon_federation::WanLinkSpec {
            latency_ticks: 3,
            bandwidth_bytes_per_tick: None,
            max_backlog: 64,
        }),
    ];
    // WAN trouble mid-run: beta's link partitions for 20 ticks, gamma's
    // picks up 2 ticks of extra latency.
    let plan = ChaosPlan::from_faults(vec![
        ScheduledFault {
            at_tick: 30,
            fault: ChaosFault::WanPartition { site: "beta".into(), ticks: 20 },
        },
        ScheduledFault {
            at_tick: 30,
            fault: ChaosFault::WanDelay { site: "gamma".into(), added_ticks: 2, ticks: 20 },
        },
    ]);
    let mut fed = Federation::new(FederationConfig::new(sites).link_plan(7, plan));

    // Different local trouble at each site.
    fed.site_system_mut(0).submit_job(JobSpec::new(
        AppProfile::comm_heavy("fft"),
        "alice",
        64,
        90 * MINUTE_MS,
        Ts::ZERO,
    ));
    fed.site_system_mut(0).schedule_fault(Ts::from_mins(10), FaultKind::NodeCrash { node: 3 });
    fed.site_system_mut(1).submit_job(JobSpec::new(
        AppProfile::checkpointing("climate"),
        "bob",
        64,
        90 * MINUTE_MS,
        Ts::ZERO,
    ));
    fed.site_system_mut(1).schedule_fault(Ts::from_mins(20), FaultKind::LinkDown { link: 5 });
    fed.site_system_mut(2).submit_job(JobSpec::new(
        AppProfile::compute_heavy("lattice-qcd"),
        "carol",
        96,
        80 * MINUTE_MS,
        Ts::from_mins(5),
    ));
    fed.site_system_mut(3).submit_job(JobSpec::new(
        AppProfile::compute_heavy("md-prod"),
        "dave",
        48,
        70 * MINUTE_MS,
        Ts::from_mins(2),
    ));

    fed.run_ticks(TICKS);

    let admin = Consumer::admin("fleet-dashboard");
    let metrics = fed.site_system(0).metrics();

    // Global dashboard off the rollup plane: O(sites) series only.
    let ids = fed.metric_ids();
    let total_power = fed
        .store()
        .query(SeriesKey::new(ids.power_w, CompId::SYSTEM), Ts::ZERO, Ts(u64::MAX))
        .last()
        .map_or(0.0, |&(_, v)| v);
    println!(
        "{} sites, {} ticks; rollup store holds {} series (each member: {})",
        fed.num_sites(),
        fed.tick_count(),
        fed.store().all_series().len(),
        fed.site_system(0).store().all_series().len(),
    );
    println!("federation total power (last rollup): {total_power:.0} W\n");

    // Federated top-k: which nodes, anywhere in the fleet, are hottest?
    // beta is partitioned right now — the answer says so by name.
    let request = QueryRequest::TopComponentsAt {
        metric: metrics.node_cpu,
        at: Ts(TICKS * fed.tick_ms()),
        tolerance_ms: MINUTE_MS,
        limit: 5,
    };
    let result = fed.federated_query(&admin, &request, 100);
    println!(
        "fleet-wide top-5 CPU ({} of {} sites answered):",
        result.outcomes.iter().filter(|o| o.answered()).count(),
        fed.num_sites()
    );
    if let FedResponse::Ranked(rows) = &result.merged {
        for row in rows {
            println!(
                "  {:<6} {:>8}  {:.3}",
                row.site,
                format!("node/{}", row.comp.index),
                row.value
            );
        }
    }
    for outcome in &result.outcomes {
        match &outcome.status {
            SiteStatus::Answered => {}
            status => println!("  !! {}: {status:?}", outcome.site),
        }
    }

    // Federated aggregate with a tight deadline: delta's 3-tick link
    // (6-tick round trip) blows a 5-tick budget and is shed up front.
    let request = QueryRequest::AggregateAcross {
        metric: metrics.system_power,
        range: TimeRange::all(),
        agg: AggFn::Sum,
    };
    let result = fed.federated_query(&admin, &request, 5);
    println!("\nglobal power sum under a 5-tick deadline:");
    if let FedResponse::Points(points) = &result.merged {
        if let Some((ts, v)) = points.last() {
            println!("  latest point: t={} min, {v:.0} W (partial)", ts.0 / MINUTE_MS);
        }
    }
    for site in result.unreachable_sites() {
        println!("  missing: {site}");
    }
    println!(
        "\nWAN telemetry: {} rollups delivered, {} dropped, {} scatter sheds, faults {:?}",
        fed.rollups_delivered(),
        fed.wan_dropped(),
        fed.deadline_shed(),
        fed.wan_counts(),
    );
}
