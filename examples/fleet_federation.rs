//! Multi-site federation: two monitored machines forwarding their streams
//! to a central store.
//!
//! The paper is itself a ten-site collaboration, and its transport
//! requirement is "multiple flexible data paths ... with changes in data
//! direction and data access easily configured".  Here each site's broker
//! is relayed into a central broker under a `site/<name>` prefix (the
//! ERD-forwarding pattern), a central log store ingests both streams, and
//! one query answers questions across sites — plus a template-mining pass
//! that compares the two sites' log-line occurrence rates.
//!
//! ```sh
//! cargo run --release --example fleet_federation
//! ```

use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_analysis::TemplateMiner;
use hpcmon_metrics::{Ts, MINUTE_MS};
use hpcmon_sim::{AppProfile, FaultKind, JobSpec};
use hpcmon_store::{LogQuery, LogStore};
use hpcmon_transport::{BackpressurePolicy, Broker, Relay, TopicFilter};

fn site(seed: u64) -> MonitoringSystem {
    let mut cfg = SimConfig::small();
    cfg.seed = seed;
    MonitoringSystem::builder(cfg).bench_suite_every(None).with_probes(false).build()
}

fn main() {
    let mut site_a = site(1);
    let mut site_b = site(2);
    let central = Broker::new();

    // Forward each site's log stream to the center, prefixed by site.
    let relay_a =
        Relay::start(site_a.broker(), central.clone(), TopicFilter::new("logs/#"), "site/alpha");
    let relay_b =
        Relay::start(site_b.broker(), central.clone(), TopicFilter::new("logs/#"), "site/beta");
    let central_sub =
        central.subscribe(TopicFilter::new("site/#"), 1 << 14, BackpressurePolicy::Block);

    // Different trouble at each site.
    site_a.submit_job(JobSpec::new(
        AppProfile::comm_heavy("fft"),
        "alice",
        64,
        90 * MINUTE_MS,
        Ts::ZERO,
    ));
    site_a.schedule_fault(Ts::from_mins(10), FaultKind::NodeCrash { node: 3 });
    site_b.submit_job(JobSpec::new(
        AppProfile::checkpointing("climate"),
        "bob",
        64,
        90 * MINUTE_MS,
        Ts::ZERO,
    ));
    site_b.schedule_fault(Ts::from_mins(20), FaultKind::LinkDown { link: 5 });

    // An hour of operations at both sites.
    for _ in 0..60 {
        site_a.tick();
        site_b.tick();
    }
    // Let the relays drain, then stop them.
    let forwarded = relay_a.stop() + relay_b.stop();

    // Central ingest: one log store for the fleet, tagged by topic prefix.
    let fleet_logs = LogStore::new();
    let mut miner_a = TemplateMiner::new();
    let mut miner_b = TemplateMiner::new();
    for env in central_sub.drain() {
        if let Some(log) = env.payload.as_log() {
            if env.topic.starts_with("site/alpha/") {
                miner_a.observe(log);
            } else {
                miner_b.observe(log);
            }
            fleet_logs.append(log.clone());
        }
    }

    println!("forwarded {forwarded} log records from 2 sites to the center");
    println!("central store holds {} records\n", fleet_logs.len());

    // Fleet-wide query: every crash, anywhere.
    let crashes = fleet_logs.search(&LogQuery::tokens(&["heartbeat", "fault"]));
    println!("fleet-wide crash search: {} hit(s)", crashes.len());
    for r in &crashes {
        println!("  {}", r.render());
    }

    // Cross-site occurrence comparison: which log lines does beta emit at
    // a different rate than alpha?
    println!("\nlog-template occurrence shifts (beta vs alpha, >=3x):");
    for shift in miner_b.shifts_from(&miner_a, 3.0).iter().take(6) {
        println!(
            "  {:>8} -> {:<8} {:?}",
            shift.baseline,
            shift.current,
            shift.example.chars().take(60).collect::<String>()
        );
    }
    println!("\ntop templates fleet-wide (alpha):");
    for t in miner_a.top_k(3) {
        println!("  {:>6}x  {}", t.count, t.example.chars().take(60).collect::<String>());
    }
}
