//! CSCS-style pre/post-job health gating (paper §II-5).
//!
//! "No job should start on a node with a problem, and a problem should
//! only be encountered by at most one batch job."  Runs the same faulty
//! machine twice — gating off and on — and compares job casualties, then
//! shows the sidelined-node bookkeeping.
//!
//! ```sh
//! cargo run --release --example site_cscs_gating
//! ```

use hpcmon::scenarios::gating_experiment;
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_metrics::{Ts, MINUTE_MS};
use hpcmon_sim::{AppProfile, FaultKind, JobSpec};

fn main() {
    let r = gating_experiment(2018);
    println!("=== health gating outcome (identical fault schedule) ===");
    println!(
        "  gating OFF: {:>3} jobs failed, {:>3} completed",
        r.failed_without_gating, r.completed_without_gating
    );
    println!(
        "  gating ON:  {:>3} jobs failed, {:>3} completed",
        r.failed_with_gating, r.completed_with_gating
    );

    // Live view of the gate in action: a GPU dies, the pre-job check
    // catches it, the job lands elsewhere.
    let mut cfg = SimConfig::small();
    cfg.scheduler.health_gating = true;
    let mut mon = MonitoringSystem::builder(cfg).build();
    mon.schedule_fault(Ts::from_mins(1), FaultKind::GpuFail { gpu: 5 }); // GPU 5 lives on node 5
    mon.run_ticks(2);
    let id = mon.submit_job(JobSpec::new(
        AppProfile::compute_heavy("gpu_stencil"),
        "dave",
        8,
        10 * MINUTE_MS,
        mon.engine().now(),
    ));
    mon.run_ticks(2);
    let rec = mon.engine().scheduler().record(id);
    println!("\njob {} placed on nodes {:?}", id.0, rec.nodes);
    println!(
        "node 5 (failed GPU) excluded: {}",
        if rec.nodes.contains(&5) { "NO — gate failed!" } else { "yes" }
    );
    println!("out-of-service list: {:?}", mon.engine().scheduler().out_of_service());
    println!("\nscheduler log lines:");
    for rec in
        mon.log_store().search(&hpcmon_store::LogQuery::tokens(&["health", "check"])).iter().take(5)
    {
        println!("  {}", rec.render());
    }
}
