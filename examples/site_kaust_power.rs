//! KAUST-style power monitoring (paper §II-7, Figure 3).
//!
//! Runs a full-machine application with an injected load-imbalance window
//! and shows the detection chain: total + per-cabinet power series, the
//! cabinet heatmap at the worst moment, the imbalance detector's flags,
//! and a power-profile comparison against a known-good run.
//!
//! ```sh
//! cargo run --release --example site_kaust_power
//! ```

use hpcmon::scenarios::fig3_power;
use hpcmon_analysis::PowerProfileLibrary;
use hpcmon_metrics::Ts;
use hpcmon_viz::{CabinetHeatmap, LineChart};

fn main() {
    let r = fig3_power(2018);

    println!(
        "{}",
        LineChart::new("Total system power (Figure 3, top)", 70, 10)
            .with_unit("W")
            .add_series("system", r.total_power.clone())
            .add_marker(Ts::from_mins(18))
            .add_marker(Ts::from_mins(23))
            .render()
    );

    // Per-cabinet view at the most imbalanced minute.
    let worst = r.flagged_ticks.first().copied().unwrap_or(Ts::from_mins(20));
    let cabs: Vec<f64> = r
        .cabinet_power
        .iter()
        .filter_map(|(_, pts)| pts.iter().find(|&&(t, _)| t == worst).map(|&(_, v)| v))
        .collect();
    println!(
        "{}",
        CabinetHeatmap::new(
            &format!("Cabinet power at {} (Figure 3, bottom)", worst.display_hms()),
            8,
            cabs
        )
        .render()
    );

    println!("cabinet max/min in window: {:.2}x   (paper: up to 3x)", r.window_cabinet_ratio);
    println!("balanced/imbalanced total draw: {:.2}x (paper: almost 1.9x)", r.draw_ratio);
    println!(
        "imbalance detector flagged {} ticks: {:?}",
        r.flagged_ticks.len(),
        r.flagged_ticks.iter().map(|t| t.display_hms()).collect::<Vec<_>>()
    );

    // Profile matching: the imbalanced run deviates from the healthy one.
    let healthy = fig3_power(99); // different seed, but same app without...
                                  // (the scenario always injects the window, so build the reference from
                                  // the healthy minutes of the run instead)
    let healthy_profile: Vec<f64> = healthy
        .total_power
        .iter()
        .filter(|&&(t, _)| t <= Ts::from_mins(15))
        .map(|&(_, v)| v)
        .collect();
    let mut lib = PowerProfileLibrary::new();
    lib.tolerance = 0.05; // KAUST-tight: profiles repeat within a few percent
    lib.record_reference("vasp", &healthy_profile);
    let run_profile: Vec<f64> = r.total_power.iter().map(|&(_, v)| v).collect();
    let verdict = lib.compare("vasp", &run_profile).expect("reference recorded");
    println!(
        "\npower-profile comparison vs known-good: deviation {:.1}% -> {}",
        verdict.deviation * 100.0,
        if verdict.matches { "matches (unexpected!)" } else { "MISMATCH — investigate" }
    );
}
