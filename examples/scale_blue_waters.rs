//! Scale demonstration: full monitoring of a Blue Waters-sized machine.
//!
//! The paper's title says *large-scale*: Blue Waters is 27,648 nodes and
//! NCSA collects from "all major components and subsystems ... at one
//! minute intervals", synchronized.  This example builds a machine of that
//! size (24×24×24 torus, 2 nodes/router ≈ 27.6k nodes, ~83k directed
//! links), runs a mixed workload under the complete monitoring pipeline,
//! and reports what full-fidelity collection actually costs — samples per
//! tick, wall time per tick, and store footprint.
//!
//! ```sh
//! cargo run --release --example scale_blue_waters
//! ```

use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_metrics::{Ts, MINUTE_MS};
use hpcmon_sim::sched::Placement;
use hpcmon_sim::{FaultKind, Rng, TopologySpec};
use std::time::Instant;

fn main() {
    let mut cfg = SimConfig::small();
    cfg.topology = TopologySpec::Torus3D { dims: [24, 24, 24], nodes_per_router: 2 };
    cfg.link_capacity_bytes_per_sec = 9.6e9; // Gemini-class
    cfg.scheduler.placement = Placement::TopologyAware;
    let build_start = Instant::now();
    let mut mon = MonitoringSystem::builder(cfg).bench_suite_every(Some(10)).build();
    println!(
        "machine: {} nodes, {} routers, {} links, {} cabinets (built in {:?})",
        mon.engine().num_nodes(),
        mon.engine().topology().num_routers(),
        mon.engine().topology().num_links(),
        mon.engine().topology().num_cabinets(),
        build_start.elapsed()
    );

    // A production-flavored mix: ~200 jobs of varying sizes.
    let mut rng = Rng::new(7);
    let gen = hpcmon_sim::workload::WorkloadGenerator::standard(64, 1_024)
        .with_work_range(20 * MINUTE_MS, 90 * MINUTE_MS);
    for i in 0..200u64 {
        let spec = gen.next_job(Ts::from_mins(i / 4), &mut rng);
        mon.submit_job(spec);
    }
    // And some trouble to find.
    mon.schedule_fault(Ts::from_mins(5), FaultKind::NodeCrash { node: 12_345 });
    mon.schedule_fault(Ts::from_mins(8), FaultKind::OstDegrade { ost: 3, factor: 6.0 });

    println!("\n{:>6} {:>12} {:>12} {:>10} {:>8}", "tick", "samples", "wall ms", "logs", "signals");
    let mut total_samples = 0u64;
    let mut total_wall_ms = 0.0;
    for tick in 1..=15u64 {
        let t0 = Instant::now();
        let r = mon.tick();
        let wall = t0.elapsed().as_secs_f64() * 1_000.0;
        total_samples += r.samples as u64;
        total_wall_ms += wall;
        if tick <= 5 || tick % 5 == 0 {
            println!(
                "{tick:>6} {:>12} {:>12.1} {:>10} {:>8}",
                r.samples,
                wall,
                r.logs,
                r.signals.len()
            );
        }
    }

    let stats = mon.store().stats();
    println!("\nafter 15 monitored minutes of a {}-node machine:", mon.engine().num_nodes());
    println!(
        "  {:>14} samples collected ({:.1}k samples/tick)",
        total_samples,
        total_samples as f64 / 15.0 / 1_000.0
    );
    println!("  {:>14.1} ms mean monitoring wall time per 1-minute tick", total_wall_ms / 15.0);
    println!(
        "  {:>14} series in the store; {} hot + {} warm points, {:.2} B/pt warm",
        stats.series, stats.hot_points, stats.warm_points, stats.bytes_per_point
    );
    println!(
        "  {:>14} log records; {} signals; {} actions",
        mon.log_store().len(),
        mon.signals().len(),
        mon.actions().len()
    );
    println!("\n{}", mon.status_board().render());
    println!(
        "monitoring overhead: {:.4}% of the interval it monitors",
        100.0 * (total_wall_ms / 15.0) / 60_000.0
    );
}
