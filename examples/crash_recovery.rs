//! Crash/recovery drill: kill the monitoring system at a seeded tick
//! under active disk-fault chaos, recover from the write-ahead log, and
//! verify the result against an uninterrupted reference (DESIGN.md §15).
//!
//! The drill runs the same crash twice, once per sync policy:
//!
//! 1. **fsync-per-tick** — zero loss: the recovered system resumes at
//!    exactly the crash tick, its state hash matches the reference chain,
//!    and its full snapshot is byte-identical to the reference's.
//! 2. **group-commit(4)** — bounded loss: at most one commit window of
//!    ticks is lost, and the recovered state is byte-identical to the
//!    reference at whatever tick it resumed.
//!
//! Both recoveries then continue in lockstep with the reference for a
//! tail of ticks, re-verifying the hash chain every tick.  Any violation
//! panics, so the process exits nonzero — the CI crash-soak job runs this
//! across seeds and worker counts.
//!
//! ```sh
//! cargo run --release --example crash_recovery            # seed 2018, serial
//! cargo run --release --example crash_recovery -- 7 4     # seed 7, 4 workers
//! ```

use hpcmon::{MonitoringSystem, SimConfig, TickStateHash};
use hpcmon_chaos::{ChaosFault, ChaosPlan};
use hpcmon_durability::{DurabilityConfig, SimDisk, SyncPolicy};
use hpcmon_metrics::{Ts, MINUTE_MS};
use hpcmon_sim::{AppProfile, JobSpec};
use std::sync::Arc;

/// Ticks of lockstep continuation after each recovery.
const TAIL: u64 = 8;

/// Injected collector panics unwind through the supervisor's catch; keep
/// the default hook quiet for those while leaving real panics loud.
fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos: injected collector panic"));
        if !injected {
            default(info);
        }
    }));
}

/// Disk and pipeline faults, all lossless under retry + fsync: refused
/// appends queue in the plane's backlog, torn writes only bite unsynced
/// bytes.  Offsets are spread across the pre-crash window.
fn fault_plan(crash_tick: u64) -> ChaosPlan {
    let mut plan = ChaosPlan::new();
    let at = |frac: u64| 2 + (crash_tick - 4) * frac / 8;
    plan.schedule(at(0), ChaosFault::CollectorPanic { collector: "power".into() });
    plan.schedule(at(1), ChaosFault::DiskWriteFail { ticks: 2 });
    plan.schedule(at(3), ChaosFault::BrokerTopicStall { topic: "metrics/frame".into(), ticks: 2 });
    plan.schedule(at(4), ChaosFault::DiskFull { ticks: 2 });
    plan.schedule(at(6), ChaosFault::StoreWriteFail { shard: 0, ticks: 2 });
    plan.schedule(at(7), ChaosFault::DiskTornWrite);
    plan
}

fn builder(seed: u64, workers: usize, crash_tick: u64) -> hpcmon::system::MonitorBuilder {
    MonitoringSystem::builder(SimConfig::small())
        .self_telemetry(false)
        .workers(workers)
        .chaos(seed, fault_plan(crash_tick))
}

fn seed_inputs(mon: &mut MonitoringSystem) {
    mon.submit_job(JobSpec::new(
        AppProfile::checkpointing("climate"),
        "bob",
        32,
        400 * MINUTE_MS,
        Ts::ZERO,
    ));
}

fn state_json(mon: &MonitoringSystem) -> String {
    serde_json::to_string(&mon.snapshot()).expect("snapshot serializes")
}

/// Uninterrupted reference run: hash chain for `ticks` ticks and the
/// serialized snapshot at each tick the drill will byte-diff against.
fn reference(
    seed: u64,
    workers: usize,
    crash_tick: u64,
    ticks: u64,
) -> Vec<(TickStateHash, String)> {
    let mut mon = builder(seed, workers, crash_tick).build();
    mon.set_state_hashing(true);
    seed_inputs(&mut mon);
    (0..ticks)
        .map(|_| {
            mon.tick();
            (mon.last_state_hash().expect("hashing on"), state_json(&mon))
        })
        .collect()
}

/// Crash at `crash_tick` under `policy`, recover, verify.  Returns
/// `(resumed_tick, recovery_report_json)`.
fn drill(
    seed: u64,
    workers: usize,
    crash_tick: u64,
    policy: SyncPolicy,
    chain: &[(TickStateHash, String)],
) -> (u64, String) {
    let cfg = DurabilityConfig { sync: policy, checkpoint_every: 8, scrub_every: 4 };
    let disk = Arc::new(SimDisk::new());
    let mut durable = builder(seed, workers, crash_tick).durability(disk.clone(), cfg).build();
    durable.set_state_hashing(true);
    seed_inputs(&mut durable);
    for _ in 0..crash_tick {
        durable.tick();
    }
    assert_eq!(
        durable.last_state_hash().unwrap(),
        chain[crash_tick as usize - 1].0,
        "durability plane must be hash-neutral"
    );
    drop(durable);
    disk.crash();

    let mut recovered = builder(seed, workers, crash_tick).build();
    recovered.set_state_hashing(true);
    let outcome = recovered.recover_from_medium(disk, cfg);
    let resumed = outcome.resumed_tick;
    assert_eq!(outcome.hash_mismatches, 0, "replay diverged from the recorded chain: {outcome:?}");
    assert!(resumed <= crash_tick, "recovery cannot invent ticks");
    assert!(
        resumed + policy.loss_bound() >= crash_tick,
        "lost more than the sync policy allows: resumed {resumed}, crashed {crash_tick}"
    );
    if policy == SyncPolicy::EveryTick {
        assert_eq!(resumed, crash_tick, "fsync-per-tick loses zero ticks");
    }
    let (want_hash, want_json) = &chain[resumed as usize - 1];
    // A resume with zero replayed ticks restored straight from the
    // checkpoint: there is no frame to hash until the next tick, so the
    // chain check is carried by the byte-diff and the lockstep below.
    if outcome.replayed_ticks > 0 {
        assert_eq!(recovered.last_state_hash().unwrap(), *want_hash, "hash chain broken at resume");
    }
    assert_eq!(&state_json(&recovered), want_json, "recovered state not byte-identical");

    // Lockstep continuation: the recovered system must track the
    // reference chain tick for tick.
    for t in resumed..resumed + TAIL {
        recovered.tick();
        assert_eq!(
            recovered.last_state_hash().unwrap(),
            chain[t as usize].0,
            "post-recovery divergence at tick {}",
            t + 1
        );
    }
    (resumed, serde_json::to_string(&outcome.report).unwrap())
}

fn main() {
    quiet_injected_panics();
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().map(|a| a.parse().expect("seed")).unwrap_or(2018);
    let workers: usize = args.next().map(|a| a.parse().expect("workers")).unwrap_or(0);
    let crash_tick = 12 + seed % 9; // seeded kill point, 12..=20

    println!("=== crash recovery drill: seed {seed}, workers {workers}, crash at {crash_tick} ===");
    let chain = reference(seed, workers, crash_tick, crash_tick + TAIL + 4);

    let (resumed, report) = drill(seed, workers, crash_tick, SyncPolicy::EveryTick, &chain);
    println!("  fsync-per-tick: resumed at {resumed} (zero loss), report {report}");

    let policy = SyncPolicy::GroupCommit(4);
    let (resumed, report) = drill(seed, workers, crash_tick, policy, &chain);
    println!(
        "  group-commit(4): resumed at {resumed} (lost {} ≤ {}), report {report}",
        crash_tick - resumed,
        policy.loss_bound()
    );
    println!("  verified: hash chain, byte-identical snapshots, {TAIL}-tick lockstep continuation");
    println!("OK");
}
