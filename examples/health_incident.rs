//! Health-plane incident walkthrough: a staggered fault schedule drives
//! the SLO/alerting plane (DESIGN.md §13) through three incidents —
//! a broker topic stall, a store shard write outage, and a gateway
//! worker death — and prints the canonical alert timeline plus operator
//! board renders at key ticks.
//!
//! Everything printed is deterministic and worker-count-invariant: CI
//! runs this at workers 0 and 4 and diffs the transcripts byte for byte
//! (exemplar trace ids ride wall-clock stage timings, so the transcript
//! zeroes them, exactly as the canonical timeline does).  The example
//! also self-checks the off-is-off contract: the same run without the
//! health plane must leave stored bytes and the signal journal
//! bit-identical.
//!
//! ```sh
//! cargo run --release --example health_incident          # serial
//! cargo run --release --example health_incident -- 4     # 4 workers
//! ```

use hpcmon::health::HealthConfig;
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_chaos::{ChaosFault, ChaosPlan};
use hpcmon_metrics::{SeriesKey, Ts};
use hpcmon_viz::render_health_board;

const TICKS: u64 = 80;
const SEED: u64 = 2018;
const BOARD_TICKS: [u64; 4] = [6, 32, 57, 80];

fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos: injected collector panic"));
        if !injected {
            default(info);
        }
    }));
}

/// Three incidents, spaced so each resolves before the next begins.
fn incident_plan() -> ChaosPlan {
    let mut plan = ChaosPlan::new();
    plan.schedule(4, ChaosFault::BrokerTopicStall { topic: "metrics/frame".into(), ticks: 2 });
    plan.schedule(30, ChaosFault::StoreWriteFail { shard: 0, ticks: 3 });
    plan.schedule(55, ChaosFault::GatewayWorkerDeath);
    plan
}

fn builder(workers: usize, health: bool) -> MonitoringSystem {
    let mut b = MonitoringSystem::builder(SimConfig::small())
        .self_telemetry(false)
        .workers(workers)
        .chaos(SEED, incident_plan());
    if health {
        b = b.health(HealthConfig::standard());
    }
    b.build()
}

fn dump_store(mon: &MonitoringSystem) -> Vec<(SeriesKey, Vec<(Ts, f64)>)> {
    mon.store()
        .all_series()
        .into_iter()
        .map(|k| (k, mon.store().query(k, Ts::ZERO, Ts(u64::MAX))))
        .collect()
}

fn main() {
    quiet_injected_panics();
    let workers: usize = std::env::args().nth(1).map(|a| a.parse().expect("workers")).unwrap_or(0);

    let mut mon = builder(workers, true);
    mon.set_state_hashing(true);
    println!("=== health incident walkthrough: {TICKS} ticks, seed {SEED} ===");
    for tick in 1..=TICKS {
        mon.tick();
        if BOARD_TICKS.contains(&tick) {
            // Exemplar trace ids are wall-clock observability, not
            // deterministic state — zero them for the diffable render.
            let mut rep = mon.health_report().expect("health is on");
            for alert in &mut rep.active {
                alert.exemplar_trace = 0;
            }
            println!("\n{}", render_health_board(&rep));
        }
    }

    println!("\n--- canonical alert timeline ---");
    print!("{}", mon.health_timeline());

    let firing = mon.alert_events().iter().filter(|e| e.key.contains('/')).count();
    assert!(firing >= 9, "three incidents page at least three episodes");
    let rep = mon.health_report().expect("health is on");
    assert!(rep.active.is_empty(), "everything resolved by tick {TICKS}");

    // Off is off: the monitored data plane is bit-identical without the
    // health plane.
    let mut off = builder(workers, false);
    off.run_ticks(TICKS);
    assert_eq!(dump_store(&off), dump_store(&mon), "stored bytes identical with health off");
    assert_eq!(off.signals(), mon.signals(), "signal journal identical with health off");
    println!("\noff-is-off: store and signal journal bit-identical without the health plane");

    // The state-hash chain (health digest included) is worker-count
    // invariant: CI diffs this line across worker counts.
    let h = mon.last_state_hash().expect("hashing on");
    println!(
        "state hash @ tick {}: combined {:#018x} (pipeline {:#018x})",
        h.tick, h.combined, h.pipeline
    );
    println!("OK");
}
