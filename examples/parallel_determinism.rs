//! Determinism probe for the parallel tick pipeline, built for diffing.
//!
//! Runs a fixed fault-injection scenario and prints a canonical JSON
//! document — per-tick `TickReport`s, the final signal stream, and a
//! digest of every stored series.  Self-telemetry is off so no
//! wall-clock-valued series enter the store; the output is therefore a
//! pure function of the scenario, independent of the worker count.
//!
//! CI runs this at two worker counts and byte-diffs the output:
//!
//! ```sh
//! cargo run --release --example parallel_determinism -- 0 > serial.json
//! cargo run --release --example parallel_determinism -- 4 > par4.json
//! diff serial.json par4.json
//! ```

use hpcmon::pipeline::DetectorAttachment;
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_analysis::ZScoreDetector;
use hpcmon_collect::StdMetrics;
use hpcmon_metrics::{CompId, MetricRegistry, SeriesKey, Severity, Ts, MINUTE_MS};
use hpcmon_response::SignalKind;
use hpcmon_sim::{AppProfile, FaultKind, JobSpec};
use serde::Serialize;

/// The diff surface.  The worker count itself is deliberately NOT in the
/// document — the whole point is that output at any worker count diffs
/// clean.
#[derive(Serialize)]
struct Doc {
    reports: Vec<hpcmon::system::TickReport>,
    signals: Vec<hpcmon_response::Signal>,
    store: Vec<(String, Vec<(u64, u64)>)>,
}

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("usage: parallel_determinism <workers>"))
        .unwrap_or(0);

    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .self_telemetry(false)
        .workers(workers)
        .attach_detector(DetectorAttachment::new(
            SeriesKey::new(
                StdMetrics::register(&MetricRegistry::new()).probe_ost_latency,
                CompId::ost(3),
            ),
            Box::new(ZScoreDetector::new(32, 6.0).with_sigma_floor(0.05)),
            SignalKind::MetricAnomaly,
            Severity::Error,
            "OST latency anomaly",
        ))
        .build();
    mon.submit_job(JobSpec::new(
        AppProfile::checkpointing("climate"),
        "bob",
        32,
        40 * MINUTE_MS,
        Ts::ZERO,
    ));
    mon.submit_job(JobSpec::new(
        AppProfile::compute_heavy("stencil"),
        "alice",
        16,
        20 * MINUTE_MS,
        Ts::from_mins(3),
    ));
    mon.schedule_fault(Ts::from_mins(5), FaultKind::NodeHang { node: 3 });
    mon.schedule_fault(Ts::from_mins(16), FaultKind::OstDegrade { ost: 3, factor: 12.0 });

    let reports: Vec<_> = (0..25).map(|_| mon.tick()).collect();

    // Store digest: every series, every point, values as exact bit
    // patterns so the diff catches even sub-ULP drift.
    let store_dump: Vec<(String, Vec<(u64, u64)>)> = mon
        .store()
        .all_series()
        .into_iter()
        .map(|k| {
            let pts = mon
                .store()
                .query(k, Ts::ZERO, Ts(u64::MAX))
                .into_iter()
                .map(|(t, v)| (t.0, v.to_bits()))
                .collect();
            (format!("{k:?}"), pts)
        })
        .collect();

    let doc = Doc { reports, signals: mon.signals().to_vec(), store: store_dump };
    println!("{}", serde_json::to_string_pretty(&doc).unwrap());
}
