//! Flight-recorder incident workflow: record a chaos soak, replay it
//! bit-identically, seek into the incident window with full tracing, and
//! diagnose a tampered log.
//!
//! The scenario follows the paper's operational reality — the interesting
//! tick happened under a particular interleave of injected faults, job
//! arrivals, and operator queries, hours before anyone looked.  The
//! flight recorder turns that run into an artifact:
//!
//! 1. **Record**: a 500-tick chaos soak (collector panics/hangs, broker
//!    stalls, envelope corruption, store write failures, a gateway
//!    serving recorded operator queries) is captured into an `HPCMRLY1`
//!    event log — every external input plus a per-tick state hash, with
//!    a snapshot checkpoint every 100 ticks.
//! 2. **Replay**: the log, round-tripped through its on-disk byte
//!    format, re-executes bit-identically — all 500 hashes match, and
//!    they keep matching when the replay uses a 4-worker pool instead of
//!    the serial pipeline it was recorded with.
//! 3. **Seek**: restoring the tick-400 checkpoint and re-stepping
//!    400→500 with trace sampling forced to 1-in-1 reproduces the same
//!    hash chain — forensics-grade tracing for the incident window
//!    without perturbing what it observes.
//! 4. **Diagnose**: a log with one flipped bit in a recorded store
//!    sub-hash yields a divergence report naming the first divergent
//!    tick, the store subsystem, and the checkpoint to restart from.
//!
//! ```sh
//! cargo run --release --example replay_incident
//! ```

use hpcmon::SimConfig;
use hpcmon_chaos::{ChaosFault, ChaosPlan};
use hpcmon_gateway::{GatewayConfig, QueryRequest};
use hpcmon_metrics::{MetricId, Ts, MINUTE_MS};
use hpcmon_replay::{EventLog, FlightRecorder, Replayer, RunSpec};
use hpcmon_response::Consumer;
use hpcmon_sim::{AppProfile, FaultKind, JobSpec};
use hpcmon_store::{AggFn, TimeRange};

const TICKS: u64 = 500;
const SNAPSHOT_EVERY: u64 = 100;
const SEEK_TARGET: u64 = 400;

/// Injected collector panics unwind through the supervisor's catch; keep
/// the default hook quiet for those while leaving real panics loud.
fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos: injected collector panic"));
        if !injected {
            default(info);
        }
    }));
}

/// A block of every monitoring-plane fault kind every 60 ticks, rotating
/// the targeted collector and store shard.
fn incident_plan() -> ChaosPlan {
    let collectors = ["node", "hsn", "fs", "env", "sched", "gpu"];
    let mut plan = ChaosPlan::new();
    for block in 0..(TICKS / 60) {
        let base = 15 + block * 60;
        let c = collectors[(block as usize) % collectors.len()];
        let c2 = collectors[(block as usize + 3) % collectors.len()];
        plan.schedule(base, ChaosFault::CollectorPanic { collector: c.into() });
        plan.schedule(base + 6, ChaosFault::CollectorHang { collector: c2.into(), ticks: 3 });
        plan.schedule(
            base + 12,
            ChaosFault::BrokerTopicStall { topic: "metrics/frame".into(), ticks: 2 },
        );
        plan.schedule(base + 18, ChaosFault::EnvelopeCorrupt { rate: 0.4, ticks: 4 });
        plan.schedule(
            base + 24,
            ChaosFault::StoreWriteFail { shard: (block % 4) as usize, ticks: 3 },
        );
    }
    plan
}

/// Record the soak: jobs, machine faults, and operator queries all flow
/// through the recorder so they land in the event log.
fn record() -> EventLog {
    let spec = RunSpec::new(SimConfig::small())
        .chaos(2018, incident_plan())
        .supervision(true)
        .gateway(GatewayConfig { default_deadline_ms: 10_000, ..GatewayConfig::default() })
        .snapshot_every(SNAPSHOT_EVERY);
    let mut rec = FlightRecorder::new(spec);

    rec.submit_job(JobSpec::new(
        AppProfile::checkpointing("climate"),
        "bob",
        32,
        400 * MINUTE_MS,
        Ts::ZERO,
    ));
    rec.submit_job(JobSpec::new(
        AppProfile::compute_heavy("stencil"),
        "alice",
        8,
        120 * MINUTE_MS,
        Ts(30 * MINUTE_MS),
    ));
    rec.schedule_fault(Ts(90 * MINUTE_MS), FaultKind::NodeCrash { node: 3 });

    let ops = Consumer::admin("ops");
    for t in 0..TICKS {
        // An operator polls a fleet aggregate every 50 ticks — arrivals
        // are recorded; the responses are served live.
        if t % 50 == 25 {
            let resp = rec.query(
                &ops,
                QueryRequest::AggregateAcross {
                    metric: MetricId(0),
                    range: TimeRange { from: Ts::ZERO, to: Ts(u64::MAX) },
                    agg: AggFn::Mean,
                },
            );
            assert!(resp.expect("gateway is on").is_ok(), "recorded query must succeed");
        }
        rec.tick();
    }
    rec.finish()
}

fn main() {
    quiet_injected_panics();
    println!("=== flight recorder: incident record/replay workflow ===");

    // ---- 1. Record ----------------------------------------------------
    let t0 = std::time::Instant::now();
    let log = record();
    let record_s = t0.elapsed().as_secs_f64();
    let path = std::env::temp_dir().join("replay_incident.hpcmrly");
    log.write_to(&path).expect("event log writes");
    let bytes = std::fs::metadata(&path).expect("written").len();
    println!(
        "recorded {} ticks in {record_s:.1}s, {} snapshots -> {} ({:.1} KiB)",
        log.len(),
        log.snapshots.len(),
        path.display(),
        bytes as f64 / 1024.0,
    );

    // Everything below replays the artifact as read back from disk — the
    // wire format, not the in-memory log, is what an incident hands you.
    let log = EventLog::read_from(&path).expect("event log reads back");

    // ---- 2. Replay, bit-identical -------------------------------------
    let t0 = std::time::Instant::now();
    let outcome = Replayer::new(&log).run_to_end();
    assert!(outcome.is_clean(), "serial replay diverged: {:?}", outcome.divergence);
    assert_eq!(outcome.ticks_verified, TICKS);
    println!(
        "replay (serial):     {} / {TICKS} tick hashes verified in {:.1}s",
        outcome.ticks_verified,
        t0.elapsed().as_secs_f64(),
    );

    let t0 = std::time::Instant::now();
    let outcome = Replayer::with_workers(&log, 4).run_to_end();
    assert!(outcome.is_clean(), "4-worker replay diverged: {:?}", outcome.divergence);
    assert_eq!(outcome.ticks_verified, TICKS);
    println!(
        "replay (4 workers):  {} / {TICKS} tick hashes verified in {:.1}s",
        outcome.ticks_verified,
        t0.elapsed().as_secs_f64(),
    );

    // ---- 3. Seek into the incident window, full tracing ---------------
    let mut rep = Replayer::new(&log);
    rep.force_full_tracing();
    let outcome = rep.seek(SEEK_TARGET);
    assert!(outcome.is_clean(), "seek diverged: {:?}", outcome.divergence);
    assert_eq!(rep.position(), SEEK_TARGET);
    // The 100-tick cadence means seek(400) restores checkpoint 400
    // directly — zero ticks re-executed to get there.
    assert_eq!(outcome.ticks_verified, 0, "seek(400) should land on the tick-400 checkpoint");
    while let Some(step) = rep.step() {
        assert!(step.is_ok(), "divergence under forced tracing: {:?}", step.err());
    }
    assert_eq!(rep.position(), TICKS);
    let traces = rep.system().traces().completed_total();
    println!(
        "seek({SEEK_TARGET}) + 1-in-1 tracing: ticks {SEEK_TARGET}..{TICKS} match the \
         recording; {traces} traces captured in the window",
    );
    assert!(traces >= TICKS - SEEK_TARGET, "forced sampling must trace every tick");

    // ---- 4. Diagnose a tampered log -----------------------------------
    let mut tampered = EventLog::read_from(&path).expect("reads back");
    let idx = 454usize; // tick 455: mid-block, between checkpoints 400 and 500
    tampered.ticks[idx].hash.store ^= 1 << 17;
    tampered.ticks[idx].hash.combined ^= 1 << 17;
    let outcome = Replayer::new(&tampered).run_to_end();
    assert_eq!(outcome.ticks_verified, idx as u64);
    let report = outcome.divergence.expect("tampered log must diverge");
    assert_eq!(report.first_divergent_tick, idx as u64 + 1);
    assert_eq!(report.subsystem, "store");
    assert_eq!(report.nearest_snapshot, Some(SEEK_TARGET));
    println!("\ntampered log (store sub-hash bit-flip at tick {}):", idx + 1);
    print!("{}", report.render());

    let _ = std::fs::remove_file(&path);
    println!("\nOK: record -> replay -> seek -> diagnose all verified");
}
