//! CSC-style queue monitoring (paper §II-4).
//!
//! CSC watches queue depth "to provide users a realistic view into the
//! expected wait time for the currently submitted workload" and plans to
//! correlate queue behaviour with system issues "such as shared file
//! system problems".  This example does both: live wait estimates while a
//! backlog builds, and a queue-depth threshold alarm that fires when an
//! injected filesystem degradation silently blocks throughput.
//!
//! ```sh
//! cargo run --release --example site_csc_queue
//! ```

use hpcmon::pipeline::DetectorAttachment;
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_analysis::ThresholdDetector;
use hpcmon_metrics::{CompId, SeriesKey, Severity, Ts, MINUTE_MS};
use hpcmon_response::SignalKind;
use hpcmon_sim::{AppProfile, FaultKind, JobSpec};
use hpcmon_store::TimeRange;
use hpcmon_viz::LineChart;

fn main() {
    let builder = MonitoringSystem::builder(SimConfig::small());
    let queue_metric = builder.metrics().queue_depth;
    let mut mon = builder
        .attach_detector(DetectorAttachment::new(
            SeriesKey::new(queue_metric, CompId::SYSTEM),
            Box::new(ThresholdDetector::above(4.0)),
            SignalKind::MetricAnomaly,
            Severity::Warning,
            "queue backlog",
        ))
        .build();

    // I/O-bound jobs that fit comfortably when the filesystem is healthy.
    for k in 0..60u64 {
        mon.submit_job(JobSpec::new(
            AppProfile::io_storm(&format!("io{k}")),
            "user",
            16,
            5 * MINUTE_MS,
            Ts::from_mins(k * 8),
        ));
    }

    // Healthy hour, printing the user-facing estimate periodically.
    println!("healthy era:");
    for _ in 0..6 {
        mon.run_ticks(10);
        report(&mon);
    }

    // The filesystem silently degrades: jobs stretch, the queue backs up.
    println!("\n>>> filesystem degrades 10x at {} (no log line) <<<\n", mon.engine().now());
    for ost in 0..16 {
        mon.schedule_fault(
            mon.engine().now().add_ms(60_000),
            FaultKind::OstDegrade { ost, factor: 10.0 },
        );
    }
    println!("degraded era:");
    for _ in 0..12 {
        mon.run_ticks(10);
        report(&mon);
    }

    let depth = mon.query().series(SeriesKey::new(queue_metric, CompId::SYSTEM), TimeRange::all());
    println!(
        "\n{}",
        LineChart::new("Batch queue depth over time", 70, 8)
            .with_unit("jobs")
            .add_series("queued", depth)
            .render()
    );
    let alarms = mon.signals().iter().filter(|s| s.detail.contains("queue backlog")).count();
    println!("queue-backlog alarms raised: {alarms}");
    println!(
        "(the alarm plus the filesystem probe series is what lets CSC 'identify and \
         diagnose system issues such as shared file system problems')"
    );
}

fn report(mon: &MonitoringSystem) {
    let now = mon.engine().now();
    let depth = mon.engine().scheduler().queue_depth_at(now);
    let wait = mon
        .estimate_wait_ms(16)
        .map(|ms| format!("{:.0} min", ms as f64 / 60_000.0))
        .unwrap_or_else(|| "never".into());
    println!(
        "  {}  queued={:<3} running={:<2}  est. wait for 16 nodes: {}",
        now,
        depth,
        mon.engine().scheduler().running().len(),
        wait
    );
}
