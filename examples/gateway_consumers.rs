//! Gateway consumers: two principals — an admin dashboard and a user
//! portal — issue concurrent queries against the same gateway, and a
//! standing subscription streams system power over the broker each tick.
//!
//! The point to notice in the output: the admin sees every component,
//! the user's identical requests come back scoped to their own job
//! allocations, and the gateway's own activity shows up in the store as
//! `hpcmon.self.gateway.*` series like any other monitored component.
//!
//! ```sh
//! cargo run --release --example gateway_consumers
//! ```

use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_gateway::{GatewayConfig, QueryRequest, QueryResponse, SubscriptionUpdate};
use hpcmon_metrics::{CompId, SeriesKey, Ts, MINUTE_MS};
use hpcmon_response::Consumer;
use hpcmon_sim::{AppProfile, JobSpec};
use hpcmon_store::TimeRange;
use hpcmon_transport::{BackpressurePolicy, Payload, TopicFilter};

fn main() {
    // A small machine with the query gateway attached: modest cache,
    // enough rate budget that neither principal below gets shed.
    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .gateway(GatewayConfig {
            cache_capacity: 128,
            default_deadline_ms: 10_000,
            ..GatewayConfig::default()
        })
        .build();

    // Two tenants: alice runs a 16-node job, bob an 8-node one.
    let alice_job_id = mon.submit_job(JobSpec::new(
        AppProfile::compute_heavy("stencil3d"),
        "alice",
        16,
        45 * MINUTE_MS,
        Ts::ZERO,
    ));
    let bob_job_id = mon.submit_job(JobSpec::new(
        AppProfile::comm_heavy("spectral_fft"),
        "bob",
        8,
        45 * MINUTE_MS,
        Ts::from_mins(2),
    ));
    mon.run_ticks(20);

    let gw = mon.gateway().expect("gateway configured").clone();
    let metrics = mon.metrics();

    // A broker consumer for the subscription feed, registered before the
    // subscription so the first delivery is not missed.
    let feed = mon.broker().subscribe(
        TopicFilter::new("gateway/updates/#"),
        64,
        BackpressurePolicy::DropOldest,
    );

    // The admin's standing subscription: system power, delivered
    // incrementally on every tick.
    let ops = Consumer::admin("ops-dashboard");
    let sub_id = gw
        .subscribe(
            &ops,
            QueryRequest::Series {
                key: SeriesKey::new(metrics.system_power, CompId::SYSTEM),
                range: TimeRange::all(),
            },
            "gateway/updates/system-power",
        )
        .expect("subscribe");

    // Both principals hammer the gateway concurrently with the same
    // question: "who is drawing the most power right now?"
    let at = Ts::from_mins(18);
    let request = QueryRequest::TopComponentsAt {
        metric: metrics.node_power,
        at,
        tolerance_ms: MINUTE_MS,
        limit: 6,
    };
    let admin_view = {
        let gw = gw.clone();
        let req = request.clone();
        std::thread::spawn(move || gw.query(&Consumer::admin("ops-dashboard"), req))
    };
    let user_view = {
        let gw = gw.clone();
        let req = request.clone();
        std::thread::spawn(move || gw.query(&Consumer::user("portal-bob", "bob"), req))
    };
    let admin_view = admin_view.join().unwrap().expect("admin query");
    let user_view = user_view.join().unwrap().expect("user query");

    println!("=== top power draw at {at} (same request, two principals) ===");
    print_ranked("admin ops-dashboard", &admin_view);
    print_ranked("user  portal-bob   ", &user_view);

    // The user's per-job view: allowed for their own job, denied for bob's.
    let alice_job = QueryRequest::JobSeries { job_id: alice_job_id.0, metric: metrics.node_cpu };
    match gw.query(&Consumer::user("portal-alice", "alice"), alice_job) {
        Ok(QueryResponse::Job(js)) => println!(
            "\nalice's job view: {} nodes, mean cpu {:.1}%",
            js.per_node.len(),
            js.mean.last().map(|&(_, v)| v).unwrap_or(0.0)
        ),
        other => println!("\nalice's job view: unexpected {other:?}"),
    }
    let bobs_job = QueryRequest::JobSeries { job_id: bob_job_id.0, metric: metrics.node_cpu };
    match gw.query(&Consumer::user("portal-alice", "alice"), bobs_job) {
        Err(e) => println!("alice asking for bob's job: {e}"),
        Ok(_) => println!("alice asking for bob's job: unexpectedly allowed"),
    }

    // Dashboards refresh: the same ranked request three more times is
    // three epoch-keyed cache hits, no re-evaluation.
    for _ in 0..3 {
        gw.query(&ops, request.clone()).expect("cached refresh");
    }

    // Let the subscription deliver a few ticks' worth of updates.
    mon.run_ticks(5);
    println!("\n=== standing subscription: gateway/updates/system-power ===");
    for env in feed.drain() {
        if let Payload::Raw(bytes) = &env.payload {
            let update: SubscriptionUpdate = serde_json::from_slice(bytes).expect("decode");
            if let QueryResponse::Points(pts) = &update.result {
                println!(
                    "  tick {}: {} new point(s), latest {:.0} W",
                    update.tick,
                    pts.len(),
                    pts.last().map(|&(_, v)| v).unwrap_or(0.0)
                );
            }
        }
    }
    gw.unsubscribe(sub_id);

    // The gateway watches itself: its counters and gauges are collected
    // into the store as hpcmon.self.gateway.* series each tick.
    println!("\n=== hpcmon.self.gateway.* (from the store) ===");
    let engine = mon.query();
    for name in [
        "hpcmon.self.gateway.queries",
        "hpcmon.self.gateway.cache.hits",
        "hpcmon.self.gateway.cache.misses",
        "hpcmon.self.gateway.cache.hit_ratio",
        "hpcmon.self.gateway.shed.rate_limited",
        "hpcmon.self.gateway.denied.access",
        "hpcmon.self.gateway.eval.p95_ms",
        "hpcmon.self.gateway.subscriptions.delivered",
    ] {
        let Some(id) = mon.registry().lookup(name) else { continue };
        let pts = engine.series(SeriesKey::new(id, CompId::SYSTEM), TimeRange::all());
        let total: f64 = pts.iter().map(|&(_, v)| v).sum();
        let last = pts.last().map(|&(_, v)| v).unwrap_or(0.0);
        println!("  {name:<44} sum={total:>8.2}  last={last:>8.2}");
    }
    let stats = gw.cache_stats();
    println!(
        "\ncache: {} hits / {} misses / {} invalidated by store epoch changes",
        stats.hits, stats.misses, stats.invalidated
    );
}

fn print_ranked(who: &str, resp: &QueryResponse) {
    if let QueryResponse::Ranked(rows) = resp {
        let rendered: Vec<String> =
            rows.iter().map(|(comp, w)| format!("{comp}={w:.0}W")).collect();
        println!("  {who}: {}", rendered.join("  "));
    }
}
