//! Offline stand-in for `crossbeam` (the `channel` module only).
//!
//! `std::sync::mpsc` receivers are neither cloneable nor countable, and the
//! broker needs both (drop-oldest keeps a second receiver handle, `queued()`
//! reports queue depth), so this is a small MPMC bounded channel built from a
//! `Mutex<VecDeque>` plus condvars.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cap: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a bounded MPMC channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of a bounded MPMC channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error from a blocking send: all receivers dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from a non-blocking send.
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Queue at capacity; the message comes back.
        Full(T),
        /// All receivers dropped; the message comes back.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    /// Error from a blocking receive: channel empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from a non-blocking receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty.
        Empty,
        /// Queue empty and all senders dropped.
        Disconnected,
    }

    /// Create a bounded MPMC channel.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cap: cap.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    impl<T> Sender<T> {
        /// Blocking send; waits for queue space.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < self.inner.cap {
                    st.queue.push_back(value);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                st = self.inner.not_full.wait(st).unwrap();
            }
        }

        /// Non-blocking send.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.inner.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.queue.len() >= self.inner.cap {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; waits for a message or full disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.not_empty.wait(st).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => {
                    self.inner.not_full.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }
}
