//! `Serializer`/`Deserializer` adapters over the in-memory [`Value`] model.
//!
//! These are what `#[serde(with = "...")]` modules drive: the generated code
//! calls `module::serialize(&field, ValueSerializer)` and
//! `module::deserialize(ValueDeserializer::new(value))`.

use crate::{Deserializer, Error, Serializer, Value};

/// Serializer that yields the built [`Value`] directly.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;

    fn accept_value(self, value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

/// Deserializer that reads from an existing [`Value`].
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    /// Wrap a value for deserialization.
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn take_value(self) -> Result<Value, Error> {
        Ok(self.value)
    }
}
