//! Offline stand-in for the `serde` crate.
//!
//! The real serde models serialization through a visitor-based data model;
//! this workspace only ever round-trips its own types through JSON
//! (`serde_json`), so this shim collapses the data model to one concrete
//! [`Value`] tree.  The public names (`Serialize`, `Deserialize`,
//! `Serializer`, `Deserializer`, `ser::Error`, `de::Error`, the derive
//! macros) line up with real serde so the workspace source compiles
//! unchanged; swapping the real crate back in later is a Cargo.toml edit.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// The single in-memory data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `None`, unit).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative (or any signed) integer.
    Int(i64),
    /// Non-negative integer (kept separate so `u64::MAX` survives).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence / array.
    Seq(Vec<Value>),
    /// Map with string keys (struct fields, maps, enum tagging).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k.as_str() == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// The one error type shared by serialization and deserialization.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Construct from a message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization-side error trait (`serde::ser::Error` in real serde).
pub mod ser {
    /// Error constructor used by generic serialization code.
    pub trait Error: Sized + std::error::Error {
        /// Build an error from any displayable message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for crate::Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            crate::Error::msg(msg.to_string())
        }
    }
}

/// Deserialization-side error trait (`serde::de::Error` in real serde).
pub mod de {
    /// Error constructor used by generic deserialization code.
    pub trait Error: Sized + std::error::Error {
        /// Build an error from any displayable message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for crate::Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            crate::Error::msg(msg.to_string())
        }
    }
}

/// A type that can serialize itself into the [`Value`] data model.
pub trait Serialize {
    /// Convert to the data model.
    fn to_value(&self) -> Result<Value, Error>;

    /// Drive a serializer (generic entry point, matching real serde's
    /// `Serialize::serialize` signature shape).
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self.to_value() {
            Ok(v) => serializer.accept_value(v),
            Err(e) => Err(<S::Error as ser::Error>::custom(e)),
        }
    }
}

/// A sink for [`Value`]s.
pub trait Serializer: Sized {
    /// Successful output.
    type Ok;
    /// Error type.
    type Error: ser::Error;
    /// Consume a fully-built value.
    fn accept_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A source of [`Value`]s.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;
    /// Produce the value to deserialize from.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type that can rebuild itself from the [`Value`] data model.
pub trait Deserialize<'de>: Sized {
    /// Convert from the data model.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Drive a deserializer (generic entry point).
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.take_value()?;
        Self::from_value(&v).map_err(<D::Error as de::Error>::custom)
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

fn type_err<T>(want: &str, got: &Value) -> Result<T, Error> {
    Err(Error::msg(format!("expected {want}, got {got:?}")))
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Result<Value, Error> {
                Ok(Value::UInt(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    Value::Float(f)
                        if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 =>
                    {
                        *f as u64
                    }
                    other => return type_err("unsigned integer", other),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Result<Value, Error> {
                let n = *self as i64;
                Ok(if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) })
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) if *n <= i64::MAX as u64 => *n as i64,
                    Value::Float(f)
                        if f.fract() == 0.0
                            && *f >= i64::MIN as f64
                            && *f <= i64::MAX as f64 =>
                    {
                        *f as i64
                    }
                    other => return type_err("integer", other),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::Float(*self))
    }
}
impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            other => type_err("number", other),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::Float(*self as f64))
    }
}
impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::Bool(*self))
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::Str(self.to_string()))
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-char string", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::Str(self.clone()))
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::Str(self.to_owned()))
    }
}

// `Value` serializes as itself, so opaque already-modelled state (e.g.
// detector checkpoints captured via `snapshot_state()`) can be embedded in
// larger serializable structs without re-encoding.
impl Serialize for Value {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(self.clone())
    }
}
impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
}
impl<'de> Deserialize<'de> for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => type_err("null", other),
        }
    }
}

// ---------------------------------------------------------------------------
// Reference / smart-pointer impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Result<Value, Error> {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Result<Value, Error> {
        (**self).to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Result<Value, Error> {
        (**self).to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Result<Value, Error> {
        (**self).to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Rc::new)
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Result<Value, Error> {
        match self {
            Some(v) => v.to_value(),
            None => Ok(Value::Null),
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::Seq(self.iter().map(|x| x.to_value()).collect::<Result<_, _>>()?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Result<Value, Error> {
        self.as_slice().to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => type_err("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::Seq(self.iter().map(|x| x.to_value()).collect::<Result<_, _>>()?))
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Result<Value, Error> {
        self.as_slice().to_value()
    }
}
impl<'de, T: Deserialize<'de> + Copy + Default, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        if items.len() != N {
            return Err(Error::msg(format!("expected array of {N}, got {}", items.len())));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Result<Value, Error> {
                Ok(Value::Seq(vec![$(self.$idx.to_value()?),+]))
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::msg(format!(
                                "expected tuple of {expected}, got {}", items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => type_err("tuple sequence", other),
                }
            }
        }
    )+};
}
impl_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Result<Value, Error> {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| Ok((k.clone(), v.to_value()?)))
            .collect::<Result<_, Error>>()?;
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Value::Map(entries))
    }
}
impl<'de, V: Deserialize<'de>> Deserialize<'de> for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => type_err("map", other),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::Map(
            self.iter()
                .map(|(k, v)| Ok((k.clone(), v.to_value()?)))
                .collect::<Result<_, Error>>()?,
        ))
    }
}
impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => type_err("map", other),
        }
    }
}

impl<T: Serialize + Ord> Serialize for HashSet<T> {
    fn to_value(&self) -> Result<Value, Error> {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Ok(Value::Seq(items.into_iter().map(|s| s.to_value()).collect::<Result<_, _>>()?))
    }
}
impl<'de, T: Deserialize<'de> + Eq + std::hash::Hash> Deserialize<'de> for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(|v| v.into_iter().collect())
    }
}
