//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input token stream by hand (no `syn`/`quote` available
//! offline) and emits `Serialize`/`Deserialize` impls targeting the shim
//! serde crate's `Value` data model.  Supports the shapes this workspace
//! actually uses: named-field structs, newtype/tuple structs, and enums with
//! unit, newtype/tuple, and struct variants, plus `#[serde(with = "...")]`
//! on fields and newtype variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct FieldDef {
    name: String,
    with_module: Option<String>,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<FieldDef>),
}

#[derive(Debug)]
struct VariantDef {
    name: String,
    shape: Shape,
    with_module: Option<String>,
}

#[derive(Debug)]
enum TypeDef {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<VariantDef> },
}

/// Scan an attribute's bracket group for `serde(with = "module::path")`.
fn with_from_attr(group: &proc_macro::Group) -> Option<String> {
    let mut toks = group.stream().into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match toks.next() {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return None,
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        if let TokenTree::Ident(id) = &inner[i] {
            if id.to_string() == "with" {
                // Expect `= "path"`.
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (inner.get(i + 1), inner.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        let s = lit.to_string();
                        return Some(s.trim_matches('"').to_string());
                    }
                }
            }
        }
        i += 1;
    }
    None
}

/// Split a token slice on top-level commas, tracking `<`/`>` depth so
/// generic arguments (`HashMap<String, V>`) don't split.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Consume leading attributes (returning any `serde(with)` target) and a
/// visibility qualifier from a token slice; return the index past them.
fn skip_meta(tokens: &[TokenTree]) -> (usize, Option<String>) {
    let mut i = 0;
    let mut with_module = None;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if with_module.is_none() {
                        with_module = with_from_attr(g);
                    }
                    i += 2;
                    continue;
                }
                break;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    (i, with_module)
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<FieldDef> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_commas(&tokens)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let (start, with_module) = skip_meta(&chunk);
            let name = match &chunk[start] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected field name, got {other}"),
            };
            FieldDef { name, with_module }
        })
        .collect()
}

fn parse_shape_after_name(tokens: &[TokenTree], i: usize) -> Shape {
    match tokens.get(i) {
        None => Shape::Unit,
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::Tuple(split_commas(&inner).into_iter().filter(|c| !c.is_empty()).count())
        }
        Some(other) => panic!("unexpected token after type name: {other}"),
    }
}

fn parse_input(input: TokenStream) -> TypeDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_meta(&tokens);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("generic types are not supported by the offline serde_derive shim");
        }
    }
    match kind.as_str() {
        "struct" => TypeDef::Struct { name, shape: parse_shape_after_name(&tokens, i) },
        "enum" => {
            let body = match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("expected enum body, got {other}"),
            };
            let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            let variants = split_commas(&body_tokens)
                .into_iter()
                .filter(|chunk| !chunk.is_empty())
                .map(|chunk| {
                    let (start, with_module) = skip_meta(&chunk);
                    let vname = match &chunk[start] {
                        TokenTree::Ident(id) => id.to_string(),
                        other => panic!("expected variant name, got {other}"),
                    };
                    let shape = parse_shape_after_name(&chunk, start + 1);
                    VariantDef { name: vname, shape, with_module }
                })
                .collect();
            TypeDef::Enum { name, variants }
        }
        other => panic!("cannot derive for {other}"),
    }
}

// ---------------------------------------------------------------------------
// Codegen helpers
// ---------------------------------------------------------------------------

fn ser_field_expr(access: &str, with_module: &Option<String>) -> String {
    match with_module {
        Some(m) => format!("{m}::serialize({access}, serde::value::ValueSerializer)?"),
        None => format!("serde::Serialize::to_value({access})?"),
    }
}

fn de_field_expr(value_expr: &str, with_module: &Option<String>) -> String {
    match with_module {
        Some(m) => format!(
            "{m}::deserialize(serde::value::ValueDeserializer::new(({value_expr}).clone()))?"
        ),
        None => format!("serde::Deserialize::from_value({value_expr})?"),
    }
}

fn named_fields_to_map(fields: &[FieldDef], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            let access = format!("&{access_prefix}{}", f.name);
            format!("(String::from(\"{}\"), {})", f.name, ser_field_expr(&access, &f.with_module))
        })
        .collect();
    format!("serde::Value::Map(vec![{}])", entries.join(", "))
}

fn named_fields_from_map(fields: &[FieldDef], map_expr: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let value_expr =
                format!("{map_expr}.get(\"{}\").unwrap_or(&serde::Value::Null)", f.name);
            format!("{}: {}", f.name, de_field_expr(&value_expr, &f.with_module))
        })
        .collect::<Vec<_>>()
        .join(", ")
}

// ---------------------------------------------------------------------------
// Derive entry points
// ---------------------------------------------------------------------------

/// Derive `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_input(input);
    let body = match &def {
        TypeDef::Struct { name, shape } => {
            let expr = match shape {
                Shape::Unit => "Ok(serde::Value::Null)".to_string(),
                Shape::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i})?"))
                        .collect();
                    format!("Ok(serde::Value::Seq(vec![{}]))", items.join(", "))
                }
                Shape::Named(fields) => {
                    format!("Ok({})", named_fields_to_map(fields, "self."))
                }
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> Result<serde::Value, serde::Error> {{\n\
                         {expr}\n\
                     }}\n\
                 }}"
            )
        }
        TypeDef::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => Ok(serde::Value::Str(String::from(\"{vname}\"))),"
                        ),
                        Shape::Tuple(1) => {
                            let inner = ser_field_expr("__f0", &v.with_module);
                            format!(
                                "{name}::{vname}(__f0) => \
                                 Ok(serde::Value::Map(vec![(String::from(\"{vname}\"), {inner})])),"
                            )
                        }
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})?"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => Ok(serde::Value::Map(vec![(\
                                 String::from(\"{vname}\"), \
                                 serde::Value::Seq(vec![{}]))])),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let map = named_fields_to_map(fields, "");
                            format!(
                                "{name}::{vname} {{ {} }} => Ok(serde::Value::Map(vec![(\
                                 String::from(\"{vname}\"), {map})])),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> Result<serde::Value, serde::Error> {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    body.parse().expect("serde_derive shim: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_input(input);
    let body = match &def {
        TypeDef::Struct { name, shape } => {
            let expr = match shape {
                Shape::Unit => format!(
                    "match __v {{ serde::Value::Null => Ok({name}), \
                     __other => Err(serde::Error::msg(format!(\
                     \"expected null for {name}, got {{:?}}\", __other))) }}"
                ),
                Shape::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
                }
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "match __v {{\n\
                             serde::Value::Seq(__items) if __items.len() == {n} => \
                                 Ok({name}({})),\n\
                             __other => Err(serde::Error::msg(format!(\
                                 \"expected {n}-element sequence for {name}, got {{:?}}\", \
                                 __other))),\n\
                         }}",
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let inits = named_fields_from_map(fields, "__v");
                    format!(
                        "match __v {{\n\
                             serde::Value::Map(_) => Ok({name} {{ {inits} }}),\n\
                             __other => Err(serde::Error::msg(format!(\
                                 \"expected map for {name}, got {{:?}}\", __other))),\n\
                         }}"
                    )
                }
            };
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         {expr}\n\
                     }}\n\
                 }}"
            )
        }
        TypeDef::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Tuple(1) => {
                            let inner = de_field_expr("__content", &v.with_module);
                            format!("\"{vname}\" => Ok({name}::{vname}({inner})),")
                        }
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            format!(
                                "\"{vname}\" => match __content {{\n\
                                     serde::Value::Seq(__items) if __items.len() == {n} => \
                                         Ok({name}::{vname}({})),\n\
                                     __other => Err(serde::Error::msg(format!(\
                                         \"bad content for variant {vname}: {{:?}}\", \
                                         __other))),\n\
                                 }},",
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let inits = named_fields_from_map(fields, "__content");
                            format!("\"{vname}\" => Ok({name}::{vname} {{ {inits} }}),")
                        }
                        Shape::Unit => unreachable!(),
                    }
                })
                .collect();
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match __v {{\n\
                             serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 __other => Err(serde::Error::msg(format!(\
                                     \"unknown unit variant {{}} for {name}\", __other))),\n\
                             }},\n\
                             serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __content) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {}\n\
                                     __other => Err(serde::Error::msg(format!(\
                                         \"unknown variant {{}} for {name}\", __other))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(serde::Error::msg(format!(\
                                 \"expected variant for {name}, got {{:?}}\", __other))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    };
    body.parse().expect("serde_derive shim: generated Deserialize impl failed to parse")
}
