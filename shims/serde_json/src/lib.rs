//! Offline stand-in for `serde_json`.
//!
//! Renders the shim serde crate's [`Value`] model to JSON text and parses it
//! back.  Only the free functions this workspace calls are provided:
//! [`to_string`], [`to_string_pretty`], [`to_vec`], [`from_str`],
//! [`from_slice`].

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value.to_value()?;
    let mut out = String::new();
    write_value(&v, &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to human-readable, indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value.to_value()?;
    let mut out = String::new();
    write_value(&v, &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from JSON text.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<'a, T: Deserialize<'a>>(bytes: &'a [u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(e.to_string()))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // `Display` prints `2` for 2.0; JSON readers (and serde_json)
                // keep the number a float by always including a fraction/exp.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_str(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected ',' or ']' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected ',' or '}}' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected character {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(Error::msg("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|e| Error::msg(e.to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| Error::msg(e.to_string()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy up to the next quote or escape.  Both
                    // delimiters are ASCII, so the chunk boundary is a
                    // char boundary; validating only the chunk keeps
                    // string parsing O(n) instead of O(n²) (re-checking
                    // the whole remaining input per char made multi-MB
                    // documents take minutes).
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| Error::msg(e.to_string()))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::msg(e.to_string()))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|e| Error::msg(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::Int).map_err(|e| Error::msg(e.to_string()))
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(|e| Error::msg(e.to_string()))
        }
    }
}
