//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's no-`Result` API (lock
//! poisoning becomes a panic, which is also what unwrapping a poisoned std
//! lock does).  Only the types this workspace uses are provided.

use std::sync::{self, LockResult, PoisonError};

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        recover(self.0.lock())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        recover(self.0.read())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        recover(self.0.write())
    }
}

fn recover<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}
