//! Offline stand-in for `criterion`.
//!
//! Same macro/type surface as the real crate for the subset the bench files
//! use (`criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `iter`, `iter_with_setup`,
//! `Throughput`, `BenchmarkId`, `black_box`), implemented as a plain
//! wall-clock timer: calibrate an iteration count, take samples, report the
//! median.  No statistics, plots, or baseline comparisons.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbench group: {name}");
        BenchmarkGroup { _criterion: self, sample_size: 10, throughput: None }
    }
}

/// Unit attached to a measurement for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Composite benchmark name (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timing samples (clamped small: this is a shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(2, 20);
        self
    }

    /// Attach a throughput unit to subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into_bench_id(), &mut f);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.into_bench_id(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (printing is already done per-benchmark).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { iters: 1, elapsed_ns: 0.0 };
        // Calibrate: grow the iteration count until one sample costs ~2ms.
        loop {
            f(&mut bencher);
            if bencher.elapsed_ns >= 2_000_000.0 || bencher.iters >= 1 << 20 {
                break;
            }
            bencher.iters *= 4;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut bencher);
            samples.push(bencher.elapsed_ns / bencher.iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.0} elem/s)", n as f64 * 1e9 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.0} bytes/s)", n as f64 * 1e9 / median)
            }
            None => String::new(),
        };
        println!("  {id}: {median:.1} ns/iter{rate}");
    }
}

/// Conversion into the printed benchmark name.
pub trait IntoBenchId {
    /// The printable id.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Time `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_secs_f64() * 1e9;
    }

    /// Time `routine` with a fresh un-timed `setup` product per iteration.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total_ns = 0.0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_secs_f64() * 1e9;
        }
        self.elapsed_ns = total_ns;
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
