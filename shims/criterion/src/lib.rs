//! Offline stand-in for `criterion`.
//!
//! Same macro/type surface as the real crate for the subset the bench files
//! use (`criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `iter`, `iter_with_setup`,
//! `Throughput`, `BenchmarkId`, `black_box`), implemented as a plain
//! wall-clock timer: calibrate an iteration count, take samples, report the
//! median.  No statistics, plots, or baseline comparisons.
//!
//! One extension beyond the real crate's surface: every benchmark
//! executable also writes a machine-readable `BENCH_<name>.json` at the
//! workspace root (median/p99 ns per iteration, derived throughput, and
//! each measurement's overhead relative to the first entry of its group —
//! the groups here are structured baseline-first), so CI and EXPERIMENTS.md
//! tables can be regenerated without scraping stdout.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::Instant;

pub use std::hint::black_box;

/// One finished measurement, destined for `BENCH_<name>.json`.
struct Measurement {
    group: String,
    id: String,
    median_ns: f64,
    p99_ns: f64,
    /// Units (elements or bytes) processed per second at the median,
    /// when the group declared a throughput.
    throughput_per_sec: Option<f64>,
    throughput_unit: Option<&'static str>,
}

/// Process-global result sink: groups run one after another inside one
/// bench executable, and `criterion_main!` flushes this at exit.
static RESULTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Unit attached to a measurement for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Composite benchmark name (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timing samples (clamped small: this is a shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(2, 20);
        self
    }

    /// Attach a throughput unit to subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into_bench_id(), &mut f);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.into_bench_id(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (printing is already done per-benchmark).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { iters: 1, elapsed_ns: 0.0 };
        // Calibrate: grow the iteration count until one sample costs ~2ms.
        loop {
            f(&mut bencher);
            if bencher.elapsed_ns >= 2_000_000.0 || bencher.iters >= 1 << 20 {
                break;
            }
            bencher.iters *= 4;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut bencher);
            samples.push(bencher.elapsed_ns / bencher.iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let p99 =
            samples[((samples.len() as f64 * 0.99).ceil() as usize - 1).min(samples.len() - 1)];
        let (rate, per_sec, unit) = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let v = n as f64 * 1e9 / median;
                (format!("  ({v:.0} elem/s)"), Some(v), Some("elements"))
            }
            Some(Throughput::Bytes(n)) => {
                let v = n as f64 * 1e9 / median;
                (format!("  ({v:.0} bytes/s)"), Some(v), Some("bytes"))
            }
            None => (String::new(), None, None),
        };
        println!("  {id}: {median:.1} ns/iter{rate}");
        if let Ok(mut results) = RESULTS.lock() {
            results.push(Measurement {
                group: self.name.clone(),
                id: id.to_string(),
                median_ns: median,
                p99_ns: p99,
                throughput_per_sec: per_sec,
                throughput_unit: unit,
            });
        }
    }
}

/// Write `BENCH_<name>.json` at the workspace root, where `<name>` is the
/// benchmark executable's stem (cargo's `-<hash>` suffix stripped).
/// Called by `criterion_main!` after every group has run; a standalone
/// `fn main` bench may call it directly.
pub fn write_machine_report() {
    let results = match RESULTS.lock() {
        Ok(r) => r,
        Err(poisoned) => poisoned.into_inner(),
    };
    if results.is_empty() {
        return;
    }
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    // Baseline for overhead: the first measurement of each group (the
    // bench files are structured baseline-first: "off" before "on",
    // serial before pooled).
    for (i, m) in results.iter().enumerate() {
        let baseline = results.iter().find(|b| b.group == m.group).map(|b| b.median_ns);
        let overhead = baseline.filter(|b| *b > 0.0).map(|b| m.median_ns / b - 1.0);
        json.push_str(&format!(
            "    {{\"group\": {:?}, \"id\": {:?}, \"median_ns\": {:.1}, \"p99_ns\": {:.1}, \
             \"throughput_per_sec\": {}, \"throughput_unit\": {}, \
             \"overhead_vs_group_baseline\": {}}}{}\n",
            m.group,
            m.id,
            m.median_ns,
            m.p99_ns,
            m.throughput_per_sec.map_or("null".to_string(), |v| format!("{v:.1}")),
            m.throughput_unit.map_or("null".to_string(), |u| format!("{u:?}")),
            overhead.map_or("null".to_string(), |v| format!("{v:.4}")),
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    let exe = std::env::current_exe().unwrap_or_default();
    let stem = exe
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "bench".to_string());
    // Strip cargo's `-<16 hex>` disambiguation hash, if present.
    let name = match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    };
    // The workspace root is the nearest ancestor of the executable (which
    // lives under `<root>/target/...`) that carries a Cargo.toml; fall
    // back to the current directory.
    let root = exe
        .ancestors()
        .skip(1)
        .find(|dir| dir.join("Cargo.toml").is_file())
        .map(|dir| dir.to_path_buf())
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = root.join(format!("BENCH_{name}.json"));
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nmachine-readable results: {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Conversion into the printed benchmark name.
pub trait IntoBenchId {
    /// The printable id.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Time `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_secs_f64() * 1e9;
    }

    /// Time `routine` with a fresh un-timed `setup` product per iteration.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total_ns = 0.0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_secs_f64() * 1e9;
        }
        self.elapsed_ns = total_ns;
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_machine_report();
        }
    };
}
