//! Offline stand-in for `proptest`.
//!
//! Runs each property over a fixed number of deterministically-generated
//! random inputs (SplitMix64 seeded from the test name), with no shrinking:
//! a failing case panics with the ordinary assert message.  Covers the
//! strategy surface this workspace uses — numeric ranges, tuples,
//! `collection::vec`, simple `[chars]{m,n}` string patterns, and
//! `any::<T>()`.

use std::ops::Range;

/// Deterministic SplitMix64 generator.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Produce one input.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Simple `[chars]{min,max}` string pattern strategy (proptest models string
/// regexes; only the charset-with-repetition form appears in this repo).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (charset, min, max) =
            parse_pattern(self).unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| charset[rng.below(charset.len() as u64) as usize]).collect()
    }
}

fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let mut charset = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            for c in lo..=hi {
                charset.push(c);
            }
            i += 3;
        } else {
            charset.push(chars[i]);
            i += 1;
        }
    }
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match reps.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    if charset.is_empty() || max < min {
        return None;
    }
    Some((charset, min, max))
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// Whole-domain strategy for `T` (`any::<u64>()`).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Construct the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vec strategy with a length range.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generate vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-run configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property this many times.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Seed helper: FNV-1a over the test name so each property gets a stable,
/// distinct stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Assert inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    // Entry with a config attribute.
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    // Internal: config captured, expand each test fn.
    (
        @cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pname:pat_param in $pstrategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __seed = $crate::seed_from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::TestRng::new(__seed ^ (__case as u64).wrapping_mul(0x9e37_79b9));
                    $(
                        let $pname =
                            $crate::Strategy::generate(&($pstrategy), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
    // Entry without a config attribute.
    ( $($rest:tt)* ) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Everything a test module needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}
