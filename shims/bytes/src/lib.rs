//! Offline stand-in for `bytes`.
//!
//! [`Bytes`] here is an immutable byte buffer that clones by reference count
//! (or for-free for `'static` data), covering the subset of the real crate's
//! API the workspace touches.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer.
#[derive(Clone)]
pub enum Bytes {
    /// Borrowed from static data (no allocation, free clone).
    Static(&'static [u8]),
    /// Shared heap allocation.
    Shared(Arc<Vec<u8>>),
}

impl Bytes {
    /// Empty buffer.
    pub const fn new() -> Bytes {
        Bytes::Static(&[])
    }

    /// Wrap static data without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::Static(bytes)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copy out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match self {
            Bytes::Static(s) => s,
            Bytes::Shared(v) => v.as_slice(),
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::Shared(Arc::new(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::Static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::Static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}
