//! The recording side: wrap a live system, funnel every external input
//! through the event log, hash every tick, checkpoint every K ticks.

use hpcmon::system::TickReport;
use hpcmon::{GatewayOp, MonitoringSystem, TickInputs};
use hpcmon_gateway::{QueryError, QueryRequest, QueryResponse};
use hpcmon_metrics::{JobId, Ts};
use hpcmon_response::Consumer;
use hpcmon_sim::{FaultKind, JobSpec};

use crate::log::{EventLog, SnapshotRecord, TickRecord};
use crate::RunSpec;

/// Records a run as it executes.
///
/// All external inputs must flow through the recorder's methods — they
/// are applied to the live system *immediately* (so callers still get
/// their `JobId`s and query responses) and buffered into the next tick's
/// [`TickInputs`] record.  Nothing advances between ticks, so
/// "applied at call time" and "applied just before the next tick" are
/// equivalent — which is exactly how the replayer re-applies them.
pub struct FlightRecorder {
    system: MonitoringSystem,
    spec: RunSpec,
    ticks: Vec<TickRecord>,
    snapshots: Vec<SnapshotRecord>,
    pending: TickInputs,
    tick: u64,
}

impl FlightRecorder {
    /// Build the system described by `spec` and start recording.
    ///
    /// Panics if `spec.self_telemetry` is on: self-observation samples
    /// carry wall-clock timer readings, which make the warm-tier store
    /// digest non-reproducible (DESIGN.md §11).
    pub fn new(spec: RunSpec) -> FlightRecorder {
        assert!(
            !spec.self_telemetry,
            "strict replay requires self_telemetry(false): self-observation \
             values carry wall-clock timings that break hash reproducibility"
        );
        let system = spec.build_system();
        FlightRecorder {
            system,
            spec,
            ticks: Vec::new(),
            snapshots: Vec::new(),
            pending: TickInputs::default(),
            tick: 0,
        }
    }

    /// Submit a job to the simulated machine (recorded).
    pub fn submit_job(&mut self, spec: JobSpec) -> JobId {
        self.pending.jobs.push(spec.clone());
        self.system.submit_job(spec)
    }

    /// Schedule a machine fault injection (recorded).
    pub fn schedule_fault(&mut self, at: Ts, kind: FaultKind) {
        self.pending.faults.push((at, kind));
        self.system.schedule_fault(at, kind);
    }

    /// Issue a gateway query (recorded).  Returns `None` when the run
    /// has no gateway.  The *response* is not recorded — responses are
    /// timing-dependent and never feed back into hashed state — only the
    /// arrival is.
    pub fn query(
        &mut self,
        consumer: &Consumer,
        request: QueryRequest,
    ) -> Option<Result<QueryResponse, QueryError>> {
        let gw = self.system.gateway()?.clone();
        self.pending
            .gateway_ops
            .push(GatewayOp::Query { consumer: consumer.clone(), request: request.clone() });
        Some(gw.query(consumer, request))
    }

    /// Register a standing subscription (recorded).  Returns `None` when
    /// the run has no gateway.
    pub fn subscribe(
        &mut self,
        consumer: &Consumer,
        request: QueryRequest,
        topic: &str,
    ) -> Option<Result<u64, QueryError>> {
        let gw = self.system.gateway()?.clone();
        self.pending.gateway_ops.push(GatewayOp::Subscribe {
            consumer: consumer.clone(),
            request: request.clone(),
            topic: topic.to_string(),
        });
        Some(gw.subscribe(consumer, request, topic))
    }

    /// Advance one tick: run the pipeline, log this tick's buffered
    /// inputs and resulting state hash, checkpoint if the cadence says
    /// so.
    pub fn tick(&mut self) -> TickReport {
        let inputs = std::mem::take(&mut self.pending);
        let report = self.system.tick();
        self.tick += 1;
        let hash = self
            .system
            .last_state_hash()
            .expect("recorder systems always run with state hashing on");
        debug_assert_eq!(hash.tick, self.tick);
        self.ticks.push(TickRecord { tick: self.tick, inputs, hash });
        if self.spec.snapshot_every > 0 && self.tick.is_multiple_of(self.spec.snapshot_every) {
            self.snapshots.push(SnapshotRecord { tick: self.tick, state: self.system.snapshot() });
        }
        report
    }

    /// Run `n` ticks.
    pub fn run_ticks(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// The live system (read-only: inputs must flow through the
    /// recorder so they reach the log).
    pub fn system(&self) -> &MonitoringSystem {
        &self.system
    }

    /// Ticks recorded so far.
    pub fn ticks_recorded(&self) -> u64 {
        self.tick
    }

    /// Finish recording and hand back the event log.
    pub fn finish(self) -> EventLog {
        EventLog { spec: self.spec, ticks: self.ticks, snapshots: self.snapshots }
    }
}
