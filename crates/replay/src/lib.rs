#![warn(missing_docs)]

//! `hpcmon-replay` — a flight recorder for the monitoring plane.
//!
//! Large-scale monitoring incidents are rarely reproducible on demand:
//! the interesting tick happened hours ago, under a particular interleave
//! of injected faults, query arrivals, and collector failures.  This
//! crate turns any [`hpcmon::MonitoringSystem`] run into an attachable,
//! re-executable artifact:
//!
//! * [`FlightRecorder`] wraps a live system, funnels every
//!   non-deterministic input (job submissions, machine faults, gateway
//!   query/subscription arrivals) through a per-tick
//!   [`TickInputs`](hpcmon::TickInputs) record, hashes the full deterministic state after each tick, and
//!   checkpoints complete snapshots every K ticks.
//! * [`EventLog`] is the compact framed binary artifact
//!   (`HPCMRLY1` magic, `[kind][len u32 LE][payload]` frames, explicit
//!   end frame so truncation is detected, JSON payloads).
//! * [`Replayer`] rebuilds an identical system from the log header,
//!   re-drives the tick loop from the logged inputs, and verifies the
//!   state-hash chain tick by tick.  [`Replayer::seek`] restores the
//!   nearest checkpoint at or before the target tick instead of
//!   re-running from 0; [`Replayer::force_full_tracing`] re-executes the
//!   window with 1-in-1 trace sampling without perturbing the hash chain
//!   (the corruption predicate is computed over trace-stripped bytes —
//!   see `DESIGN.md` §11).
//! * On divergence, [`DivergenceReport`] names the first divergent tick,
//!   the first subsystem whose sub-hash differed, and the nearest
//!   snapshot to restart forensics from.
//!
//! ```
//! use hpcmon_replay::{FlightRecorder, Replayer, RunSpec};
//! use hpcmon_sim::{AppProfile, JobSpec};
//! use hpcmon_metrics::Ts;
//!
//! let spec = RunSpec::new(hpcmon::SimConfig::small()).self_telemetry(false);
//! let mut rec = FlightRecorder::new(spec);
//! rec.submit_job(JobSpec::new(
//!     AppProfile::compute_heavy("stencil"), "alice", 8, 600_000, Ts::ZERO,
//! ));
//! for _ in 0..20 { rec.tick(); }
//! let log = rec.finish();
//!
//! let outcome = Replayer::new(&log).run_to_end();
//! assert!(outcome.divergence.is_none());
//! assert_eq!(outcome.ticks_verified, 20);
//! ```

pub mod log;
pub mod recorder;
pub mod replayer;

pub use log::{EventLog, LogError, SnapshotRecord, TickRecord, MAGIC};
pub use recorder::FlightRecorder;
pub use replayer::{DivergenceReport, ReplayOutcome, Replayer};

use hpcmon::{MonitorBuilder, MonitoringSystem, SimConfig};
use hpcmon_chaos::ChaosPlan;
use hpcmon_gateway::GatewayConfig;
use hpcmon_health::HealthConfig;
use hpcmon_store::RetentionPolicy;
use hpcmon_trace::Sampler;
use serde::{Deserialize, Serialize};

/// Everything needed to rebuild a bit-identical [`MonitoringSystem`]:
/// the event log's header frame.
///
/// Strict (hash-verified) replay additionally requires
/// `self_telemetry(false)` — self-observation samples carry wall-clock
/// timer readings whose warm-tier byte sizes feed the store digest (see
/// `DESIGN.md` §11).  The recorder asserts this.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSpec {
    /// The simulated machine.
    pub sim: SimConfig,
    /// Chaos seed + plan, if fault injection was active.
    pub chaos: Option<(u64, ChaosPlan)>,
    /// Collection worker-pool size (0 = serial).  Hashes are
    /// worker-count-invariant, so replay may use a different value; it
    /// is recorded so a replay reproduces the original schedule shape.
    pub workers: usize,
    /// Whether supervised self-healing collection was on.
    pub supervision: bool,
    /// Whether the monitor observed itself (must be `false` for strict
    /// replay).
    pub self_telemetry: bool,
    /// The trace head-sampling policy of the recording run.
    pub tracing: Sampler,
    /// Gateway configuration, if the query frontend was running.
    pub gateway: Option<GatewayConfig>,
    /// Built-in benchmark-suite cadence (`None` = disabled).
    pub bench_every_ticks: Option<u64>,
    /// Whether synthetic latency/bandwidth probes ran.
    pub probes: bool,
    /// Ticks of novelty-detector training.
    pub novelty_training_ticks: u64,
    /// Cabinet power cap, if the power analysis was capped.
    pub power_cap_w: Option<f64>,
    /// Retention policy + enforcement cadence, if enabled.
    pub retention: Option<(RetentionPolicy, u64)>,
    /// SLO/alerting plane configuration, if health was on.  Alert
    /// timelines are deterministic, so replay reproduces them exactly.
    /// Serde default keeps pre-health event logs loadable.
    #[serde(default)]
    pub health: Option<HealthConfig>,
    /// Snapshot checkpoint cadence in ticks (the "K" in seek-to-T).
    pub snapshot_every: u64,
}

impl RunSpec {
    /// A spec mirroring [`MonitorBuilder`]'s defaults, with
    /// `self_telemetry` forced off (strict replay requires it) and a
    /// 50-tick snapshot cadence.
    pub fn new(sim: SimConfig) -> RunSpec {
        RunSpec {
            sim,
            chaos: None,
            workers: 0,
            supervision: false,
            self_telemetry: false,
            tracing: Sampler::one_in(64),
            gateway: None,
            bench_every_ticks: Some(10),
            probes: true,
            novelty_training_ticks: 30,
            power_cap_w: None,
            retention: None,
            health: None,
            snapshot_every: 50,
        }
    }

    /// Enable chaos fault injection.
    pub fn chaos(mut self, seed: u64, plan: ChaosPlan) -> RunSpec {
        self.chaos = Some((seed, plan));
        self
    }

    /// Set the collection worker-pool size.
    pub fn workers(mut self, n: usize) -> RunSpec {
        self.workers = n;
        self
    }

    /// Enable supervised self-healing collection.
    pub fn supervision(mut self, on: bool) -> RunSpec {
        self.supervision = on;
        self
    }

    /// Toggle self-telemetry (must stay `false` for strict replay).
    pub fn self_telemetry(mut self, on: bool) -> RunSpec {
        self.self_telemetry = on;
        self
    }

    /// Set the trace sampling policy.
    pub fn tracing(mut self, sampler: Sampler) -> RunSpec {
        self.tracing = sampler;
        self
    }

    /// Run the query gateway.
    pub fn gateway(mut self, config: GatewayConfig) -> RunSpec {
        self.gateway = Some(config);
        self
    }

    /// Set the benchmark-suite cadence.
    pub fn bench_every_ticks(mut self, every: Option<u64>) -> RunSpec {
        self.bench_every_ticks = every;
        self
    }

    /// Toggle synthetic probes.
    pub fn probes(mut self, on: bool) -> RunSpec {
        self.probes = on;
        self
    }

    /// Set novelty-detector training length.
    pub fn novelty_training_ticks(mut self, ticks: u64) -> RunSpec {
        self.novelty_training_ticks = ticks;
        self
    }

    /// Cap cabinet power.
    pub fn power_cap_w(mut self, cap: f64) -> RunSpec {
        self.power_cap_w = Some(cap);
        self
    }

    /// Enable retention enforcement.
    pub fn retention(mut self, policy: RetentionPolicy, every_ticks: u64) -> RunSpec {
        self.retention = Some((policy, every_ticks));
        self
    }

    /// Enable the SLO/alerting plane.
    pub fn health(mut self, cfg: HealthConfig) -> RunSpec {
        self.health = Some(cfg);
        self
    }

    /// Set the snapshot checkpoint cadence (0 = header only, no
    /// checkpoints; seek then replays from tick 0).
    pub fn snapshot_every(mut self, every: u64) -> RunSpec {
        self.snapshot_every = every;
        self
    }

    /// Build the [`MonitoringSystem`] this spec describes, with state
    /// hashing enabled (it must be on before the first tick so lazily
    /// registered metric ids line up between recording and replay).
    pub fn build_system(&self) -> MonitoringSystem {
        self.build_system_with_workers(self.workers)
    }

    /// Like [`RunSpec::build_system`] but overriding the worker count —
    /// hashes are worker-count-invariant, so replay on a different pool
    /// size is itself a determinism check.
    pub fn build_system_with_workers(&self, workers: usize) -> MonitoringSystem {
        let mut b = MonitorBuilder::new(self.sim.clone())
            .workers(workers)
            .supervision(self.supervision)
            .self_telemetry(self.self_telemetry)
            .tracing(self.tracing)
            .bench_suite_every(self.bench_every_ticks)
            .with_probes(self.probes)
            .novelty_training_ticks(self.novelty_training_ticks);
        if let Some((seed, plan)) = &self.chaos {
            b = b.chaos(*seed, plan.clone());
        }
        if let Some(cfg) = &self.gateway {
            b = b.gateway(cfg.clone());
        }
        if let Some(cap) = self.power_cap_w {
            b = b.power_cap_w(cap);
        }
        if let Some((policy, every)) = self.retention {
            b = b.retention(policy, every);
        }
        if let Some(cfg) = &self.health {
            b = b.health(cfg.clone());
        }
        let mut system = b.build();
        system.set_state_hashing(true);
        system
    }
}
