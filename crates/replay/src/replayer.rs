//! The replaying side: rebuild the system from the log header, re-drive
//! the tick loop from recorded inputs, verify the hash chain, and report
//! divergence with subsystem attribution.

use hpcmon::{MonitoringSystem, TickStateHash};

use crate::log::EventLog;

/// Where and how a replay first disagreed with its recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// The first tick whose state hash differs from the recorded one.
    pub first_divergent_tick: u64,
    /// The first subsystem (in `sim → frame → store → pipeline →
    /// analysis → chaos → gateway → combined` order) whose sub-hash
    /// differs at that tick — the layer to start forensics in.
    pub subsystem: &'static str,
    /// The hash the recording run observed.
    pub expected: TickStateHash,
    /// The hash this replay computed.
    pub actual: TickStateHash,
    /// The latest checkpoint at or before the divergent tick (`None`
    /// when the log has no earlier snapshot) — seek here and re-step
    /// with full tracing to capture the divergence in detail.
    pub nearest_snapshot: Option<u64>,
    /// Whether this replay ran with trace sampling forced to 1-in-1.
    pub forced_full_tracing: bool,
}

impl DivergenceReport {
    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("=== replay divergence ===\n");
        out.push_str(&format!("first divergent tick : {}\n", self.first_divergent_tick));
        out.push_str(&format!("first subsystem      : {}\n", self.subsystem));
        out.push_str(&format!("expected combined    : {:#018x}\n", self.expected.combined));
        out.push_str(&format!("actual combined      : {:#018x}\n", self.actual.combined));
        for (name, (e, a)) in [
            ("sim", (self.expected.sim, self.actual.sim)),
            ("frame", (self.expected.frame, self.actual.frame)),
            ("store", (self.expected.store, self.actual.store)),
            ("pipeline", (self.expected.pipeline, self.actual.pipeline)),
            ("analysis", (self.expected.analysis, self.actual.analysis)),
            ("chaos", (self.expected.chaos, self.actual.chaos)),
            ("gateway", (self.expected.gateway, self.actual.gateway)),
        ] {
            let mark = if e == a { "  ok" } else { "DIFF" };
            out.push_str(&format!("  {mark} {name:<9} {e:#018x} vs {a:#018x}\n"));
        }
        match self.nearest_snapshot {
            Some(t) => out.push_str(&format!(
                "nearest snapshot     : tick {t} (seek there, force full tracing, re-step)\n"
            )),
            None => out.push_str("nearest snapshot     : none (replay from tick 0)\n"),
        }
        if self.forced_full_tracing {
            out.push_str("trace sampling       : forced 1-in-1 for this window\n");
        }
        out
    }
}

/// What a verification run concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Ticks that replayed with matching hashes.
    pub ticks_verified: u64,
    /// The first mismatch, if any.  `None` = the whole window was
    /// bit-identical.
    pub divergence: Option<DivergenceReport>,
}

impl ReplayOutcome {
    /// Whether the replayed window matched the recording everywhere.
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Re-executes an [`EventLog`] against a freshly built (or
/// snapshot-restored) system, verifying the state-hash chain tick by
/// tick.
pub struct Replayer<'log> {
    system: MonitoringSystem,
    log: &'log EventLog,
    /// Index into `log.ticks` of the next record to replay.
    cursor: usize,
    forced_full_tracing: bool,
}

impl<'log> Replayer<'log> {
    /// Build a fresh system from the log header, positioned at tick 0.
    pub fn new(log: &'log EventLog) -> Replayer<'log> {
        Replayer { system: log.spec.build_system(), log, cursor: 0, forced_full_tracing: false }
    }

    /// Like [`Replayer::new`] but with a different collection
    /// worker-pool size — recorded hashes are worker-count-invariant, so
    /// a clean replay at another width doubles as a determinism check.
    pub fn with_workers(log: &'log EventLog, workers: usize) -> Replayer<'log> {
        Replayer {
            system: log.spec.build_system_with_workers(workers),
            log,
            cursor: 0,
            forced_full_tracing: false,
        }
    }

    /// Force trace sampling to 1-in-1 for everything this replayer
    /// executes — the point of replay is forensics, and the hash chain
    /// is immune to sampling (corruption draws are computed over
    /// trace-stripped canonical bytes; traces live outside the hash).
    pub fn force_full_tracing(&mut self) {
        self.forced_full_tracing = true;
        self.system.tracer().set_force_sampling(true);
    }

    /// The tick the replayer is positioned after (0 = nothing replayed;
    /// after `seek(T)` with a clean outcome this is `T`).
    pub fn position(&self) -> u64 {
        self.cursor as u64
    }

    /// The system being driven (read-only; replay input comes from the
    /// log).
    pub fn system(&self) -> &MonitoringSystem {
        &self.system
    }

    /// Seek to tick `target` by restoring the nearest checkpoint at or
    /// before it, then replaying the remaining ticks with hash
    /// verification.  Returns the outcome of the replayed stretch
    /// (snapshot-restore itself is exact, so a divergence here indicates
    /// either a perturbed log or real non-determinism).
    ///
    /// With no usable snapshot this degrades to replay-from-0 up to
    /// `target`.
    pub fn seek(&mut self, target: u64) -> ReplayOutcome {
        assert!(
            target <= self.log.len(),
            "seek target {target} past end of log ({} ticks)",
            self.log.len()
        );
        let restored = match self.log.nearest_snapshot(target) {
            Some(snap) => {
                let state: hpcmon::CoreSnapshot = roundtrip(&snap.state);
                self.system.restore_snapshot(state);
                snap.tick
            }
            None => {
                // No checkpoint: rebuild from scratch and replay it all.
                self.system = self.log.spec.build_system();
                if self.forced_full_tracing {
                    self.system.tracer().set_force_sampling(true);
                }
                0
            }
        };
        self.cursor = restored as usize;
        let mut verified = 0;
        while self.position() < target {
            match self.step() {
                Some(Ok(_)) => verified += 1,
                Some(Err(report)) => {
                    return ReplayOutcome { ticks_verified: verified, divergence: Some(report) }
                }
                None => break,
            }
        }
        ReplayOutcome { ticks_verified: verified, divergence: None }
    }

    /// Replay the next recorded tick: apply its logged inputs, run the
    /// pipeline, compare hashes.  `None` = end of log; `Some(Ok(hash))`
    /// = verified; `Some(Err(report))` = divergence.
    #[allow(clippy::type_complexity)]
    pub fn step(&mut self) -> Option<Result<TickStateHash, DivergenceReport>> {
        let record = self.log.ticks.get(self.cursor)?;
        self.system.apply_tick_inputs(&record.inputs);
        self.system.tick();
        self.cursor += 1;
        let actual =
            self.system.last_state_hash().expect("replay systems always run with state hashing on");
        if actual == record.hash {
            return Some(Ok(actual));
        }
        let subsystem = record.hash.first_divergence(&actual).unwrap_or("combined");
        Some(Err(DivergenceReport {
            first_divergent_tick: record.tick,
            subsystem,
            expected: record.hash,
            actual,
            nearest_snapshot: self
                .log
                .nearest_snapshot(record.tick.saturating_sub(1))
                .map(|s| s.tick),
            forced_full_tracing: self.forced_full_tracing,
        }))
    }

    /// Replay every remaining tick, stopping at the first divergence.
    pub fn run_to_end(mut self) -> ReplayOutcome {
        let mut verified = 0;
        while let Some(step) = self.step() {
            match step {
                Ok(_) => verified += 1,
                Err(report) => {
                    return ReplayOutcome { ticks_verified: verified, divergence: Some(report) }
                }
            }
        }
        ReplayOutcome { ticks_verified: verified, divergence: None }
    }
}

/// Snapshots are stored in the log by value; restoring must not alias the
/// log's copy (restore consumes a `CoreSnapshot`), so round-trip through
/// the serde value layer — the same path a file-loaded log takes.
fn roundtrip(state: &hpcmon::CoreSnapshot) -> hpcmon::CoreSnapshot {
    let bytes = serde_json::to_vec(state).expect("snapshots always serialize");
    serde_json::from_slice(&bytes).expect("snapshots always round-trip")
}
