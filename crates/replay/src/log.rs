//! The framed binary event log.
//!
//! Layout: an 8-byte magic (`HPCMRLY1`), then a sequence of frames
//! `[kind: u8][len: u32 LE][payload: len bytes]`, terminated by an
//! explicit end frame.  Payloads are the canonical JSON encodings of the
//! run header ([`RunSpec`]), one [`TickRecord`] per tick, and periodic
//! [`SnapshotRecord`]s; the explicit terminator means a log that was cut
//! off mid-write (crashed recorder, truncated artifact upload) is
//! *rejected* as [`LogError::Truncated`] rather than silently replayed
//! short.

use hpcmon::{CoreSnapshot, TickInputs, TickStateHash};
use serde::{Deserialize, Serialize};

use crate::RunSpec;

/// First eight bytes of every event log: format name + version.
pub const MAGIC: [u8; 8] = *b"HPCMRLY1";

const FRAME_HEADER: u8 = 0x01;
const FRAME_TICK: u8 = 0x02;
const FRAME_SNAPSHOT: u8 = 0x03;
const FRAME_END: u8 = 0x7F;

/// Everything recorded about one tick: the external inputs it received
/// and the state hash the recording run observed after it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TickRecord {
    /// Tick number (1-based: the first `tick()` call is tick 1).
    pub tick: u64,
    /// External inputs applied before this tick ran.
    pub inputs: TickInputs,
    /// State hash observed after this tick in the recording run.
    pub hash: TickStateHash,
}

/// A full deterministic-state checkpoint, written every
/// [`RunSpec::snapshot_every`] ticks so replay can seek without
/// re-running from tick 0.
#[derive(Serialize, Deserialize)]
pub struct SnapshotRecord {
    /// Tick the snapshot was taken after.
    pub tick: u64,
    /// The serialized system state.
    pub state: CoreSnapshot,
}

/// Why a byte buffer failed to parse as an event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The buffer ends before the end frame (or mid-frame): the log was
    /// cut off while being written or transferred.
    Truncated,
    /// A frame kind this version does not understand.
    UnknownFrame(u8),
    /// A frame payload failed to decode.
    Corrupt(String),
    /// The log has no header frame, or frames in an impossible order.
    Malformed(String),
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::BadMagic => write!(f, "not an hpcmon event log (bad magic)"),
            LogError::Truncated => write!(f, "event log truncated before end frame"),
            LogError::UnknownFrame(k) => write!(f, "unknown frame kind 0x{k:02X}"),
            LogError::Corrupt(msg) => write!(f, "corrupt frame payload: {msg}"),
            LogError::Malformed(msg) => write!(f, "malformed event log: {msg}"),
        }
    }
}

impl std::error::Error for LogError {}

/// A complete recorded run: header, per-tick records, and snapshots.
#[derive(Serialize, Deserialize)]
pub struct EventLog {
    /// The run configuration needed to rebuild an identical system.
    pub spec: RunSpec,
    /// One record per executed tick, in order.
    pub ticks: Vec<TickRecord>,
    /// Checkpoints, in tick order (`snapshots[i].tick` is increasing).
    pub snapshots: Vec<SnapshotRecord>,
}

impl EventLog {
    /// Serialize to the framed binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(&MAGIC);
        push_frame(&mut out, FRAME_HEADER, &encode_json(&self.spec));
        // Interleave snapshots at their tick position so a streaming
        // writer and this batch writer produce the same bytes.
        let mut snap = self.snapshots.iter().peekable();
        for rec in &self.ticks {
            push_frame(&mut out, FRAME_TICK, &encode_json(rec));
            while snap.peek().is_some_and(|s| s.tick == rec.tick) {
                push_frame(&mut out, FRAME_SNAPSHOT, &encode_json(snap.next().unwrap()));
            }
        }
        // Snapshots recorded past the last tick (tick-0 checkpoints of an
        // empty run) still need flushing.
        for s in snap {
            push_frame(&mut out, FRAME_SNAPSHOT, &encode_json(s));
        }
        push_frame(&mut out, FRAME_END, &[]);
        out
    }

    /// Parse the framed binary format, rejecting truncated or unknown
    /// input.
    pub fn from_bytes(bytes: &[u8]) -> Result<EventLog, LogError> {
        if bytes.len() < MAGIC.len() {
            return Err(if bytes.is_empty() || MAGIC.starts_with(bytes) {
                LogError::Truncated
            } else {
                LogError::BadMagic
            });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(LogError::BadMagic);
        }
        let mut cursor = MAGIC.len();
        let mut spec: Option<RunSpec> = None;
        let mut ticks: Vec<TickRecord> = Vec::new();
        let mut snapshots: Vec<SnapshotRecord> = Vec::new();
        let mut ended = false;
        while cursor < bytes.len() {
            if bytes.len() - cursor < 5 {
                return Err(LogError::Truncated);
            }
            let kind = bytes[cursor];
            let len = u32::from_le_bytes([
                bytes[cursor + 1],
                bytes[cursor + 2],
                bytes[cursor + 3],
                bytes[cursor + 4],
            ]) as usize;
            cursor += 5;
            if bytes.len() - cursor < len {
                return Err(LogError::Truncated);
            }
            let payload = &bytes[cursor..cursor + len];
            cursor += len;
            match kind {
                FRAME_HEADER => {
                    if spec.is_some() {
                        return Err(LogError::Malformed("duplicate header frame".into()));
                    }
                    spec = Some(decode_json(payload)?);
                }
                FRAME_TICK => {
                    let rec: TickRecord = decode_json(payload)?;
                    if let Some(last) = ticks.last() {
                        if rec.tick != last.tick + 1 {
                            return Err(LogError::Malformed(format!(
                                "tick {} follows tick {}",
                                rec.tick, last.tick
                            )));
                        }
                    }
                    ticks.push(rec);
                }
                FRAME_SNAPSHOT => snapshots.push(decode_json(payload)?),
                FRAME_END => {
                    if !payload.is_empty() {
                        return Err(LogError::Corrupt("end frame carries payload".into()));
                    }
                    ended = true;
                    break;
                }
                other => return Err(LogError::UnknownFrame(other)),
            }
        }
        if !ended {
            return Err(LogError::Truncated);
        }
        let spec = spec.ok_or_else(|| LogError::Malformed("missing header frame".into()))?;
        Ok(EventLog { spec, ticks, snapshots })
    }

    /// Write the framed binary format to a file.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Read and parse an event log from a file.
    pub fn read_from(path: impl AsRef<std::path::Path>) -> std::io::Result<EventLog> {
        let bytes = std::fs::read(path)?;
        EventLog::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// The tick count this log covers.
    pub fn len(&self) -> u64 {
        self.ticks.len() as u64
    }

    /// Whether the log records zero ticks.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// The latest snapshot at or before `tick` (tick 0 = initial state,
    /// which has no snapshot unless the recorder wrote one).
    pub fn nearest_snapshot(&self, tick: u64) -> Option<&SnapshotRecord> {
        self.snapshots.iter().rev().find(|s| s.tick <= tick)
    }
}

fn push_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

fn encode_json<T: Serialize>(value: &T) -> Vec<u8> {
    serde_json::to_vec(value).expect("event-log payloads always serialize")
}

fn decode_json<T: for<'de> Deserialize<'de>>(payload: &[u8]) -> Result<T, LogError> {
    serde_json::from_slice(payload).map_err(|e| LogError::Corrupt(e.to_string()))
}
