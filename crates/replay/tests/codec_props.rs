//! Event-log codec properties: arbitrary logs round-trip bit-exactly,
//! and *any* truncation of a valid log is rejected rather than silently
//! replayed short.

use hpcmon::{GatewayOp, SimConfig, TickInputs, TickStateHash};
use hpcmon_gateway::QueryRequest;
use hpcmon_metrics::{MetricId, Ts};
use hpcmon_replay::{EventLog, LogError, RunSpec, TickRecord};
use hpcmon_response::Consumer;
use hpcmon_sim::{AppProfile, FaultKind, JobSpec};
use hpcmon_store::{AggFn, TimeRange};
use proptest::prelude::*;

/// Deterministically expand a compact seed vector into arbitrary tick
/// records (the proptest shim generates the seeds; this keeps the
/// strategy surface simple while still exercising every payload arm).
fn log_from_seeds(seeds: &[u64]) -> EventLog {
    let spec = RunSpec::new(SimConfig::small()).snapshot_every(0);
    let mut ticks = Vec::new();
    for (i, &seed) in seeds.iter().enumerate() {
        let mut inputs = TickInputs::default();
        if seed % 2 == 0 {
            inputs.jobs.push(JobSpec::new(
                AppProfile::compute_heavy("stencil"),
                "alice",
                (seed % 64) as u32 + 1,
                600_000,
                Ts(seed % 10_000),
            ));
        }
        if seed % 3 == 0 {
            inputs
                .faults
                .push((Ts(seed % 100_000), FaultKind::NodeCrash { node: (seed % 128) as u32 }));
        }
        if seed % 5 == 0 {
            inputs.gateway_ops.push(GatewayOp::Query {
                consumer: Consumer::admin("ops"),
                request: QueryRequest::AggregateAcross {
                    metric: MetricId((seed % 7) as u32),
                    range: TimeRange { from: Ts::ZERO, to: Ts(seed % 1_000_000) },
                    agg: AggFn::Mean,
                },
            });
        }
        let h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ticks.push(TickRecord {
            tick: i as u64 + 1,
            inputs,
            hash: TickStateHash {
                tick: i as u64 + 1,
                sim: h,
                frame: h ^ 1,
                store: h ^ 2,
                pipeline: h ^ 3,
                analysis: h ^ 4,
                chaos: h ^ 5,
                gateway: h ^ 6,
                combined: h ^ 7,
            },
        });
    }
    EventLog { spec, ticks, snapshots: Vec::new() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary payloads survive encode → decode bit-exactly.
    #[test]
    fn codec_round_trips(seeds in proptest::collection::vec(0u64..u64::MAX, 0..40)) {
        let log = log_from_seeds(&seeds);
        let bytes = log.to_bytes();
        let back = EventLog::from_bytes(&bytes).expect("valid log parses");
        prop_assert_eq!(back.ticks, log.ticks);
        prop_assert_eq!(back.len(), seeds.len() as u64);
    }

    /// Every proper prefix of a valid log is rejected — a log cut off
    /// mid-transfer must never parse as a shorter run.
    #[test]
    fn truncation_is_always_rejected(
        seeds in proptest::collection::vec(0u64..u64::MAX, 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = log_from_seeds(&seeds).to_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        match EventLog::from_bytes(&bytes[..cut]) {
            Err(LogError::Truncated) => {}
            Err(other) => prop_assert!(false, "expected Truncated, got {other:?}"),
            Ok(_) => prop_assert!(false, "truncated log at {cut}/{} parsed", bytes.len()),
        }
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = log_from_seeds(&[1, 2, 3]).to_bytes();
    bytes[0] ^= 0xFF;
    assert!(matches!(EventLog::from_bytes(&bytes), Err(LogError::BadMagic)));
}

#[test]
fn unknown_frame_is_rejected() {
    let mut bytes = log_from_seeds(&[]).to_bytes();
    // Splice an unknown frame kind before the end frame.
    let end = bytes.len() - 5;
    bytes.splice(end..end, [0x42u8, 0, 0, 0, 0]);
    assert!(matches!(EventLog::from_bytes(&bytes), Err(LogError::UnknownFrame(0x42))));
}

#[test]
fn file_round_trip() {
    let log = log_from_seeds(&[7, 11, 13, 17]);
    let path = std::env::temp_dir().join("hpcmon_replay_codec_props.rlog");
    log.write_to(&path).expect("write");
    let back = EventLog::read_from(&path).expect("read");
    assert_eq!(back.ticks, log.ticks);
    let _ = std::fs::remove_file(&path);
}
