//! End-to-end flight-recorder properties: a recorded chaos run replays
//! bit-identically (at any worker count, with or without forced
//! tracing), seek-to-T equals replay-from-0 at every T, and a perturbed
//! log produces an attributed divergence report.

use hpcmon::SimConfig;
use hpcmon_chaos::{ChaosFault, ChaosPlan};
use hpcmon_gateway::{GatewayConfig, QueryRequest};
use hpcmon_metrics::{MetricId, Ts};
use hpcmon_replay::{EventLog, FlightRecorder, Replayer, RunSpec};
use hpcmon_response::Consumer;
use hpcmon_sim::{AppProfile, FaultKind, JobSpec};
use hpcmon_store::{AggFn, TimeRange};
use proptest::prelude::*;
use std::sync::OnceLock;

fn plan() -> ChaosPlan {
    let mut plan = ChaosPlan::new();
    plan.schedule(5, ChaosFault::CollectorPanic { collector: "node".into() });
    plan.schedule(12, ChaosFault::EnvelopeCorrupt { rate: 0.5, ticks: 10 });
    plan.schedule(20, ChaosFault::StoreWriteFail { shard: 1, ticks: 4 });
    plan.schedule(35, ChaosFault::BrokerTopicStall { topic: "metrics/frame".into(), ticks: 3 });
    plan
}

fn spec() -> RunSpec {
    RunSpec::new(SimConfig::small())
        .chaos(0xD1CE, plan())
        .supervision(true)
        .gateway(GatewayConfig { default_deadline_ms: 10_000, ..GatewayConfig::default() })
        .snapshot_every(16)
}

/// One recorded 60-tick chaos run, shared across tests (recording is the
/// expensive part; every test replays it differently).
fn recorded() -> &'static EventLog {
    static LOG: OnceLock<EventLog> = OnceLock::new();
    LOG.get_or_init(|| {
        let mut rec = FlightRecorder::new(spec());
        rec.submit_job(JobSpec::new(
            AppProfile::compute_heavy("stencil"),
            "alice",
            8,
            600_000,
            Ts::ZERO,
        ));
        rec.schedule_fault(Ts(90_000), FaultKind::NodeCrash { node: 3 });
        // Gateway traffic so seek exercises the gateway checkpoint: a
        // standing subscription (registered before the first snapshot)
        // and periodic one-shot queries.
        let ops = Consumer::admin("ops");
        let agg = QueryRequest::AggregateAcross {
            metric: MetricId(0),
            range: TimeRange { from: Ts::ZERO, to: Ts(u64::MAX) },
            agg: AggFn::Mean,
        };
        rec.subscribe(&ops, agg.clone(), "ops/load")
            .expect("gateway is on")
            .expect("valid subscription");
        for t in 0..60u64 {
            if t % 13 == 5 {
                rec.query(&ops, agg.clone()).expect("gateway is on").expect("valid query");
            }
            rec.tick();
        }
        rec.finish()
    })
}

#[test]
fn replay_is_bit_identical() {
    let outcome = Replayer::new(recorded()).run_to_end();
    assert!(outcome.is_clean(), "divergence: {:?}", outcome.divergence);
    assert_eq!(outcome.ticks_verified, 60);
}

#[test]
fn replay_at_different_worker_count_is_bit_identical() {
    let outcome = Replayer::with_workers(recorded(), 4).run_to_end();
    assert!(outcome.is_clean(), "divergence: {:?}", outcome.divergence);
    assert_eq!(outcome.ticks_verified, 60);
}

#[test]
fn forced_full_tracing_does_not_perturb_the_hash_chain() {
    let mut rep = Replayer::new(recorded());
    rep.force_full_tracing();
    let outcome = rep.run_to_end();
    assert!(outcome.is_clean(), "divergence: {:?}", outcome.divergence);
    assert_eq!(outcome.ticks_verified, 60);
}

#[test]
fn log_survives_the_wire_format() {
    let bytes = recorded().to_bytes();
    let back = EventLog::from_bytes(&bytes).expect("recorded log parses");
    assert_eq!(back.ticks, recorded().ticks);
    let outcome = Replayer::new(&back).run_to_end();
    assert!(outcome.is_clean(), "divergence: {:?}", outcome.divergence);
}

#[test]
fn perturbed_log_yields_attributed_divergence() {
    let mut tampered = EventLog::from_bytes(&recorded().to_bytes()).expect("parses");
    // Flip one bit of the recorded sim sub-hash at tick 42: replay must
    // stop exactly there and name the subsystem.
    tampered.ticks[41].hash.sim ^= 1;
    tampered.ticks[41].hash.combined ^= 1;
    let outcome = Replayer::new(&tampered).run_to_end();
    assert_eq!(outcome.ticks_verified, 41);
    let report = outcome.divergence.expect("tampered log must diverge");
    assert_eq!(report.first_divergent_tick, 42);
    assert_eq!(report.subsystem, "sim");
    assert_eq!(report.nearest_snapshot, Some(32), "16-tick cadence: nearest <= 41 is 32");
    let rendered = report.render();
    assert!(rendered.contains("first divergent tick : 42"));
    assert!(rendered.contains("sim"));
}

#[test]
fn changed_inputs_yield_divergence_not_panic() {
    let mut tampered = EventLog::from_bytes(&recorded().to_bytes()).expect("parses");
    // Drop the recorded job: replay executes different work, so the sim
    // digest must split and the report must say so.
    tampered.ticks[0].inputs.jobs.clear();
    let outcome = Replayer::new(&tampered).run_to_end();
    let report = outcome.divergence.expect("missing input must diverge");
    assert_eq!(report.subsystem, "sim");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Seeking to T and replaying the tail matches the from-0 hash chain
    /// for arbitrary T — snapshot restore is bit-exact.
    #[test]
    fn seek_matches_replay_from_zero(target in 1u64..60) {
        let log = recorded();
        let mut rep = Replayer::new(log);
        let outcome = rep.seek(target);
        prop_assert!(outcome.is_clean(), "seek diverged: {:?}", outcome.divergence);
        prop_assert_eq!(rep.position(), target);
        // Continue to the end: the tail after a seek must stay clean too.
        let mut verified = 0;
        while let Some(step) = rep.step() {
            prop_assert!(step.is_ok(), "post-seek divergence: {:?}", step.err());
            verified += 1;
        }
        prop_assert_eq!(verified, 60 - target);
    }
}

#[test]
fn seek_restores_forced_tracing_window() {
    // The incident workflow: seek near the end, force 1-in-1 tracing,
    // re-step the window — hashes must still match the recording.
    let mut rep = Replayer::new(recorded());
    rep.force_full_tracing();
    let outcome = rep.seek(48);
    assert!(outcome.is_clean(), "seek diverged: {:?}", outcome.divergence);
    for _ in 48..60 {
        let step = rep.step().expect("log has ticks left");
        assert!(step.is_ok(), "divergence under forced tracing: {:?}", step.err());
    }
    assert_eq!(rep.position(), 60);
}
