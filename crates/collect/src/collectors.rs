//! Passive subsystem collectors.
//!
//! Each collector samples one subsystem's observables into the shared
//! synchronized columnar frame ([`ColumnFrame`]).  All of them are pure
//! reads of the engine's observation API — the monitoring stack cannot
//! perturb the machine, which is the "lowest possible overhead"
//! requirement from Table I made literal.

use crate::registry::StdMetrics;
use hpcmon_metrics::{ColumnFrame, CompId, Mutability};
use hpcmon_sim::SimEngine;

/// One data source that contributes samples to a synchronized frame.
pub trait Collector: Send {
    /// Stable name (used as the transport topic suffix).
    fn name(&self) -> &str;
    /// Append this tick's samples to the columnar `frame`.
    fn collect(&mut self, engine: &SimEngine, frame: &mut ColumnFrame);
    /// How this collector's frame segment evolves tick to tick (the
    /// murk-style Static/PerTick/Sparse split).  A hint for consumers;
    /// does not change storage.
    fn mutability(&self) -> Mutability {
        Mutability::PerTick
    }
    /// Internal RNG state, for flight-recorder checkpoints (`None` for the
    /// common stateless collector; probes with measurement noise override).
    fn rng_state(&self) -> Option<u64> {
        None
    }
    /// Restore internal RNG state (replay seek).  The default is a no-op,
    /// matching [`Collector::rng_state`] returning `None`.
    fn set_rng_state(&mut self, _state: u64) {}
}

/// Node CPU/memory/health sampler (the /proc scrape).
pub struct NodeCollector {
    metrics: StdMetrics,
}

impl NodeCollector {
    /// Build against the standard metric set.
    pub fn new(metrics: StdMetrics) -> NodeCollector {
        NodeCollector { metrics }
    }
}

impl Collector for NodeCollector {
    fn name(&self) -> &str {
        "node"
    }

    fn mutability(&self) -> Mutability {
        Mutability::Static // key set fixed by node count; only values change
    }

    fn collect(&mut self, engine: &SimEngine, frame: &mut ColumnFrame) {
        let m = &self.metrics;
        for n in 0..engine.num_nodes() {
            let node = engine.node(n);
            let comp = CompId::node(n);
            frame.push(m.node_cpu, comp, node.cpu_util);
            frame.push(m.node_mem_used, comp, node.mem_used_bytes);
            frame.push(m.node_free_mem, comp, node.free_mem_bytes());
            frame.push(m.node_health, comp, if node.passes_health_check() { 1.0 } else { 0.0 });
        }
    }
}

/// Power sampler: per node, per cabinet, and system-wide (the KAUST/SEDC
/// view that makes Figure 3).
pub struct PowerCollector {
    metrics: StdMetrics,
}

impl PowerCollector {
    /// Build against the standard metric set.
    pub fn new(metrics: StdMetrics) -> PowerCollector {
        PowerCollector { metrics }
    }
}

impl Collector for PowerCollector {
    fn name(&self) -> &str {
        "power"
    }

    fn mutability(&self) -> Mutability {
        Mutability::Static // nodes + cabinets + system: topology-fixed keys
    }

    fn collect(&mut self, engine: &SimEngine, frame: &mut ColumnFrame) {
        let m = &self.metrics;
        let topo = engine.topology();
        let mut cabinets = vec![0.0f64; topo.num_cabinets() as usize];
        let mut total = 0.0;
        for n in 0..engine.num_nodes() {
            let w = engine.node_power_w(n);
            frame.push(m.node_power, CompId::node(n), w);
            cabinets[topo.cabinet_of(n) as usize] += w;
            total += w;
        }
        for (c, w) in cabinets.into_iter().enumerate() {
            frame.push(m.cabinet_power, CompId::cabinet(c as u32), w);
        }
        frame.push(m.system_power, CompId::SYSTEM, total);
    }
}

/// HSN counter sampler: per-link traffic/stalls/errors/utilization and
/// per-node injection bandwidth.  `link_stride` decimates link coverage
/// (1 = full fidelity) for the fidelity/overhead tradeoff bench.
pub struct NetworkCollector {
    metrics: StdMetrics,
    link_stride: u32,
}

impl NetworkCollector {
    /// Full-fidelity collector.
    pub fn new(metrics: StdMetrics) -> NetworkCollector {
        NetworkCollector { metrics, link_stride: 1 }
    }

    /// Collect only every `stride`-th link (reduced fidelity).
    pub fn with_stride(metrics: StdMetrics, stride: u32) -> NetworkCollector {
        assert!(stride >= 1);
        NetworkCollector { metrics, link_stride: stride }
    }
}

impl Collector for NetworkCollector {
    fn name(&self) -> &str {
        "hsn"
    }

    fn mutability(&self) -> Mutability {
        Mutability::Static // link + node key set fixed by the fabric
    }

    fn collect(&mut self, engine: &SimEngine, frame: &mut ColumnFrame) {
        let m = &self.metrics;
        let net = engine.network();
        let links = net.num_links() as u32;
        let mut l = 0;
        while l < links {
            let comp = CompId::link(l);
            frame.push(m.link_traffic, comp, net.link_traffic_bytes(l));
            frame.push(m.link_stalls, comp, net.link_stall_bytes(l));
            frame.push(m.link_errors, comp, net.link_errors(l));
            frame.push(m.link_util, comp, net.link_utilization(l));
            l += self.link_stride;
        }
        for n in 0..engine.num_nodes() {
            frame.push(m.node_injection_pct, CompId::node(n), net.node_injection_pct(n));
        }
    }
}

/// Filesystem sampler: per-OST rates and latency, MDS latency, aggregates,
/// and per-node read attribution.
pub struct FsCollector {
    metrics: StdMetrics,
}

impl FsCollector {
    /// Build against the standard metric set.
    pub fn new(metrics: StdMetrics) -> FsCollector {
        FsCollector { metrics }
    }
}

impl Collector for FsCollector {
    fn name(&self) -> &str {
        "fs"
    }

    fn mutability(&self) -> Mutability {
        Mutability::Sparse // per-node read attribution follows job activity
    }

    fn collect(&mut self, engine: &SimEngine, frame: &mut ColumnFrame) {
        let m = &self.metrics;
        let fs = engine.filesystem();
        let dt_s = engine.tick_ms() as f64 / 1_000.0;
        for o in 0..fs.num_osts() {
            let comp = CompId::ost(o);
            frame.push(m.ost_read_bps, comp, fs.ost_read_bytes(o) / dt_s);
            frame.push(m.ost_write_bps, comp, fs.ost_write_bytes(o) / dt_s);
            frame.push(m.ost_latency, comp, fs.ost_latency_ms(o));
        }
        frame.push(m.mds_latency, CompId::mds(0), fs.mds_latency_ms());
        frame.push(m.fs_agg_read_bps, CompId::SYSTEM, fs.aggregate_read_bytes_per_sec());
        frame.push(m.fs_agg_write_bps, CompId::SYSTEM, fs.aggregate_write_bytes_per_sec());
        // Per-node read attribution: distribute each running job's phase
        // read rate over its active nodes (what a client-side stats scrape
        // would report).
        for r in engine.scheduler().running() {
            let phase = r.spec.app.phase_at(r.progress_ms as u64);
            if phase.read_bytes_per_sec <= 0.0 {
                continue;
            }
            for &n in &r.nodes {
                let node = engine.node(n);
                if node.cpu_util > 0.05 {
                    frame.push(m.node_fs_read_bps, CompId::node(n), phase.read_bytes_per_sec);
                }
            }
        }
    }
}

/// Datacenter environment sampler (the ORNL/ASHRAE watch).
pub struct EnvCollector {
    metrics: StdMetrics,
}

impl EnvCollector {
    /// Build against the standard metric set.
    pub fn new(metrics: StdMetrics) -> EnvCollector {
        EnvCollector { metrics }
    }
}

impl Collector for EnvCollector {
    fn name(&self) -> &str {
        "env"
    }

    fn mutability(&self) -> Mutability {
        Mutability::Static // one room, four fixed sensors
    }

    fn collect(&mut self, engine: &SimEngine, frame: &mut ColumnFrame) {
        let m = &self.metrics;
        let env = engine.environment();
        let comp = CompId::ENVIRONMENT;
        frame.push(m.env_temp, comp, env.temp_c);
        frame.push(m.env_humidity, comp, env.humidity_pct);
        frame.push(m.env_so2, comp, env.so2_ppb);
        frame.push(m.env_particulates, comp, env.particulates);
    }
}

/// Scheduler/queue sampler (the CSC/NERSC backlog view).
pub struct QueueCollector {
    metrics: StdMetrics,
}

impl QueueCollector {
    /// Build against the standard metric set.
    pub fn new(metrics: StdMetrics) -> QueueCollector {
        QueueCollector { metrics }
    }
}

impl Collector for QueueCollector {
    fn name(&self) -> &str {
        "sched"
    }

    fn mutability(&self) -> Mutability {
        Mutability::Static // four system-wide gauges
    }

    fn collect(&mut self, engine: &SimEngine, frame: &mut ColumnFrame) {
        let m = &self.metrics;
        let sched = engine.scheduler();
        frame.push(m.queue_depth, CompId::SYSTEM, sched.queue_depth_at(engine.now()) as f64);
        frame.push(m.running_jobs, CompId::SYSTEM, sched.running().len() as f64);
        frame.push(m.free_nodes, CompId::SYSTEM, sched.free_count() as f64);
        frame.push(m.nodes_out_of_service, CompId::SYSTEM, sched.out_of_service().len() as f64);
    }
}

/// GPU health sampler (the CSCS per-node GPU validation view).
pub struct GpuHealthCollector {
    metrics: StdMetrics,
}

impl GpuHealthCollector {
    /// Build against the standard metric set.
    pub fn new(metrics: StdMetrics) -> GpuHealthCollector {
        GpuHealthCollector { metrics }
    }
}

impl Collector for GpuHealthCollector {
    fn name(&self) -> &str {
        "gpu"
    }

    fn collect(&mut self, engine: &SimEngine, frame: &mut ColumnFrame) {
        let m = &self.metrics;
        for n in 0..engine.num_nodes() {
            let node = engine.node(n);
            if node.gpus.is_empty() {
                continue;
            }
            let healthy = node.gpus.iter().filter(|&&g| engine.gpu(g).healthy).count();
            frame.push(m.gpu_healthy, CompId::node(n), healthy as f64);
        }
    }
}

/// Burst-buffer sampler: occupancy, absorb/drain rates, and the
/// configuration check (LANL's check target).  Emits nothing on machines
/// without a buffer tier.
pub struct BbCollector {
    metrics: StdMetrics,
}

impl BbCollector {
    /// Build against the standard metric set.
    pub fn new(metrics: StdMetrics) -> BbCollector {
        BbCollector { metrics }
    }
}

impl Collector for BbCollector {
    fn name(&self) -> &str {
        "bb"
    }

    fn collect(&mut self, engine: &SimEngine, frame: &mut ColumnFrame) {
        let Some(bb) = engine.burst_buffer() else {
            return;
        };
        let m = &self.metrics;
        let dt_s = engine.tick_ms() as f64 / 1_000.0;
        for i in 0..bb.num_nodes() {
            let node = bb.node(i);
            let comp = CompId::bb(i);
            frame.push(m.bb_occupancy, comp, node.occupancy_bytes);
            frame.push(m.bb_absorb_bps, comp, node.absorbed_last_tick / dt_s);
            frame.push(m.bb_drain_bps, comp, node.drained_last_tick / dt_s);
            frame.push(m.bb_configured, comp, if node.configured { 1.0 } else { 0.0 });
        }
    }
}

/// Build the full standard collector set.
pub fn standard_collectors(metrics: StdMetrics) -> Vec<Box<dyn Collector>> {
    vec![
        Box::new(NodeCollector::new(metrics)),
        Box::new(PowerCollector::new(metrics)),
        Box::new(NetworkCollector::new(metrics)),
        Box::new(FsCollector::new(metrics)),
        Box::new(EnvCollector::new(metrics)),
        Box::new(QueueCollector::new(metrics)),
        Box::new(GpuHealthCollector::new(metrics)),
        Box::new(BbCollector::new(metrics)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::{Frame, MetricRegistry, Ts};
    use hpcmon_sim::{AppProfile, JobSpec, SimConfig, SimEngine};

    fn setup() -> (SimEngine, StdMetrics) {
        let mut engine = SimEngine::new(SimConfig::small());
        engine.submit_job(JobSpec::new(
            AppProfile::comm_heavy("fft"),
            "alice",
            32,
            30 * 60_000,
            Ts::ZERO,
        ));
        engine.step();
        engine.step();
        let reg = MetricRegistry::new();
        (engine, StdMetrics::register(&reg))
    }

    fn collect_one(c: &mut dyn Collector, engine: &SimEngine) -> Frame {
        let mut cf = ColumnFrame::new(engine.now());
        c.collect(engine, &mut cf);
        cf.to_frame()
    }

    #[test]
    fn node_collector_covers_every_node() {
        let (engine, m) = setup();
        let frame = collect_one(&mut NodeCollector::new(m), &engine);
        assert_eq!(frame.of_metric(m.node_cpu).count(), 128);
        assert_eq!(frame.of_metric(m.node_health).count(), 128);
        // Busy nodes exist.
        assert!(frame.of_metric(m.node_cpu).any(|s| s.value > 0.5));
        // All health values are 0/1.
        assert!(frame.of_metric(m.node_health).all(|s| s.value == 0.0 || s.value == 1.0));
    }

    #[test]
    fn power_collector_sums_consistently() {
        let (engine, m) = setup();
        let frame = collect_one(&mut PowerCollector::new(m), &engine);
        let node_sum = frame.sum_of(m.node_power);
        let cab_sum = frame.sum_of(m.cabinet_power);
        let system = frame.sum_of(m.system_power);
        assert!((node_sum - cab_sum).abs() < 1e-6);
        assert!((node_sum - system).abs() < 1e-6);
        assert!(system > 10_000.0, "128 nodes draw kWs");
        assert_eq!(
            frame.of_metric(m.cabinet_power).count(),
            engine.topology().num_cabinets() as usize
        );
    }

    #[test]
    fn network_collector_sees_traffic() {
        let (engine, m) = setup();
        let frame = collect_one(&mut NetworkCollector::new(m), &engine);
        let links = engine.network().num_links();
        assert_eq!(frame.of_metric(m.link_traffic).count(), links);
        assert!(frame.sum_of(m.link_traffic) > 0.0, "comm job moved bytes");
        assert_eq!(frame.of_metric(m.node_injection_pct).count(), 128);
        assert!(frame.of_metric(m.node_injection_pct).any(|s| s.value > 0.0));
    }

    #[test]
    fn network_stride_decimates() {
        let (engine, m) = setup();
        let full = collect_one(&mut NetworkCollector::new(m), &engine);
        let thin = collect_one(&mut NetworkCollector::with_stride(m, 4), &engine);
        let full_links = full.of_metric(m.link_traffic).count();
        let thin_links = thin.of_metric(m.link_traffic).count();
        assert!(thin_links <= full_links / 4 + 1);
        assert!(thin_links > 0);
    }

    #[test]
    fn fs_collector_reports_osts_and_aggregate() {
        let (engine, m) = setup();
        let frame = collect_one(&mut FsCollector::new(m), &engine);
        assert_eq!(frame.of_metric(m.ost_latency).count(), engine.filesystem().num_osts() as usize);
        assert_eq!(frame.of_metric(m.mds_latency).count(), 1);
        assert_eq!(frame.of_metric(m.fs_agg_read_bps).count(), 1);
        // All latencies positive.
        assert!(frame.of_metric(m.ost_latency).all(|s| s.value > 0.0));
    }

    #[test]
    fn env_collector_reports_room() {
        let (engine, m) = setup();
        let frame = collect_one(&mut EnvCollector::new(m), &engine);
        assert_eq!(frame.len(), 4);
        let temp = frame.of_metric(m.env_temp).next().unwrap().value;
        assert!((15.0..30.0).contains(&temp));
    }

    #[test]
    fn queue_collector_reports_scheduler() {
        let (engine, m) = setup();
        let frame = collect_one(&mut QueueCollector::new(m), &engine);
        assert_eq!(frame.of_metric(m.running_jobs).next().unwrap().value, 1.0);
        assert_eq!(frame.of_metric(m.free_nodes).next().unwrap().value, 96.0);
    }

    #[test]
    fn gpu_collector_counts_healthy() {
        let (engine, m) = setup();
        let frame = collect_one(&mut GpuHealthCollector::new(m), &engine);
        // SimConfig::small has 1 GPU per node, all healthy initially.
        assert_eq!(frame.of_metric(m.gpu_healthy).count(), 128);
        assert!(frame.of_metric(m.gpu_healthy).all(|s| s.value == 1.0));
    }

    #[test]
    fn standard_set_has_unique_names() {
        let (_, m) = setup();
        let set = standard_collectors(m);
        let names: std::collections::HashSet<&str> = set.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), set.len());
    }

    #[test]
    fn frame_timestamps_are_synchronized() {
        let (engine, m) = setup();
        let mut frame = ColumnFrame::new(engine.now());
        for c in &mut standard_collectors(m) {
            c.collect(&engine, &mut frame);
        }
        assert!(frame.iter().all(|s| s.ts == engine.now()));
        assert!(frame.len() > 500, "full sweep is rich: {}", frame.len());
    }

    #[test]
    fn mutability_classes_are_declared() {
        let (_, m) = setup();
        let set = standard_collectors(m);
        let classes: Vec<Mutability> = set.iter().map(|c| c.mutability()).collect();
        assert!(classes.contains(&Mutability::Static));
        assert!(classes.contains(&Mutability::Sparse));
        assert!(classes.contains(&Mutability::PerTick));
    }
}
