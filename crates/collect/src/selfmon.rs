//! The monitor watching itself: [`SelfCollector`].
//!
//! Table I requires that the monitoring system's own health be observable —
//! a dead collector must not impersonate a healthy machine.  The pipeline
//! feeds a [`Telemetry`] registry (stage latencies, per-collector sample
//! counts, detector evaluation costs) and the broker/store expose their own
//! operation counters; this collector republishes all of it as ordinary
//! `hpcmon.self.*` metrics into the frame each tick.  From there the normal
//! machinery takes over: the deadman detector covers the self feed, the
//! store keeps its history, threshold detectors can watch drop counters,
//! and drill-down views render it like any other subsystem.
//!
//! Counters are emitted as **per-tick deltas** (events this tick); gauges
//! and queue depths as current levels; histograms as p95 milliseconds (the
//! full quantile set stays in [`Telemetry::report`]).
//!
//! The self feed must be nearly free: every instrument source here is
//! append-only (the telemetry registry and the broker's topic table never
//! remove or reorder entries), so resolved `MetricId`s and previous totals
//! are cached *positionally* — the steady-state path performs no name
//! formatting, no hashing, and no registry locking.

use crate::collectors::Collector;
use hpcmon_metrics::{ColumnFrame, CompId, MetricId, MetricRegistry, Unit};
use hpcmon_sim::SimEngine;
use hpcmon_store::TimeSeriesStore;
use hpcmon_telemetry::Telemetry;
use hpcmon_transport::Broker;
use std::sync::Arc;

/// A cached counter series: resolved metric id plus the last observed
/// lifetime total, for emitting per-tick deltas.
type DeltaSlot = (MetricId, u64);

/// Republishes the pipeline's self-instrumentation as `hpcmon.self.*`
/// metrics.  Installed last in the collector chain so it sees the
/// instruments every earlier stage registered.
pub struct SelfCollector {
    telemetry: Arc<Telemetry>,
    broker: Arc<Broker>,
    store: Arc<TimeSeriesStore>,
    registry: MetricRegistry,
    // Positional caches over the (append-only) telemetry registry.
    tel_counters: Vec<DeltaSlot>,
    tel_gauges: Vec<MetricId>,
    tel_hists: Vec<MetricId>,
    // Fixed-name broker/store series, registered up front.
    transport: [DeltaSlot; 5],
    store_ops: [DeltaSlot; 5],
    store_stats: [MetricId; 4],
    // Identity/liveness series, registered up front.
    uptime_id: MetricId,
    build_info_id: MetricId,
    build_info_value: f64,
    // Positional cache over the broker's (append-only) topic table.
    // Five series per topic: published plus the full drop-reason split
    // (aggregate, queue-full, drop-oldest, pruned-receiver) — operators
    // need to know not just *which* data path is lossy but *why*.
    topic_slots: Vec<[DeltaSlot; 5]>,
    // Subscriber sets can shrink, so queues are matched by pattern.
    queue_slots: Vec<(String, MetricId)>,
}

/// Replace topic/pattern characters that are not metric-name friendly.
fn sanitize(part: &str) -> String {
    part.chars()
        .map(|c| match c {
            '/' => '.',
            '#' | '+' | '*' => '_',
            ' ' => '_',
            c => c,
        })
        .collect()
}

/// Emit per-tick deltas for a fixed bank of counter series.
fn push_deltas<const N: usize>(
    frame: &mut ColumnFrame,
    slots: &mut [DeltaSlot; N],
    totals: [u64; N],
) {
    for (slot, total) in slots.iter_mut().zip(totals) {
        let d = total.saturating_sub(slot.1);
        slot.1 = total;
        frame.push(slot.0, CompId::SYSTEM, d as f64);
    }
}

impl SelfCollector {
    /// Wire the collector to the pipeline's instrumentation sources.
    pub fn new(
        telemetry: Arc<Telemetry>,
        broker: Arc<Broker>,
        store: Arc<TimeSeriesStore>,
        registry: MetricRegistry,
    ) -> SelfCollector {
        let flow = "broker flow (per-tick)";
        let transport = [
            ("hpcmon.self.transport.published", Unit::Count),
            ("hpcmon.self.transport.delivered", Unit::Count),
            ("hpcmon.self.transport.dropped", Unit::Count),
            ("hpcmon.self.transport.bytes_published", Unit::Bytes),
            // Appended after the original four: slot order is the
            // registration order the positional caches depend on.
            ("hpcmon.self.transport.decode_errors", Unit::Count),
        ]
        .map(|(name, unit)| (registry.register(name, unit, flow), 0));
        let store_ops = [
            "hpcmon.self.store.samples_ingested",
            "hpcmon.self.store.blocks_sealed",
            "hpcmon.self.store.blocks_evicted",
            "hpcmon.self.store.blocks_reloaded",
            "hpcmon.self.store.corrupt_blocks",
        ]
        .map(|name| (registry.register(name, Unit::Count, "store operations (per-tick)"), 0));
        let store_stats = [
            ("hpcmon.self.store.series", Unit::Count, "distinct series held"),
            ("hpcmon.self.store.hot_points", Unit::Count, "points in hot buffers"),
            ("hpcmon.self.store.warm_points", Unit::Count, "points in warm blocks"),
            ("hpcmon.self.store.warm_bytes", Unit::Bytes, "bytes in warm blocks"),
        ]
        .map(|(name, unit, desc)| registry.register(name, unit, desc));
        let uptime_id = registry.register(
            "hpcmon.self.uptime_ticks",
            Unit::Count,
            "ticks since the monitoring system started",
        );
        // Prometheus-style build_info: the version rides in the value
        // (major*10000 + minor*100 + patch) and, human-readably, in the
        // registered description.
        let version = env!("CARGO_PKG_VERSION");
        let mut parts = version.split('.').map(|p| p.parse::<u64>().unwrap_or(0));
        let (major, minor, patch) =
            (parts.next().unwrap_or(0), parts.next().unwrap_or(0), parts.next().unwrap_or(0));
        let build_info_id = registry.register(
            "hpcmon.self.build_info",
            Unit::Count,
            &format!("build identity: hpcmon v{version}"),
        );
        SelfCollector {
            telemetry,
            broker,
            store,
            registry,
            tel_counters: Vec::new(),
            tel_gauges: Vec::new(),
            tel_hists: Vec::new(),
            transport,
            store_ops,
            store_stats,
            uptime_id,
            build_info_id,
            build_info_value: (major * 10_000 + minor * 100 + patch) as f64,
            topic_slots: Vec::new(),
            queue_slots: Vec::new(),
        }
    }
}

impl Collector for SelfCollector {
    fn name(&self) -> &str {
        "self"
    }

    fn collect(&mut self, engine: &SimEngine, frame: &mut ColumnFrame) {
        // 0. Identity and liveness: a monotone uptime (so a restart is
        //    visible as a reset, per the paper's "monitor the monitor")
        //    and a constant build stamp dashboards can join against.
        frame.push(self.uptime_id, CompId::SYSTEM, engine.tick_count() as f64);
        frame.push(self.build_info_id, CompId::SYSTEM, self.build_info_value);

        // 1. The telemetry registry: pipeline stages, per-collector and
        //    per-detector instruments fed by the core loop.  Visit order is
        //    registration order and the registry only appends, so slot `i`
        //    stays the same instrument for the life of the run.
        let telemetry = self.telemetry.clone();
        let mut i = 0;
        telemetry.visit_counters(|name, total| {
            if i == self.tel_counters.len() {
                let id = self.registry.register(
                    &format!("hpcmon.self.{name}"),
                    Unit::Count,
                    "self-telemetry counter (per-tick)",
                );
                self.tel_counters.push((id, 0));
            }
            let slot = &mut self.tel_counters[i];
            let d = total.saturating_sub(slot.1);
            slot.1 = total;
            frame.push(slot.0, CompId::SYSTEM, d as f64);
            i += 1;
        });
        let mut i = 0;
        telemetry.visit_gauges(|name, value| {
            if i == self.tel_gauges.len() {
                let unit = if name.ends_with("_ms") { Unit::Millis } else { Unit::Count };
                self.tel_gauges.push(self.registry.register(
                    &format!("hpcmon.self.{name}"),
                    unit,
                    "self-telemetry gauge (current level)",
                ));
            }
            frame.push(self.tel_gauges[i], CompId::SYSTEM, value);
            i += 1;
        });
        let mut i = 0;
        telemetry.visit_histograms(|name, h| {
            if i == self.tel_hists.len() {
                self.tel_hists.push(self.registry.register(
                    &format!("hpcmon.self.{name}.p95_ms"),
                    Unit::Millis,
                    "self-telemetry latency, 95th percentile",
                ));
            }
            frame.push(self.tel_hists[i], CompId::SYSTEM, h.quantile_ns(0.95) as f64 / 1e6);
            i += 1;
        });

        // 2. Transport: global and per-topic flow counters plus live
        //    subscriber queue depths.
        let b = self.broker.stats();
        push_deltas(
            frame,
            &mut self.transport,
            [b.published, b.delivered, b.dropped, b.bytes_published, b.decode_errors],
        );
        let topics = self.broker.topic_stats();
        for (k, t) in topics.iter().enumerate() {
            if k == self.topic_slots.len() {
                let base = sanitize(&t.topic);
                let fields =
                    ["published", "dropped", "queue_full", "drop_oldest", "pruned_receiver"];
                self.topic_slots.push(fields.map(|field| {
                    let name = format!("hpcmon.self.transport.topic.{base}.{field}");
                    (
                        self.registry.register(
                            &name,
                            Unit::Count,
                            "per-topic broker flow (per-tick)",
                        ),
                        0,
                    )
                }));
            }
            push_deltas(
                frame,
                &mut self.topic_slots[k],
                [t.published, t.dropped, t.queue_full, t.drop_oldest, t.pruned_receiver],
            );
        }
        for (pattern, depth) in self.broker.queue_depths() {
            let id = if let Some(pos) = self.queue_slots.iter().position(|(p, _)| *p == pattern) {
                self.queue_slots[pos].1
            } else {
                let id = self.registry.register(
                    &format!("hpcmon.self.transport.queue.{}", sanitize(&pattern)),
                    Unit::Count,
                    "subscriber queue depth",
                );
                self.queue_slots.push((pattern, id));
                id
            };
            frame.push(id, CompId::SYSTEM, depth as f64);
        }

        // 3. Store: operation counters (deltas) and occupancy (levels).
        let ops = self.store.op_counts();
        push_deltas(
            frame,
            &mut self.store_ops,
            [
                ops.samples_ingested,
                ops.blocks_sealed,
                ops.blocks_evicted,
                ops.blocks_reloaded,
                self.store.corrupt_blocks(),
            ],
        );
        let st = self.store.occupancy();
        let levels =
            [st.series as f64, st.hot_points as f64, st.warm_points as f64, st.warm_bytes as f64];
        for (id, v) in self.store_stats.iter().zip(levels) {
            frame.push(*id, CompId::SYSTEM, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::Frame;
    use hpcmon_sim::SimConfig;
    use hpcmon_transport::{Payload, TopicFilter};

    fn engine() -> SimEngine {
        SimEngine::new(SimConfig::small())
    }

    #[test]
    fn emits_deltas_for_counters_and_levels_for_gauges() {
        let telemetry = Arc::new(Telemetry::new());
        let broker = Broker::new();
        let store = Arc::new(TimeSeriesStore::new());
        let registry = MetricRegistry::new();
        let mut sc =
            SelfCollector::new(telemetry.clone(), broker.clone(), store.clone(), registry.clone());
        let engine = engine();

        telemetry.counter("collect.samples.node").add(10);
        telemetry.gauge("queue.depth").set(3.0);
        let mut f1 = ColumnFrame::new(hpcmon_metrics::Ts::ZERO);
        sc.collect(&engine, &mut f1);
        let counter_id = registry.lookup("hpcmon.self.collect.samples.node").unwrap();
        let gauge_id = registry.lookup("hpcmon.self.queue.depth").unwrap();
        let val = |f: &ColumnFrame, id| f.iter().find(|s| s.key.metric == id).unwrap().value;
        assert_eq!(val(&f1, counter_id), 10.0, "first tick delta is the total");
        assert_eq!(val(&f1, gauge_id), 3.0);

        // Next tick: counter advanced by 4, gauge holds its level.
        telemetry.counter("collect.samples.node").add(4);
        let mut f2 = ColumnFrame::new(hpcmon_metrics::Ts::ZERO);
        sc.collect(&engine, &mut f2);
        assert_eq!(val(&f2, counter_id), 4.0, "delta, not total");
        assert_eq!(val(&f2, gauge_id), 3.0);
    }

    #[test]
    fn late_registered_instruments_join_the_feed() {
        // The positional cache must keep identities straight when new
        // instruments appear after the first collect.
        let telemetry = Arc::new(Telemetry::new());
        let broker = Broker::new();
        let store = Arc::new(TimeSeriesStore::new());
        let registry = MetricRegistry::new();
        let mut sc =
            SelfCollector::new(telemetry.clone(), broker.clone(), store.clone(), registry.clone());
        telemetry.counter("a").add(1);
        let mut f1 = ColumnFrame::new(hpcmon_metrics::Ts::ZERO);
        sc.collect(&engine(), &mut f1);
        // A second counter registers between ticks.
        telemetry.counter("a").add(2);
        telemetry.counter("b").add(7);
        let mut f2 = ColumnFrame::new(hpcmon_metrics::Ts::ZERO);
        sc.collect(&engine(), &mut f2);
        let val = |f: &ColumnFrame, name: &str| {
            let id = registry.lookup(name).unwrap_or_else(|| panic!("missing {name}"));
            f.iter().find(|s| s.key.metric == id).unwrap().value
        };
        assert_eq!(val(&f2, "hpcmon.self.a"), 2.0, "existing slot still a delta");
        assert_eq!(val(&f2, "hpcmon.self.b"), 7.0, "new instrument picked up");
    }

    #[test]
    fn uptime_and_build_info_are_emitted() {
        let telemetry = Arc::new(Telemetry::new());
        let broker = Broker::new();
        let store = Arc::new(TimeSeriesStore::new());
        let registry = MetricRegistry::new();
        let mut sc = SelfCollector::new(telemetry, broker, store, registry.clone());
        let mut engine = engine();
        engine.step();
        engine.step();
        let mut frame = ColumnFrame::new(hpcmon_metrics::Ts::ZERO);
        sc.collect(&engine, &mut frame);
        let val = |name: &str| {
            let id = registry.lookup(name).unwrap_or_else(|| panic!("missing {name}"));
            frame.iter().find(|s| s.key.metric == id).unwrap().value
        };
        assert_eq!(val("hpcmon.self.uptime_ticks"), 2.0);
        // 0.1.0 → 0*10000 + 1*100 + 0.
        assert_eq!(val("hpcmon.self.build_info"), 100.0);
    }

    #[test]
    fn broker_and_store_activity_become_self_metrics() {
        let telemetry = Arc::new(Telemetry::new());
        let broker = Broker::new();
        let store = Arc::new(TimeSeriesStore::new());
        let registry = MetricRegistry::new();
        let mut sc = SelfCollector::new(telemetry, broker.clone(), store.clone(), registry.clone());
        let _sub =
            broker.subscribe(TopicFilter::all(), 16, hpcmon_transport::BackpressurePolicy::Block);
        broker.publish(
            "metrics/frame",
            Payload::Frame(Arc::new(Frame::new(hpcmon_metrics::Ts::ZERO))),
        );
        let m = registry.register("m", Unit::Count, "");
        store.insert(&hpcmon_metrics::Sample::new(
            m,
            CompId::node(0),
            hpcmon_metrics::Ts::ZERO,
            1.0,
        ));
        let mut frame = ColumnFrame::new(hpcmon_metrics::Ts::ZERO);
        sc.collect(&engine(), &mut frame);
        let val = |name: &str| {
            let id = registry.lookup(name).unwrap_or_else(|| panic!("missing {name}"));
            frame.iter().find(|s| s.key.metric == id).unwrap().value
        };
        assert_eq!(val("hpcmon.self.transport.published"), 1.0);
        assert_eq!(val("hpcmon.self.transport.decode_errors"), 0.0);
        assert_eq!(val("hpcmon.self.transport.topic.metrics.frame.published"), 1.0);
        assert_eq!(val("hpcmon.self.transport.queue._"), 1.0, "one message queued");
        assert_eq!(val("hpcmon.self.store.samples_ingested"), 1.0);
        assert_eq!(val("hpcmon.self.store.corrupt_blocks"), 0.0);
        assert_eq!(val("hpcmon.self.store.series"), 1.0);
    }

    #[test]
    fn per_topic_drop_reasons_become_self_metrics() {
        let telemetry = Arc::new(Telemetry::new());
        let broker = Broker::new();
        let store = Arc::new(TimeSeriesStore::new());
        let registry = MetricRegistry::new();
        let mut sc = SelfCollector::new(telemetry, broker.clone(), store, registry.clone());
        // A 1-deep DropNewest subscriber: the 2nd..4th publishes drop.
        let _sub = broker.subscribe(
            TopicFilter::new("metrics/#"),
            1,
            hpcmon_transport::BackpressurePolicy::DropNewest,
        );
        for _ in 0..4 {
            broker.publish(
                "metrics/frame",
                Payload::Frame(Arc::new(Frame::new(hpcmon_metrics::Ts::ZERO))),
            );
        }
        let mut frame = ColumnFrame::new(hpcmon_metrics::Ts::ZERO);
        sc.collect(&engine(), &mut frame);
        let val = |name: &str| {
            let id = registry.lookup(name).unwrap_or_else(|| panic!("missing {name}"));
            frame.iter().find(|s| s.key.metric == id).unwrap().value
        };
        let base = "hpcmon.self.transport.topic.metrics.frame";
        assert_eq!(val(&format!("{base}.published")), 4.0);
        assert_eq!(val(&format!("{base}.dropped")), 3.0);
        assert_eq!(val(&format!("{base}.queue_full")), 3.0, "reason split: queue-full");
        assert_eq!(val(&format!("{base}.drop_oldest")), 0.0);
        assert_eq!(val(&format!("{base}.pruned_receiver")), 0.0);
    }
}
