//! The canonical metric vocabulary.
//!
//! Every metric the collectors emit is registered here with a unit and a
//! description — the paper's requirement that "the meaning of all raw data
//! should be provided" is satisfied by construction: a metric cannot exist
//! in this system without documentation.

use hpcmon_metrics::{MetricId, MetricRegistry, Unit};

/// Ids of every standard metric, resolved against one registry.
#[derive(Debug, Clone, Copy)]
pub struct StdMetrics {
    // node
    /// CPU utilization of a node, `[0, 1]`.
    pub node_cpu: MetricId,
    /// Bytes of memory in use on a node.
    pub node_mem_used: MetricId,
    /// Bytes of memory free on a node.
    pub node_free_mem: MetricId,
    /// 1.0 when the node passes its health check, else 0.0.
    pub node_health: MetricId,
    // power
    /// Instantaneous node power draw.
    pub node_power: MetricId,
    /// Summed power of a cabinet.
    pub cabinet_power: MetricId,
    /// Total system power.
    pub system_power: MetricId,
    // network
    /// Bytes moved over a link in the last interval.
    pub link_traffic: MetricId,
    /// Stalled (excess-demand) bytes on a link in the last interval.
    pub link_stalls: MetricId,
    /// Bit errors observed on a link in the last interval.
    pub link_errors: MetricId,
    /// Link utilization, `[0, 1]`.
    pub link_util: MetricId,
    /// Node injection bandwidth as percent of link capacity (Figure 1).
    pub node_injection_pct: MetricId,
    // filesystem
    /// Bytes/s read from an OST.
    pub ost_read_bps: MetricId,
    /// Bytes/s written to an OST.
    pub ost_write_bps: MetricId,
    /// OST I/O latency.
    pub ost_latency: MetricId,
    /// MDS metadata-op latency.
    pub mds_latency: MetricId,
    /// Aggregate filesystem read bytes/s (Figure 4 top panel).
    pub fs_agg_read_bps: MetricId,
    /// Aggregate filesystem write bytes/s.
    pub fs_agg_write_bps: MetricId,
    /// Per-node filesystem read bytes/s attribution (Figure 4 drill-down).
    pub node_fs_read_bps: MetricId,
    // environment
    /// Machine-room temperature.
    pub env_temp: MetricId,
    /// Relative humidity.
    pub env_humidity: MetricId,
    /// SO₂ concentration.
    pub env_so2: MetricId,
    /// Particulate count.
    pub env_particulates: MetricId,
    // scheduler
    /// Jobs waiting in the batch queue.
    pub queue_depth: MetricId,
    /// Jobs currently running.
    pub running_jobs: MetricId,
    /// Free in-service nodes.
    pub free_nodes: MetricId,
    /// Nodes administratively out of service.
    pub nodes_out_of_service: MetricId,
    // GPU
    /// Healthy GPUs on a node.
    pub gpu_healthy: MetricId,
    // burst buffer
    /// Bytes buffered on a burst-buffer node awaiting drain.
    pub bb_occupancy: MetricId,
    /// Bytes/s a burst-buffer node absorbed last interval.
    pub bb_absorb_bps: MetricId,
    /// Bytes/s a burst-buffer node drained to the PFS last interval.
    pub bb_drain_bps: MetricId,
    /// 1.0 when the buffer node passes its configuration check.
    pub bb_configured: MetricId,
    // probes
    /// Probed OST I/O latency (client-side view).
    pub probe_ost_latency: MetricId,
    /// Probed MDS metadata latency (client-side view).
    pub probe_mds_latency: MetricId,
    /// Probed network round-trip inflation between a probe pair.
    pub probe_net_inflation: MetricId,
    // benchmark suite
    /// Compute benchmark time-to-solution.
    pub bench_compute: MetricId,
    /// Memory benchmark time-to-solution.
    pub bench_memory: MetricId,
    /// I/O benchmark time-to-solution.
    pub bench_io: MetricId,
    /// Network benchmark time-to-solution.
    pub bench_network: MetricId,
    /// Metadata benchmark time-to-solution.
    pub bench_metadata: MetricId,
    /// Fraction of health checks passing, `[0, 1]`.
    pub bench_pass_rate: MetricId,
    // analysis results (Table I: "analysis results should be able to be
    // stored with raw data")
    /// Signals emitted by the analysis pipeline this tick.
    pub analysis_signals: MetricId,
    /// Response actions taken this tick.
    pub analysis_actions: MetricId,
}

impl StdMetrics {
    /// Register (or resolve) all standard metrics in `reg`.
    pub fn register(reg: &MetricRegistry) -> StdMetrics {
        StdMetrics {
            node_cpu: reg.register(
                "node.cpu_util",
                Unit::Ratio,
                "Fraction of CPU cycles used on the node over the last interval",
            ),
            node_mem_used: reg.register(
                "node.mem_used",
                Unit::Bytes,
                "Bytes of physical memory in use (OS + job + leaks)",
            ),
            node_free_mem: reg.register(
                "node.free_mem",
                Unit::Bytes,
                "Bytes of physical memory free; LANL checks this against a floor",
            ),
            node_health: reg.register(
                "node.health_ok",
                Unit::Ratio,
                "1 when the node passes the full health check, else 0",
            ),
            node_power: reg.register(
                "power.node_w",
                Unit::Watts,
                "Instantaneous node power draw, CPU + GPUs",
            ),
            cabinet_power: reg.register(
                "power.cabinet_w",
                Unit::Watts,
                "Sum of node power over a cabinet (Figure 3 bottom panel)",
            ),
            system_power: reg.register(
                "power.system_w",
                Unit::Watts,
                "Total machine power (Figure 3 top panel)",
            ),
            link_traffic: reg.register(
                "hsn.link.traffic_bytes",
                Unit::Bytes,
                "Bytes moved over the link during the last interval",
            ),
            link_stalls: reg.register(
                "hsn.link.stall_bytes",
                Unit::Bytes,
                "Excess offered bytes the link could not carry (credit-stall analogue)",
            ),
            link_errors: reg.register(
                "hsn.link.errors",
                Unit::Count,
                "CRC/bit errors observed on the link during the last interval",
            ),
            link_util: reg.register(
                "hsn.link.utilization",
                Unit::Ratio,
                "Link bytes carried / link capacity for the interval",
            ),
            node_injection_pct: reg.register(
                "hsn.node.injection_pct",
                Unit::Percent,
                "Node injection bandwidth as percent of one link's capacity (Figure 1 metric)",
            ),
            ost_read_bps: reg.register(
                "fs.ost.read_bps",
                Unit::BytesPerSec,
                "Read bytes/second served by the OST",
            ),
            ost_write_bps: reg.register(
                "fs.ost.write_bps",
                Unit::BytesPerSec,
                "Write bytes/second absorbed by the OST",
            ),
            ost_latency: reg.register(
                "fs.ost.latency_ms",
                Unit::Millis,
                "Server-side OST I/O latency (load- and degradation-dependent)",
            ),
            mds_latency: reg.register(
                "fs.mds.latency_ms",
                Unit::Millis,
                "Server-side metadata-operation latency",
            ),
            fs_agg_read_bps: reg.register(
                "fs.agg.read_bps",
                Unit::BytesPerSec,
                "Filesystem-wide read rate (Figure 4 aggregate view)",
            ),
            fs_agg_write_bps: reg.register(
                "fs.agg.write_bps",
                Unit::BytesPerSec,
                "Filesystem-wide write rate",
            ),
            node_fs_read_bps: reg.register(
                "fs.node.read_bps",
                Unit::BytesPerSec,
                "Per-node share of filesystem reads (drill-down attribution)",
            ),
            env_temp: reg.register(
                "env.temp_c",
                Unit::Celsius,
                "Machine-room dry-bulb temperature",
            ),
            env_humidity: reg.register(
                "env.humidity_pct",
                Unit::Percent,
                "Machine-room relative humidity",
            ),
            env_so2: reg.register(
                "env.so2_ppb",
                Unit::Ppb,
                "SO2 concentration; ASHRAE G1 boundary is 10 ppb (ORNL corrosion watch)",
            ),
            env_particulates: reg.register(
                "env.particulates",
                Unit::Count,
                "Particulate count, ISO-class-like units",
            ),
            queue_depth: reg.register(
                "sched.queue_depth",
                Unit::Count,
                "Jobs waiting in the batch queue (CSC/NERSC backlog signal)",
            ),
            running_jobs: reg.register(
                "sched.running_jobs",
                Unit::Count,
                "Jobs currently executing",
            ),
            free_nodes: reg.register("sched.free_nodes", Unit::Count, "Schedulable idle nodes"),
            nodes_out_of_service: reg.register(
                "sched.nodes_oos",
                Unit::Count,
                "Nodes sidelined by health checks or failures",
            ),
            gpu_healthy: reg.register(
                "gpu.healthy_count",
                Unit::Count,
                "GPUs on the node passing their health test",
            ),
            bb_occupancy: reg.register(
                "bb.occupancy_bytes",
                Unit::Bytes,
                "Bytes buffered on the burst-buffer node awaiting drain to the PFS",
            ),
            bb_absorb_bps: reg.register(
                "bb.absorb_bps",
                Unit::BytesPerSec,
                "Write bytes/second the buffer node absorbed last interval",
            ),
            bb_drain_bps: reg.register(
                "bb.drain_bps",
                Unit::BytesPerSec,
                "Bytes/second drained from the buffer node to the PFS last interval",
            ),
            bb_configured: reg.register(
                "bb.configured",
                Unit::Ratio,
                "1 when the buffer node passes the LANL-style configuration check",
            ),
            probe_ost_latency: reg.register(
                "probe.ost.latency_ms",
                Unit::Millis,
                "Client-observed OST I/O latency from the distributed probe set",
            ),
            probe_mds_latency: reg.register(
                "probe.mds.latency_ms",
                Unit::Millis,
                "Client-observed metadata latency from the distributed probe set",
            ),
            probe_net_inflation: reg.register(
                "probe.net.inflation",
                Unit::Ratio,
                "Probe-pair transfer-time inflation vs an idle network (1.0 = idle)",
            ),
            bench_compute: reg.register(
                "bench.compute_s",
                Unit::Seconds,
                "Compute micro-benchmark time-to-solution",
            ),
            bench_memory: reg.register(
                "bench.memory_s",
                Unit::Seconds,
                "Memory-bandwidth micro-benchmark time-to-solution",
            ),
            bench_io: reg.register(
                "bench.io_s",
                Unit::Seconds,
                "File-I/O micro-benchmark time-to-solution",
            ),
            bench_network: reg.register(
                "bench.network_s",
                Unit::Seconds,
                "Network micro-benchmark time-to-solution",
            ),
            bench_metadata: reg.register(
                "bench.metadata_s",
                Unit::Seconds,
                "Metadata micro-benchmark time-to-solution",
            ),
            bench_pass_rate: reg.register(
                "bench.pass_rate",
                Unit::Ratio,
                "Fraction of functional health checks passing this round",
            ),
            analysis_signals: reg.register(
                "analysis.signals",
                Unit::Count,
                "Signals emitted by the analysis pipeline during the tick",
            ),
            analysis_actions: reg.register(
                "analysis.actions",
                Unit::Count,
                "Response actions executed during the tick",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_metrics_registered_with_descriptions() {
        let reg = MetricRegistry::new();
        let _m = StdMetrics::register(&reg);
        assert!(reg.len() >= 30);
        for meta in reg.all() {
            assert!(!meta.description.is_empty(), "{} lacks a description", meta.name);
            assert!(meta.name.contains('.'), "{} is not namespaced", meta.name);
        }
    }

    #[test]
    fn registration_is_idempotent() {
        let reg = MetricRegistry::new();
        let a = StdMetrics::register(&reg);
        let n = reg.len();
        let b = StdMetrics::register(&reg);
        assert_eq!(reg.len(), n);
        assert_eq!(a.node_cpu, b.node_cpu);
        assert_eq!(a.bench_pass_rate, b.bench_pass_rate);
    }

    #[test]
    fn names_are_unique() {
        let reg = MetricRegistry::new();
        StdMetrics::register(&reg);
        let names: std::collections::HashSet<String> =
            reg.all().into_iter().map(|m| m.name).collect();
        assert_eq!(names.len(), reg.len());
    }
}
