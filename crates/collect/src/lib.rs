#![warn(missing_docs)]

//! `hpcmon-collect` — the data sources.
//!
//! Table I (Data Sources): *"Potential data sources include traditional
//! text (e.g., logs), numeric (e.g., counters) sources, as well as test
//! results and application performance information.  Vendors should expose
//! all possible data sources for all possible subsystems."*
//!
//! Three kinds of source, mirroring §III-A of the paper:
//!
//! * **Passive counters** ([`collectors`]) — every subsystem's state
//!   sampled at synchronized ticks: node CPU/memory, per-link HSN
//!   counters, per-OST filesystem rates, node/cabinet power, environment,
//!   queue depth, GPU health.
//! * **Active probes** ([`probes`]) — NCSA-style filesystem latency probes
//!   and network probe pairs that measure what an *application* would
//!   experience.
//! * **Benchmark suites** ([`bench_suite`]) — LANL/NERSC-style periodic
//!   checks: service/mount/memory assertions and compute/network/IO
//!   micro-benchmarks with time-to-solution outputs.
//!
//! Plus the [`harvester`], which normalizes the machine's messy log stream
//! (ALCF's "20 per-day log files, formats vary" problem) into
//! [`hpcmon_metrics::LogRecord`]s.

pub mod bench_suite;
pub mod collectors;
pub mod harvester;
pub mod probes;
pub mod registry;
pub mod selfmon;

pub use bench_suite::{BenchResult, BenchmarkSuite};
pub use collectors::{
    BbCollector, Collector, EnvCollector, FsCollector, GpuHealthCollector, NetworkCollector,
    NodeCollector, PowerCollector, QueueCollector,
};
pub use harvester::{LogHarvester, VendorFormat};
pub use probes::{FsProbe, NetworkProbe};
pub use registry::StdMetrics;
pub use selfmon::SelfCollector;
