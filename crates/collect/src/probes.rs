//! Active probes: measure what an application would experience.
//!
//! NCSA (paper §II-2) runs minute-cadence probes that "measure file I/O
//! and metadata action response latencies ... from a distributed set of
//! clients to exercise these operations over representative data paths".
//! The probes here do the same against the simulator: the filesystem probe
//! reads each OST's current client-visible latency (plus measurement
//! noise), and the network probe measures transfer-time inflation between
//! fixed node pairs.

use crate::collectors::Collector;
use crate::registry::StdMetrics;
use hpcmon_metrics::{ColumnFrame, CompId};
use hpcmon_sim::{Rng, SimEngine};

/// Distributed filesystem latency probe.
pub struct FsProbe {
    metrics: StdMetrics,
    rng: Rng,
    /// Multiplicative measurement noise (std dev fraction).
    noise: f64,
}

impl FsProbe {
    /// A probe with 2% measurement noise.
    pub fn new(metrics: StdMetrics, seed: u64) -> FsProbe {
        FsProbe { metrics, rng: Rng::new(seed), noise: 0.02 }
    }
}

impl Collector for FsProbe {
    fn name(&self) -> &str {
        "fs_probe"
    }

    fn rng_state(&self) -> Option<u64> {
        Some(self.rng.state())
    }

    fn set_rng_state(&mut self, state: u64) {
        self.rng = Rng::from_state(state);
    }

    fn collect(&mut self, engine: &SimEngine, frame: &mut ColumnFrame) {
        let fs = engine.filesystem();
        for o in 0..fs.num_osts() {
            let true_latency = fs.ost_latency_ms(o);
            let measured = true_latency * (1.0 + self.rng.normal_with(0.0, self.noise));
            frame.push(self.metrics.probe_ost_latency, CompId::ost(o), measured.max(0.0));
        }
        let mds = fs.mds_latency_ms() * (1.0 + self.rng.normal_with(0.0, self.noise));
        frame.push(self.metrics.probe_mds_latency, CompId::mds(0), mds.max(0.0));
    }
}

/// Network probe pairs: fixed (src, dst) node pairs spread across the
/// machine; each reports transfer-time inflation relative to an idle
/// network (1.0 = idle, 2.0 = the probe's path is half-starved).
pub struct NetworkProbe {
    metrics: StdMetrics,
    pairs: Vec<(u32, u32)>,
}

impl NetworkProbe {
    /// Build `n_pairs` probe pairs spread deterministically across the
    /// machine's node range.
    pub fn spread(metrics: StdMetrics, num_nodes: u32, n_pairs: u32) -> NetworkProbe {
        assert!(num_nodes >= 2, "need at least two nodes to probe");
        let n_pairs = n_pairs.max(1);
        let pairs = (0..n_pairs)
            .map(|i| {
                let src = (i * num_nodes / n_pairs) % num_nodes;
                let dst = (src + num_nodes / 2) % num_nodes;
                (src, if dst == src { (src + 1) % num_nodes } else { dst })
            })
            .collect();
        NetworkProbe { metrics, pairs }
    }

    /// The probe pairs in use.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }
}

impl Collector for NetworkProbe {
    fn name(&self) -> &str {
        "net_probe"
    }

    fn collect(&mut self, engine: &SimEngine, frame: &mut ColumnFrame) {
        for &(src, dst) in &self.pairs {
            let max_util = engine.probe_route_max_utilization(src, dst);
            // A probe transfer through a link at utilization u gets the
            // residual capacity: time inflates by 1/(1-u), capped for
            // fully-saturated paths.
            let inflation = if max_util >= 0.99 { 100.0 } else { 1.0 / (1.0 - max_util) };
            frame.push(self.metrics.probe_net_inflation, CompId::node(src), inflation);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::{Frame, MetricRegistry, Ts};
    use hpcmon_sim::{AppProfile, FaultKind, JobSpec, SimConfig, SimEngine};

    fn metrics() -> StdMetrics {
        StdMetrics::register(&MetricRegistry::new())
    }

    fn collect_one(c: &mut dyn Collector, engine: &SimEngine) -> Frame {
        let mut cf = ColumnFrame::new(engine.now());
        c.collect(engine, &mut cf);
        cf.to_frame()
    }

    #[test]
    fn fs_probe_tracks_degradation() {
        let m = metrics();
        let mut engine = SimEngine::new(SimConfig::small());
        let mut probe = FsProbe::new(m, 1);
        engine.step();
        let before = collect_one(&mut probe, &engine);
        let healthy = before.mean_of(m.probe_ost_latency).unwrap();
        engine.schedule_fault(Ts::from_mins(2), FaultKind::OstDegrade { ost: 3, factor: 10.0 });
        engine.step();
        engine.step();
        let after = collect_one(&mut probe, &engine);
        let degraded = after
            .of_metric(m.probe_ost_latency)
            .find(|s| s.key.comp == CompId::ost(3))
            .unwrap()
            .value;
        assert!(degraded > 5.0 * healthy, "healthy {healthy} degraded {degraded}");
    }

    #[test]
    fn fs_probe_has_bounded_noise() {
        let m = metrics();
        let mut engine = SimEngine::new(SimConfig::small());
        engine.step();
        let mut probe = FsProbe::new(m, 2);
        let mut values = Vec::new();
        for _ in 0..100 {
            let f = collect_one(&mut probe, &engine);
            values.push(f.of_metric(m.probe_ost_latency).next().unwrap().value);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let spread = values.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max);
        assert!(spread / mean < 0.15, "noise should be small: {}", spread / mean);
    }

    #[test]
    fn network_probe_reports_idle_as_one() {
        let m = metrics();
        let mut engine = SimEngine::new(SimConfig::small());
        engine.step();
        let mut probe = NetworkProbe::spread(m, engine.num_nodes(), 8);
        let frame = collect_one(&mut probe, &engine);
        assert_eq!(frame.of_metric(m.probe_net_inflation).count(), 8);
        assert!(frame.of_metric(m.probe_net_inflation).all(|s| (s.value - 1.0).abs() < 1e-9));
    }

    #[test]
    fn network_probe_detects_congestion() {
        let m = metrics();
        let mut engine = SimEngine::new(SimConfig::small());
        engine.submit_job(JobSpec::new(
            AppProfile::comm_heavy("fft"),
            "u",
            128,
            60 * 60_000,
            Ts::ZERO,
        ));
        engine.step();
        engine.step();
        let mut probe = NetworkProbe::spread(m, engine.num_nodes(), 16);
        let frame = collect_one(&mut probe, &engine);
        let max = frame.of_metric(m.probe_net_inflation).map(|s| s.value).fold(0.0, f64::max);
        assert!(max > 1.05, "machine-wide comm job inflates some probe: {max}");
    }

    #[test]
    fn probe_pairs_are_distinct_endpoints() {
        let m = metrics();
        let probe = NetworkProbe::spread(m, 10, 5);
        for &(a, b) in probe.pairs() {
            assert_ne!(a, b);
            assert!(a < 10 && b < 10);
        }
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn probe_needs_two_nodes() {
        NetworkProbe::spread(metrics(), 1, 2);
    }
}
