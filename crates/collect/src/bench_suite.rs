//! The periodic health benchmark suite.
//!
//! LANL runs "a suite of custom tests ... system-wide, on 10 minute
//! intervals" checking configurations, services, mounts, and free memory;
//! NERSC "regularly runs a suite of custom benchmarks that exercise
//! compute, network, and I/O functionality, and publishes performance over
//! time" (Figure 2).  [`BenchmarkSuite`] is both: functional pass/fail
//! checks plus micro-benchmarks whose time-to-solution is published as
//! ordinary metrics, so degradation onsets show up in the same store as
//! everything else.

use crate::registry::StdMetrics;
use hpcmon_metrics::{ColumnFrame, CompId, LogRecord, Severity};
use hpcmon_sim::{Rng, SimEngine};

/// Outcome of one check or benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Check name.
    pub name: String,
    /// Whether the check passed (benchmarks pass unless they time out).
    pub passed: bool,
    /// Time-to-solution in seconds, when the check is a benchmark.
    pub seconds: Option<f64>,
    /// Human-readable detail on failure.
    pub detail: String,
}

/// The suite: samples a deterministic subset of nodes each round.
pub struct BenchmarkSuite {
    metrics: StdMetrics,
    rng: Rng,
    /// How many nodes each functional check samples.
    sample_nodes: u32,
    /// Free-memory floor for the LANL-style check, bytes.
    free_mem_floor: f64,
}

impl BenchmarkSuite {
    /// Baseline seconds for each micro-benchmark on an idle machine.
    pub const COMPUTE_BASE_S: f64 = 30.0;
    /// Memory benchmark baseline.
    pub const MEMORY_BASE_S: f64 = 20.0;
    /// I/O benchmark baseline.
    pub const IO_BASE_S: f64 = 45.0;
    /// Network benchmark baseline.
    pub const NETWORK_BASE_S: f64 = 15.0;
    /// Metadata benchmark baseline.
    pub const METADATA_BASE_S: f64 = 10.0;

    /// Build a suite sampling `sample_nodes` nodes per round.
    pub fn new(metrics: StdMetrics, seed: u64, sample_nodes: u32) -> BenchmarkSuite {
        BenchmarkSuite {
            metrics,
            rng: Rng::new(seed),
            sample_nodes: sample_nodes.max(1),
            free_mem_floor: 4.0 * (1u64 << 30) as f64,
        }
    }

    /// Raw state of the node-sampling RNG, for replay checkpoints.
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Restore the node-sampling RNG (replay seek).
    pub fn set_rng_state(&mut self, state: u64) {
        self.rng = Rng::from_state(state);
    }

    /// Run every check against the current machine state.  Returns the
    /// results and appends time-to-solution samples plus a pass-rate sample
    /// to `frame`; failures also produce log records.
    pub fn run(
        &mut self,
        engine: &SimEngine,
        frame: &mut ColumnFrame,
        logs: &mut Vec<LogRecord>,
    ) -> Vec<BenchResult> {
        let mut results = Vec::new();
        let nodes = self.pick_nodes(engine);

        // ---- functional checks (LANL style) ----
        let mut svc_fail = Vec::new();
        let mut mount_fail = Vec::new();
        let mut mem_fail = Vec::new();
        for &n in &nodes {
            let node = engine.node(n);
            if !node.services_ok.iter().all(|&s| s) {
                svc_fail.push(n);
            }
            if !node.fs_mounted {
                mount_fail.push(n);
            }
            if node.free_mem_bytes() < self.free_mem_floor {
                mem_fail.push(n);
            }
        }
        results.push(Self::check("services_up", &svc_fail));
        results.push(Self::check("fs_mounted", &mount_fail));
        results.push(Self::check("free_memory", &mem_fail));
        // LANL's burst-buffer configuration check, on machines that have one.
        if let Some(bb) = engine.burst_buffer() {
            let bad: Vec<u32> = (0..bb.num_nodes()).filter(|&i| !bb.node(i).configured).collect();
            results.push(Self::check("bb_configured", &bad));
        }

        // ---- micro-benchmarks (NERSC style) ----
        // Compute: slowed by CPU contention on the sampled nodes.
        let mean_cpu =
            nodes.iter().map(|&n| engine.node(n).cpu_util).sum::<f64>() / nodes.len() as f64;
        let compute = self.jitter(Self::COMPUTE_BASE_S * (1.0 + 0.8 * mean_cpu));
        results.push(Self::bench("compute", compute));

        // Memory: slowed by memory pressure.
        let mean_mem =
            nodes.iter().map(|&n| engine.node(n).mem_util()).sum::<f64>() / nodes.len() as f64;
        let memory = self.jitter(Self::MEMORY_BASE_S * (1.0 + 0.5 * mean_mem));
        results.push(Self::bench("memory", memory));

        // I/O: proportional to current OST latency (worst OST dominates a
        // striped write, which is exactly why NCSA probes per-OST).
        let fs = engine.filesystem();
        let worst_ost = (0..fs.num_osts()).map(|o| fs.ost_latency_ms(o)).fold(0.0, f64::max);
        let io = self.jitter(Self::IO_BASE_S * (worst_ost / fs.config().ost_base_latency_ms));
        results.push(Self::bench("io", io));

        // Metadata: proportional to MDS latency.
        let metadata = self.jitter(
            Self::METADATA_BASE_S * (fs.mds_latency_ms() / fs.config().mds_base_latency_ms),
        );
        results.push(Self::bench("metadata", metadata));

        // Network: inflated by the most congested probe path among sampled
        // node pairs.
        let mut worst_inflation: f64 = 1.0;
        for pair in nodes.windows(2) {
            let u = engine.probe_route_max_utilization(pair[0], pair[1]);
            let inflation = if u >= 0.99 { 100.0 } else { 1.0 / (1.0 - u) };
            worst_inflation = worst_inflation.max(inflation);
        }
        let network = self.jitter(Self::NETWORK_BASE_S * worst_inflation);
        results.push(Self::bench("network", network));

        // ---- publish ----
        let m = &self.metrics;
        for r in &results {
            let metric = match r.name.as_str() {
                "compute" => Some(m.bench_compute),
                "memory" => Some(m.bench_memory),
                "io" => Some(m.bench_io),
                "metadata" => Some(m.bench_metadata),
                "network" => Some(m.bench_network),
                _ => None,
            };
            if let (Some(metric), Some(s)) = (metric, r.seconds) {
                frame.push(metric, CompId::SYSTEM, s);
            }
            if !r.passed {
                logs.push(
                    LogRecord::new(
                        frame.ts,
                        CompId::SYSTEM,
                        Severity::Warning,
                        "bench",
                        format!("health check '{}' failed: {}", r.name, r.detail),
                    )
                    .with_template(1_000),
                );
            }
        }
        let pass_rate = results.iter().filter(|r| r.passed).count() as f64 / results.len() as f64;
        frame.push(m.bench_pass_rate, CompId::SYSTEM, pass_rate);
        results
    }

    fn pick_nodes(&mut self, engine: &SimEngine) -> Vec<u32> {
        let total = engine.num_nodes();
        let k = self.sample_nodes.min(total);
        // Deterministic stratified sample with a rotating offset so rounds
        // cover different nodes.
        let offset = self.rng.below(total as u64) as u32;
        (0..k).map(|i| (offset + i * total / k) % total).collect()
    }

    fn jitter(&mut self, seconds: f64) -> f64 {
        (seconds * (1.0 + self.rng.normal_with(0.0, 0.02))).max(0.01)
    }

    fn check(name: &str, failures: &[u32]) -> BenchResult {
        BenchResult {
            name: name.to_owned(),
            passed: failures.is_empty(),
            seconds: None,
            detail: if failures.is_empty() {
                String::new()
            } else {
                format!("failing nodes: {failures:?}")
            },
        }
    }

    fn bench(name: &str, seconds: f64) -> BenchResult {
        BenchResult {
            name: name.to_owned(),
            passed: true,
            seconds: Some(seconds),
            detail: String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::{Frame, MetricRegistry, Ts};
    use hpcmon_sim::{AppProfile, FaultKind, JobSpec, SimConfig, SimEngine};

    fn metrics() -> StdMetrics {
        StdMetrics::register(&MetricRegistry::new())
    }

    fn run_suite(
        engine: &SimEngine,
        suite: &mut BenchmarkSuite,
    ) -> (Frame, Vec<LogRecord>, Vec<BenchResult>) {
        let mut cf = ColumnFrame::new(engine.now());
        let mut logs = Vec::new();
        let results = suite.run(engine, &mut cf, &mut logs);
        (cf.to_frame(), logs, results)
    }

    #[test]
    fn healthy_machine_passes_everything() {
        let m = metrics();
        let mut engine = SimEngine::new(SimConfig::small());
        engine.step();
        let mut suite = BenchmarkSuite::new(m, 1, 16);
        let (frame, logs, results) = run_suite(&engine, &mut suite);
        assert!(results.iter().all(|r| r.passed));
        assert!(logs.is_empty());
        assert_eq!(frame.of_metric(m.bench_pass_rate).next().unwrap().value, 1.0);
        // Benchmarks near their baselines on an idle machine.
        let compute = frame.of_metric(m.bench_compute).next().unwrap().value;
        assert!((compute - BenchmarkSuite::COMPUTE_BASE_S).abs() < 5.0);
    }

    #[test]
    fn dead_service_fails_check_and_logs() {
        let m = metrics();
        let mut engine = SimEngine::new(SimConfig::small());
        for n in 0..engine.num_nodes() {
            engine.schedule_fault(Ts::from_mins(1), FaultKind::ServiceDown { node: n, service: 0 });
        }
        engine.step();
        let mut suite = BenchmarkSuite::new(m, 1, 8);
        let (frame, logs, results) = run_suite(&engine, &mut suite);
        let svc = results.iter().find(|r| r.name == "services_up").unwrap();
        assert!(!svc.passed);
        assert!(svc.detail.contains("failing nodes"));
        assert!(!logs.is_empty());
        let pass = frame.of_metric(m.bench_pass_rate).next().unwrap().value;
        assert!(pass < 1.0);
    }

    #[test]
    fn io_benchmark_tracks_ost_degradation() {
        let m = metrics();
        let mut engine = SimEngine::new(SimConfig::small());
        engine.step();
        let mut suite = BenchmarkSuite::new(m, 1, 8);
        let (frame, _, _) = run_suite(&engine, &mut suite);
        let before = frame.of_metric(m.bench_io).next().unwrap().value;
        engine.schedule_fault(Ts::from_mins(2), FaultKind::OstDegrade { ost: 0, factor: 8.0 });
        engine.step();
        engine.step();
        let (frame, _, _) = run_suite(&engine, &mut suite);
        let after = frame.of_metric(m.bench_io).next().unwrap().value;
        assert!(after > 4.0 * before, "before {before} after {after}");
    }

    #[test]
    fn network_benchmark_tracks_congestion() {
        let m = metrics();
        let mut engine = SimEngine::new(SimConfig::small());
        engine.step();
        let mut suite = BenchmarkSuite::new(m, 1, 16);
        let (frame, _, _) = run_suite(&engine, &mut suite);
        let idle = frame.of_metric(m.bench_network).next().unwrap().value;
        engine.submit_job(JobSpec::new(
            AppProfile::comm_heavy("fft"),
            "u",
            128,
            60 * 60_000,
            Ts::ZERO,
        ));
        engine.step();
        engine.step();
        let (frame, _, _) = run_suite(&engine, &mut suite);
        let busy = frame.of_metric(m.bench_network).next().unwrap().value;
        assert!(busy > idle, "idle {idle} busy {busy}");
    }

    #[test]
    fn memory_floor_check_fails_on_leak() {
        let m = metrics();
        let mut engine = SimEngine::new(SimConfig::small());
        let leak = engine.config().node_mem_bytes * 0.3;
        for n in 0..engine.num_nodes() {
            engine.schedule_fault(
                Ts::from_mins(1),
                FaultKind::MemoryLeak { node: n, bytes_per_tick: leak },
            );
        }
        for _ in 0..5 {
            engine.step();
        }
        let mut suite = BenchmarkSuite::new(m, 1, 8);
        let (_, _, results) = run_suite(&engine, &mut suite);
        assert!(!results.iter().find(|r| r.name == "free_memory").unwrap().passed);
    }

    #[test]
    fn sampled_nodes_rotate_between_rounds() {
        let m = metrics();
        let mut engine = SimEngine::new(SimConfig::small());
        engine.step();
        let mut suite = BenchmarkSuite::new(m, 7, 4);
        let a = suite.pick_nodes(&engine);
        let b = suite.pick_nodes(&engine);
        assert_ne!(a, b, "rotating offset changes coverage");
        assert!(a.iter().all(|&n| n < engine.num_nodes()));
    }

    #[test]
    fn results_are_deterministic_for_seed() {
        let m = metrics();
        let mut engine = SimEngine::new(SimConfig::small());
        engine.step();
        let run = |seed| {
            let mut suite = BenchmarkSuite::new(m, seed, 8);
            let (frame, _, _) = run_suite(&engine, &mut suite);
            let v = frame.of_metric(m.bench_compute).next().unwrap().value;
            v
        };
        assert_eq!(run(5), run(5));
    }
}
