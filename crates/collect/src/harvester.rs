//! The log harvester: vendor formats in, normalized records out.
//!
//! ALCF's experience (paper §IV-A): "Cray separates log events into at
//! least 20 different per-day log files ... time and date formatting vary
//! between files, some log events are multi-line, and some files are
//! binary."  The harvester reproduces that mess deterministically — each
//! log source renders into a different vendor format — and then parses
//! everything back into [`LogRecord`]s, counting (never hiding) the lines
//! it could not understand.

use hpcmon_metrics::{LogRecord, Severity, Ts};
use hpcmon_sim::SimEngine;
use hpcmon_transport::syslog;
use hpcmon_transport::{topics, Broker, Payload};
use std::sync::Arc;

/// The on-disk formats the machine emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VendorFormat {
    /// The canonical hpcmon line format.
    Canonical,
    /// Bracketed console-log style: `[<ts>] <comp> <SEV> <source>| <msg>`.
    CrayConsole,
    /// One JSON object per line (the ERD-after-Deluge view).
    JsonEvent,
}

impl VendorFormat {
    /// Which format a given source subsystem writes (deterministic, so the
    /// mess is reproducible).
    pub fn for_source(source: &str) -> VendorFormat {
        match source {
            "console" => VendorFormat::CrayConsole,
            "hwerr" => VendorFormat::JsonEvent,
            _ => VendorFormat::Canonical,
        }
    }

    /// Render a record in this format.
    pub fn render(&self, rec: &LogRecord) -> String {
        match self {
            VendorFormat::Canonical => syslog::render_line(rec),
            VendorFormat::CrayConsole => {
                let tpl = rec.template.map(|t| format!(" #t{t}")).unwrap_or_default();
                format!(
                    "[{}] {} {} {}| {}{}",
                    rec.ts.0,
                    rec.comp.path(),
                    rec.severity.label(),
                    rec.source,
                    rec.message,
                    tpl
                )
            }
            VendorFormat::JsonEvent => {
                // Hand-rolled JSON so this crate needs no serde_json dep;
                // messages are escaped minimally (quotes and backslashes).
                let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
                format!(
                    "{{\"ts\":{},\"comp\":\"{}\",\"sev\":\"{}\",\"src\":\"{}\",\"msg\":\"{}\",\"tpl\":{}}}",
                    rec.ts.0,
                    rec.comp.path(),
                    rec.severity.label(),
                    esc(&rec.source),
                    esc(&rec.message),
                    rec.template.map(|t| t.to_string()).unwrap_or_else(|| "null".into()),
                )
            }
        }
    }
}

/// Try to parse a line in any known vendor format.
pub fn parse_any(line: &str) -> Option<LogRecord> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return None;
    }
    if trimmed.starts_with('{') {
        return parse_json_event(trimmed);
    }
    if trimmed.starts_with('[') {
        return parse_cray_console(trimmed);
    }
    syslog::parse_line(trimmed)
}

fn parse_cray_console(line: &str) -> Option<LogRecord> {
    let rest = line.strip_prefix('[')?;
    let (ts_s, rest) = rest.split_once("] ")?;
    let ts: u64 = ts_s.parse().ok()?;
    let mut parts = rest.splitn(4, ' ');
    let comp_s = parts.next()?;
    let sev = Severity::parse(parts.next()?)?;
    let src_pipe = parts.next()?;
    let source = src_pipe.strip_suffix('|')?;
    let msg = parts.next()?;
    let (msg, template) = split_template(msg);
    let comp = parse_comp_path(comp_s)?;
    let mut rec = LogRecord::new(Ts(ts), comp, sev, source, msg);
    rec.template = template;
    Some(rec)
}

fn parse_json_event(line: &str) -> Option<LogRecord> {
    // A small field extractor sufficient for our own renderer's output.
    let get_str = |key: &str| -> Option<String> {
        let pat = format!("\"{key}\":\"");
        let start = line.find(&pat)? + pat.len();
        let mut out = String::new();
        let mut chars = line[start..].chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => out.push(chars.next()?),
                '"' => return Some(out),
                c => out.push(c),
            }
        }
        None
    };
    let get_num = |key: &str| -> Option<u64> {
        let pat = format!("\"{key}\":");
        let start = line.find(&pat)? + pat.len();
        let digits: String = line[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse().ok()
    };
    let ts = Ts(get_num("ts")?);
    let comp = parse_comp_path(&get_str("comp")?)?;
    let sev = Severity::parse(&get_str("sev")?)?;
    let source = get_str("src")?;
    let msg = get_str("msg")?;
    let template = get_num("tpl").map(|t| t as u32);
    let mut rec = LogRecord::new(ts, comp, sev, source, msg);
    rec.template = template;
    Some(rec)
}

fn split_template(msg: &str) -> (&str, Option<u32>) {
    match msg.rfind(" #t") {
        Some(pos) => match msg[pos + 3..].parse::<u32>() {
            Ok(t) => (&msg[..pos], Some(t)),
            Err(_) => (msg, None),
        },
        None => (msg, None),
    }
}

fn parse_comp_path(s: &str) -> Option<hpcmon_metrics::CompId> {
    let (kind_s, idx_s) = s.split_once('/')?;
    let index: u32 = idx_s.parse().ok()?;
    let kind = hpcmon_metrics::CompKind::ALL.iter().copied().find(|k| k.label() == kind_s)?;
    Some(hpcmon_metrics::CompId { kind, index })
}

/// Harvest statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HarvestStats {
    /// Records successfully normalized.
    pub parsed: u64,
    /// Lines rejected by every parser.
    pub rejected: u64,
}

/// Drains the machine's log stream, round-trips it through the vendor
/// formats, normalizes it, and publishes onto the broker.
pub struct LogHarvester {
    broker: Option<Arc<Broker>>,
    stats: HarvestStats,
}

impl LogHarvester {
    /// A harvester that publishes normalized records to `broker` under
    /// `logs/<source>` topics.  Pass `None` to only normalize.
    pub fn new(broker: Option<Arc<Broker>>) -> LogHarvester {
        LogHarvester { broker, stats: HarvestStats::default() }
    }

    /// Drain, render through vendor formats, parse back, publish.
    pub fn harvest(&mut self, engine: &mut SimEngine) -> Vec<LogRecord> {
        let raw = engine.drain_logs();
        let mut out = Vec::with_capacity(raw.len());
        for rec in raw {
            let fmt = VendorFormat::for_source(&rec.source);
            let line = fmt.render(&rec);
            match parse_any(&line) {
                Some(parsed) => {
                    self.stats.parsed += 1;
                    if let Some(broker) = &self.broker {
                        broker.publish(
                            &topics::logs(&parsed.source),
                            Payload::Log(Arc::new(parsed.clone())),
                        );
                    }
                    out.push(parsed);
                }
                None => self.stats.rejected += 1,
            }
        }
        out
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> HarvestStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::CompId;
    use hpcmon_sim::{FaultKind, SimConfig, SimEngine};
    use hpcmon_transport::{BackpressurePolicy, TopicFilter};

    fn rec(source: &str, msg: &str) -> LogRecord {
        LogRecord::new(Ts(1_234), CompId::node(7), Severity::Error, source, msg).with_template(3)
    }

    #[test]
    fn all_formats_round_trip() {
        for fmt in [VendorFormat::Canonical, VendorFormat::CrayConsole, VendorFormat::JsonEvent] {
            let r = rec("hsn", "link down: lane 3");
            let line = fmt.render(&r);
            let back = parse_any(&line).unwrap_or_else(|| panic!("parse {fmt:?}: {line}"));
            assert_eq!(back, r, "format {fmt:?}");
        }
    }

    #[test]
    fn json_escaping_survives() {
        let r = LogRecord::new(
            Ts(1),
            CompId::SYSTEM,
            Severity::Info,
            "console",
            "path \"C:\\scratch\" mounted",
        );
        let line = VendorFormat::JsonEvent.render(&r);
        let back = parse_any(&line).unwrap();
        assert_eq!(back.message, "path \"C:\\scratch\" mounted");
    }

    #[test]
    fn format_selection_is_per_source() {
        assert_eq!(VendorFormat::for_source("console"), VendorFormat::CrayConsole);
        assert_eq!(VendorFormat::for_source("hwerr"), VendorFormat::JsonEvent);
        assert_eq!(VendorFormat::for_source("sched"), VendorFormat::Canonical);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse_any("").is_none());
        assert!(parse_any("complete nonsense").is_none());
        assert!(parse_any("[notanumber] node/0 INFO x| y").is_none());
        assert!(parse_any("{\"broken\":").is_none());
    }

    #[test]
    fn harvester_normalizes_machine_logs() {
        let mut engine = SimEngine::new(SimConfig::small());
        engine.schedule_fault(Ts::from_mins(1), FaultKind::NodeCrash { node: 3 });
        engine.schedule_fault(Ts::from_mins(1), FaultKind::LinkDown { link: 0 });
        engine.step();
        engine.step();
        let mut harvester = LogHarvester::new(None);
        let records = harvester.harvest(&mut engine);
        assert!(!records.is_empty());
        assert_eq!(harvester.stats().rejected, 0, "all machine formats parse");
        // Crash and link events survive normalization with templates.
        assert!(records
            .iter()
            .any(|r| r.comp == CompId::node(3) && r.severity == Severity::Critical));
        assert!(records.iter().any(|r| r.comp == CompId::link(0)));
        // Drained: a second harvest is empty.
        assert!(harvester.harvest(&mut engine).is_empty());
    }

    #[test]
    fn harvester_publishes_to_broker() {
        let broker = Broker::new();
        let sub = broker.subscribe(TopicFilter::new("logs/#"), 1_024, BackpressurePolicy::Block);
        let mut engine = SimEngine::new(SimConfig::small());
        engine.schedule_fault(Ts::from_mins(1), FaultKind::NodeCrash { node: 3 });
        engine.step();
        let mut harvester = LogHarvester::new(Some(broker.clone()));
        let records = harvester.harvest(&mut engine);
        let published = sub.drain();
        assert_eq!(published.len(), records.len());
        assert!(published.iter().all(|e| e.topic.starts_with("logs/")));
        assert!(published.iter().all(|e| e.payload.as_log().is_some()));
    }
}
