//! Per-job multi-metric panels (Figure 5).
//!
//! "Timeseries visualizations of multiple metrics can provide insights
//! into underperforming applications.  Summing and averaging over nodes
//! enables condensation of high dimensional data enabling at-a-glance
//! understanding" — with plot + raw-data download.  A [`JobPanel`] stacks
//! one condensed sparkline row per metric and exports the full CSV.

use crate::chart::sparkline;
use crate::csv::series_to_csv;
use hpcmon_metrics::JobRecord;
use hpcmon_store::query::JobSeries;

/// How to condense per-node series for display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condense {
    /// Sum across nodes (totals: bytes, watts).
    Sum,
    /// Mean across nodes (intensities: utilization).
    Mean,
}

/// A stacked per-job view over several metrics.
pub struct JobPanel {
    job: JobRecord,
    rows: Vec<(String, Condense, JobSeries)>,
}

impl JobPanel {
    /// Start a panel for a job.
    pub fn new(job: JobRecord) -> JobPanel {
        JobPanel { job, rows: Vec::new() }
    }

    /// Add one metric row.
    pub fn add(mut self, label: &str, condense: Condense, series: JobSeries) -> JobPanel {
        self.rows.push((label.to_owned(), condense, series));
        self
    }

    /// Number of metric rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the panel has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the condensed panel.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Job {} — {} (user {}, {} nodes)\n",
            self.job.id.0,
            self.job.name,
            self.job.user,
            self.job.nodes.len()
        );
        if let (Some(s), Some(e)) = (self.job.start, self.job.end) {
            out.push_str(&format!("  window {} .. {}\n", s.display_hms(), e.display_hms()));
        }
        let label_w = self.rows.iter().map(|(l, _, _)| l.len()).max().unwrap_or(0).max(8);
        for (label, condense, series) in &self.rows {
            let pts = match condense {
                Condense::Sum => &series.sum,
                Condense::Mean => &series.mean,
            };
            let values: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let (min, max) = values
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
            let tag = match condense {
                Condense::Sum => "sum",
                Condense::Mean => "mean",
            };
            if values.is_empty() {
                out.push_str(&format!("  {label:<label_w$} ({tag:<4})  (no data)\n"));
            } else {
                out.push_str(&format!(
                    "  {label:<label_w$} ({tag:<4}) {}  [{:.3e} .. {:.3e}]\n",
                    sparkline(&values),
                    min,
                    max
                ));
            }
        }
        out
    }

    /// The full data behind the panel as CSV: one condensed column per
    /// metric (the Figure 5 "download the raw data" link).
    pub fn csv(&self) -> String {
        let series: Vec<(String, Vec<(hpcmon_metrics::Ts, f64)>)> = self
            .rows
            .iter()
            .map(|(label, condense, s)| {
                let pts = match condense {
                    Condense::Sum => s.sum.clone(),
                    Condense::Mean => s.mean.clone(),
                };
                (label.clone(), pts)
            })
            .collect();
        series_to_csv(&series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::{CompId, JobId, JobState, MetricId, Sample, Ts};
    use hpcmon_store::{QueryEngine, TimeSeriesStore};

    fn job() -> JobRecord {
        JobRecord {
            id: JobId(7),
            user: "alice".into(),
            name: "climate".into(),
            nodes: vec![0, 1],
            submit: Ts::ZERO,
            start: Some(Ts::from_mins(0)),
            end: Some(Ts::from_mins(9)),
            state: JobState::Completed,
        }
    }

    fn store() -> TimeSeriesStore {
        let store = TimeSeriesStore::new();
        for n in 0..2u32 {
            for m in 0..10u64 {
                store.insert(&Sample::new(
                    MetricId(0),
                    CompId::node(n),
                    Ts::from_mins(m),
                    m as f64,
                ));
                store.insert(&Sample::new(MetricId(1), CompId::node(n), Ts::from_mins(m), 0.5));
            }
        }
        store
    }

    fn panel() -> JobPanel {
        let store = store();
        let q = QueryEngine::new(&store);
        let j = job();
        let cpu = q.job_series(&j, MetricId(1));
        let io = q.job_series(&j, MetricId(0));
        JobPanel::new(j).add("fs read", Condense::Sum, io).add("cpu", Condense::Mean, cpu)
    }

    #[test]
    fn renders_header_and_rows() {
        let text = panel().render();
        assert!(text.contains("Job 7 — climate"));
        assert!(text.contains("alice"));
        assert!(text.contains("2 nodes"));
        assert!(text.contains("window 000:00:00 .. 000:09:00"));
        assert!(text.contains("fs read"));
        assert!(text.contains("(sum "));
        assert!(text.contains("cpu"));
        assert!(text.contains("(mean"));
        // Sparkline of an increasing sum ends at the top block.
        let io_line = text.lines().find(|l| l.contains("fs read")).unwrap();
        assert!(io_line.contains('█'));
    }

    #[test]
    fn condensation_is_correct() {
        let p = panel();
        // sum of two nodes at minute 3 = 6; mean cpu = 0.5 everywhere.
        let (_, _, io) = &p.rows[0];
        assert_eq!(io.sum[3], (Ts::from_mins(3), 6.0));
        let (_, _, cpu) = &p.rows[1];
        assert!(cpu.mean.iter().all(|&(_, v)| v == 0.5));
    }

    #[test]
    fn csv_matches_condensed_rows() {
        let csv = panel().csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_ms,fs read,cpu");
        // minute 3: 180000 ms, sum 6, mean 0.5.
        assert!(lines.contains(&"180000,6,0.5"));
        assert_eq!(lines.len(), 11, "header + 10 minutes");
    }

    #[test]
    fn empty_panel() {
        let p = JobPanel::new(job());
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        let text = p.render();
        assert!(text.contains("Job 7"));
    }
}
