//! Cabinet-grid heatmaps.
//!
//! The paper: "individual component graphs may decrease in value and
//! performance as the number of components plotted increases"; the remedy
//! is "reduced dimensionality through higher-level aggregations (e.g.,
//! percentage of components in a state, regardless of location)".  A
//! cabinet heatmap shows one cell per cabinet on a shade ramp — the
//! machine-room floor view operators actually use.

/// Shade ramp from cold to hot.
const SHADES: [char; 5] = ['.', '░', '▒', '▓', '█'];

/// A row-major grid of per-cabinet values.
pub struct CabinetHeatmap {
    title: String,
    columns: usize,
    values: Vec<f64>,
    labels: bool,
}

impl CabinetHeatmap {
    /// Build with `columns` cabinets per machine-room row.
    pub fn new(title: &str, columns: usize, values: Vec<f64>) -> CabinetHeatmap {
        assert!(columns > 0, "need at least one column");
        CabinetHeatmap { title: title.to_owned(), columns, values, labels: true }
    }

    /// Disable the numeric side labels.
    pub fn without_labels(mut self) -> CabinetHeatmap {
        self.labels = false;
        self
    }

    /// Shade character for a normalized value in `[0, 1]`.
    pub fn shade(norm: f64) -> char {
        let idx = (norm.clamp(0.0, 1.0) * (SHADES.len() - 1) as f64).round() as usize;
        SHADES[idx.min(SHADES.len() - 1)]
    }

    /// Render to text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        if self.values.is_empty() {
            out.push_str("  (no cabinets)\n");
            return out;
        }
        let min = self.values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (max - min).max(1e-12);
        for (row_idx, row) in self.values.chunks(self.columns).enumerate() {
            out.push_str(&format!("  row {row_idx:>2}  "));
            for &v in row {
                out.push(Self::shade((v - min) / span));
                out.push(' ');
            }
            if self.labels {
                let row_mean = row.iter().sum::<f64>() / row.len() as f64;
                out.push_str(&format!("  mean {row_mean:.0}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("  scale: {min:.0} {} .. {} {max:.0}\n", SHADES[0], SHADES[4]));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shade_ramp() {
        assert_eq!(CabinetHeatmap::shade(0.0), '.');
        assert_eq!(CabinetHeatmap::shade(1.0), '█');
        assert_eq!(CabinetHeatmap::shade(0.5), '▒');
        // Clamped outside [0,1].
        assert_eq!(CabinetHeatmap::shade(-3.0), '.');
        assert_eq!(CabinetHeatmap::shade(9.0), '█');
    }

    #[test]
    fn renders_rows_and_scale() {
        let hm = CabinetHeatmap::new(
            "Cabinet power",
            4,
            vec![10.0, 10.0, 10.0, 10.0, 30.0, 30.0, 30.0, 30.0],
        );
        let text = hm.render();
        assert!(text.starts_with("Cabinet power\n"));
        assert!(text.contains("row  0"));
        assert!(text.contains("row  1"));
        // Cold row is dots, hot row is blocks.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains('.'));
        assert!(lines[2].contains('█'));
        assert!(text.contains("scale:"));
        assert!(text.contains("mean 10"));
        assert!(text.contains("mean 30"));
    }

    #[test]
    fn imbalance_is_visible() {
        // The Figure 3 situation: two cabinets at 1/3 power stand out.
        let mut values = vec![60_000.0; 8];
        values[3] = 20_000.0;
        values[4] = 20_000.0;
        let text = CabinetHeatmap::new("imbalance", 8, values).render();
        let grid_line = text.lines().nth(1).unwrap();
        assert!(grid_line.contains('█'), "hot cabinets");
        assert!(grid_line.contains('.'), "starved cabinets stand out");
    }

    #[test]
    fn ragged_last_row() {
        let text = CabinetHeatmap::new("r", 3, vec![1.0, 2.0, 3.0, 4.0]).render();
        assert!(text.contains("row  1"));
    }

    #[test]
    fn empty_and_labels_off() {
        assert!(CabinetHeatmap::new("e", 4, vec![]).render().contains("(no cabinets)"));
        let text = CabinetHeatmap::new("n", 2, vec![1.0, 2.0]).without_labels().render();
        assert!(!text.contains("mean"));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_columns_rejected() {
        CabinetHeatmap::new("x", 0, vec![1.0]);
    }
}
