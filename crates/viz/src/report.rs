//! Operations report generation.
//!
//! Sites publish periodic summaries (NERSC "publishes performance over
//! time on its user-facing web pages").  An [`OpsReport`] assembles the
//! at-a-glance pieces — machine state, alert summary, loudest log
//! templates, benchmark trend lines — into one markdown document that can
//! be dropped into a wiki or mailed to a list.

use crate::chart::sparkline;
use crate::status::StatusBoard;
use hpcmon_metrics::Ts;
use std::collections::BTreeMap;

/// One alert-rule summary row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertSummary {
    /// Rule name.
    pub rule: String,
    /// Times it fired in the period.
    pub count: usize,
    /// Last firing.
    pub last: Ts,
}

/// Builder for the report.
#[derive(Debug, Default)]
pub struct OpsReport {
    title: String,
    period: Option<(Ts, Ts)>,
    status: Option<String>,
    alerts: Vec<AlertSummary>,
    benchmarks: Vec<(String, Vec<f64>)>,
    templates: Vec<(u64, String)>,
    telemetry: Option<String>,
    notes: Vec<String>,
}

impl OpsReport {
    /// Start a report.
    pub fn new(title: &str) -> OpsReport {
        OpsReport { title: title.to_owned(), ..Default::default() }
    }

    /// Set the reporting period.
    pub fn period(mut self, from: Ts, to: Ts) -> OpsReport {
        self.period = Some((from, to));
        self
    }

    /// Attach the machine status board.
    pub fn status_board(mut self, board: &StatusBoard) -> OpsReport {
        self.status = Some(board.render());
        self
    }

    /// Summarize fired alerts by rule name from `(rule, ts)` pairs.
    pub fn alerts<'a>(mut self, fired: impl IntoIterator<Item = (&'a str, Ts)>) -> OpsReport {
        let mut by_rule: BTreeMap<&str, (usize, Ts)> = BTreeMap::new();
        for (rule, ts) in fired {
            let entry = by_rule.entry(rule).or_insert((0, ts));
            entry.0 += 1;
            if ts > entry.1 {
                entry.1 = ts;
            }
        }
        self.alerts = by_rule
            .into_iter()
            .map(|(rule, (count, last))| AlertSummary { rule: rule.to_owned(), count, last })
            .collect();
        self.alerts.sort_by(|a, b| b.count.cmp(&a.count).then(a.rule.cmp(&b.rule)));
        self
    }

    /// Add a benchmark trend row (rendered as a sparkline).
    pub fn benchmark(mut self, name: &str, values: Vec<f64>) -> OpsReport {
        self.benchmarks.push((name.to_owned(), values));
        self
    }

    /// Add the loudest log templates as `(count, example)` rows.
    pub fn top_templates(mut self, rows: Vec<(u64, String)>) -> OpsReport {
        self.templates = rows;
        self
    }

    /// Attach the monitor's own telemetry (pre-rendered, e.g.
    /// `TelemetryReport::render_text()`) — the monitor is a subsystem too.
    pub fn telemetry(mut self, rendered: &str) -> OpsReport {
        self.telemetry = Some(rendered.to_owned());
        self
    }

    /// Append a free-form note.
    pub fn note(mut self, text: &str) -> OpsReport {
        self.notes.push(text.to_owned());
        self
    }

    /// Render to markdown.
    pub fn render(&self) -> String {
        let mut out = format!("# {}\n\n", self.title);
        if let Some((from, to)) = self.period {
            out.push_str(&format!("Period: {} .. {}\n\n", from.display_hms(), to.display_hms()));
        }
        if let Some(status) = &self.status {
            out.push_str("## Machine state\n\n```\n");
            out.push_str(status);
            out.push_str("```\n\n");
        }
        if !self.alerts.is_empty() {
            out.push_str("## Alerts by rule\n\n| rule | fired | last |\n|---|---|---|\n");
            for a in &self.alerts {
                out.push_str(&format!("| {} | {} | {} |\n", a.rule, a.count, a.last.display_hms()));
            }
            out.push('\n');
        }
        if !self.benchmarks.is_empty() {
            out.push_str("## Benchmark trends\n\n");
            for (name, values) in &self.benchmarks {
                let (min, max) =
                    values.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                        (lo.min(v), hi.max(v))
                    });
                if values.is_empty() {
                    out.push_str(&format!("- `{name}`: (no data)\n"));
                } else {
                    out.push_str(&format!(
                        "- `{name}`: {} [{:.2} .. {:.2}]\n",
                        sparkline(values),
                        min,
                        max
                    ));
                }
            }
            out.push('\n');
        }
        if !self.templates.is_empty() {
            out.push_str("## Loudest log templates\n\n");
            for (count, example) in &self.templates {
                out.push_str(&format!("- {count}× `{example}`\n"));
            }
            out.push('\n');
        }
        if let Some(telemetry) = &self.telemetry {
            out.push_str("## Monitor self-telemetry\n\n```\n");
            out.push_str(telemetry);
            if !telemetry.ends_with('\n') {
                out.push('\n');
            }
            out.push_str("```\n\n");
        }
        for note in &self.notes {
            out.push_str(&format!("> {note}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::ClassStatus;

    fn report() -> OpsReport {
        let board = StatusBoard::new("state")
            .add(ClassStatus::new("nodes", vec![("up", 100), ("down", 2)]));
        OpsReport::new("Weekly ops report")
            .period(Ts::ZERO, Ts::from_mins(7 * 24 * 60))
            .status_board(&board)
            .alerts(vec![
                ("page-on-critical", Ts::from_mins(10)),
                ("page-on-critical", Ts::from_mins(90)),
                ("sideline-unhealthy-node", Ts::from_mins(50)),
            ])
            .benchmark("io tts s", vec![45.0, 46.0, 44.5, 120.0, 118.0])
            .top_templates(vec![(740, "systemd: Started Session".into())])
            .telemetry("self-telemetry\n  stage.collect p95=1.2ms\n")
            .note("OST 3 degradation under investigation.")
    }

    #[test]
    fn renders_all_sections() {
        let md = report().render();
        assert!(md.starts_with("# Weekly ops report\n"));
        assert!(md.contains("Period: 000:00:00 .. 168:00:00"));
        assert!(md.contains("## Machine state"));
        assert!(md.contains("nodes"));
        assert!(md.contains("## Alerts by rule"));
        assert!(md.contains("| page-on-critical | 2 | 001:30:00 |"));
        assert!(md.contains("## Benchmark trends"));
        assert!(md.contains("io tts s"));
        assert!(md.contains('▁'), "sparkline present");
        assert!(md.contains("## Loudest log templates"));
        assert!(md.contains("740×"));
        assert!(md.contains("## Monitor self-telemetry"));
        assert!(md.contains("stage.collect p95=1.2ms"));
        assert!(md.contains("> OST 3 degradation"));
    }

    #[test]
    fn alert_summary_sorted_by_count() {
        let md = report().render();
        let page = md.find("page-on-critical").unwrap();
        let sideline = md.find("sideline-unhealthy-node").unwrap();
        assert!(page < sideline, "most-fired rule first");
    }

    #[test]
    fn empty_report_is_just_a_title() {
        let md = OpsReport::new("empty").render();
        assert_eq!(md, "# empty\n\n");
    }

    #[test]
    fn empty_benchmark_row_is_handled() {
        let md = OpsReport::new("r").benchmark("ghost", vec![]).render();
        assert!(md.contains("(no data)"));
    }
}
