//! Trace rendering: one frame's journey through the pipeline.
//!
//! Two views over an assembled [`Trace`]:
//!
//! * [`render_span_tree`] — an ASCII tree for terminals and logs, parent
//!   spans above children, one line per stage with duration and status.
//!   Drop spans carry their reason (`✗ queue_full`) so "where did my
//!   datum go" reads straight off the trace.
//! * [`svg_trace_timeline`] — a flamegraph-style SVG: time on the x axis,
//!   one row per span ordered by tree depth, drops in red.  This is the
//!   "plot image" form of a trace, pairing with the CSV/SVG release flow
//!   the paper's sites run for metric data.

use crate::svg::xml_escape;
use hpcmon_trace::{SpanId, SpanRecord, SpanStatus, Trace};

/// Human duration: picks ns/µs/ms/s to keep 3-ish significant digits.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// One line of the tree: stage, duration, status marker, note.
fn span_line(span: &SpanRecord) -> String {
    let mut line = format!("{} {}", span.stage.as_str(), fmt_ns(span.duration_ns()));
    match span.status {
        SpanStatus::Completed => {}
        SpanStatus::Dropped(reason) => {
            line.push_str(&format!("  ✗ dropped: {}", reason.as_str()));
        }
    }
    if !span.note.is_empty() {
        line.push_str(&format!("  ({})", span.note));
    }
    line
}

/// Children of `parent` in span order (the trace keeps spans sorted by
/// start time, so siblings come out in pipeline order).
fn children_of(trace: &Trace, parent: SpanId) -> Vec<&SpanRecord> {
    trace.spans.iter().filter(|s| s.parent == parent && s.span_id != parent).collect()
}

fn render_subtree(trace: &Trace, span: &SpanRecord, prefix: &str, last: bool, out: &mut String) {
    let (branch, cont) = if last { ("└─ ", "   ") } else { ("├─ ", "│  ") };
    out.push_str(prefix);
    out.push_str(branch);
    out.push_str(&span_line(span));
    out.push('\n');
    let kids = children_of(trace, span.span_id);
    for (i, kid) in kids.iter().enumerate() {
        render_subtree(trace, kid, &format!("{prefix}{cont}"), i + 1 == kids.len(), out);
    }
}

/// Render a trace as an ASCII span tree.
///
/// Spans whose parent never made it into the trace (e.g. an unsampled
/// frame whose only record is a drop span chained under the inert root)
/// are promoted to top level so provenance is never silently hidden.
pub fn render_span_tree(trace: &Trace) -> String {
    let drops = trace.drop_spans().count();
    let mut out = format!(
        "trace {:#018x}  {} span{}  {}",
        trace.id.0,
        trace.spans.len(),
        if trace.spans.len() == 1 { "" } else { "s" },
        fmt_ns(trace.duration_ns()),
    );
    if drops > 0 {
        out.push_str(&format!("  [{drops} drop{}]", if drops == 1 { "" } else { "s" }));
    }
    out.push('\n');
    let present: Vec<SpanId> = trace.spans.iter().map(|s| s.span_id).collect();
    let tops: Vec<&SpanRecord> = trace
        .spans
        .iter()
        .filter(|s| s.parent == SpanId::NONE || !present.contains(&s.parent))
        .collect();
    for top in &tops {
        if top.parent == SpanId::NONE {
            out.push_str(&span_line(top));
            out.push('\n');
            let kids = children_of(trace, top.span_id);
            for (j, kid) in kids.iter().enumerate() {
                render_subtree(trace, kid, "", j + 1 == kids.len(), &mut out);
            }
        } else {
            // Orphan: parent span was never recorded (inert guard).
            out.push_str(&format!("~ {}\n", span_line(top)));
            let kids = children_of(trace, top.span_id);
            for (j, kid) in kids.iter().enumerate() {
                render_subtree(trace, kid, "  ", j + 1 == kids.len(), &mut out);
            }
        }
    }
    out
}

/// Tree depth of a span (root = 0); orphans count from their own level.
fn depth_of(trace: &Trace, span: &SpanRecord) -> usize {
    let mut depth = 0;
    let mut cur = span.parent;
    while cur != SpanId::NONE {
        match trace.spans.iter().find(|s| s.span_id == cur) {
            Some(p) => {
                depth += 1;
                cur = p.parent;
            }
            None => {
                depth += 1;
                break;
            }
        }
        if depth > trace.spans.len() {
            break; // cycle guard; malformed input
        }
    }
    depth
}

/// Render a trace as a flamegraph-style SVG timeline.
///
/// Each span is a bar: x position and width from its start/duration
/// relative to the trace, row from its tree depth.  Completed spans are
/// blue, drop spans red with the reason in the label.
pub fn svg_trace_timeline(trace: &Trace, width: u32) -> String {
    const ROW_H: f64 = 22.0;
    const MARGIN: f64 = 10.0;
    const HEADER: f64 = 24.0;
    let max_depth = trace.spans.iter().map(|s| depth_of(trace, s)).max().unwrap_or(0);
    let height = HEADER + 2.0 * MARGIN + (max_depth as f64 + 1.0) * (ROW_H + 4.0);
    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height:.0}\" viewBox=\"0 0 {width} {height:.0}\">\n"
    );
    let drops = trace.drop_spans().count();
    out.push_str(&format!(
        "  <text x=\"{MARGIN}\" y=\"16\" font-family=\"sans-serif\" font-size=\"13\">trace {:#x} — {} spans, {}{}</text>\n",
        trace.id.0,
        trace.spans.len(),
        fmt_ns(trace.duration_ns()),
        if drops > 0 { format!(", {drops} dropped") } else { String::new() },
    ));
    if trace.spans.is_empty() {
        out.push_str("</svg>\n");
        return out;
    }
    let t0 = trace.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let span_ns = trace.duration_ns().max(1) as f64;
    let plot_w = width as f64 - 2.0 * MARGIN;
    for span in &trace.spans {
        let depth = depth_of(trace, span);
        let x = MARGIN + (span.start_ns - t0) as f64 / span_ns * plot_w;
        // A floor width keeps sub-pixel spans visible.
        let w = (span.duration_ns() as f64 / span_ns * plot_w).max(2.0);
        let y = HEADER + MARGIN + depth as f64 * (ROW_H + 4.0);
        let (fill, label) = match span.status {
            SpanStatus::Completed => ("#4878a8", span.stage.as_str().to_owned()),
            SpanStatus::Dropped(reason) => {
                ("#c0392b", format!("{} ✗{}", span.stage.as_str(), reason.as_str()))
            }
        };
        out.push_str(&format!(
            "  <rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{ROW_H}\" fill=\"{fill}\" rx=\"2\"/>\n"
        ));
        out.push_str(&format!(
            "  <text x=\"{:.1}\" y=\"{:.1}\" font-family=\"sans-serif\" font-size=\"11\" fill=\"#fff\">{} {}</text>\n",
            x + 4.0,
            y + 15.0,
            xml_escape(&label),
            fmt_ns(span.duration_ns()),
        ));
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_trace::{DropReason, SpanRecord, Stage, TraceId};

    fn span(
        id: u64,
        parent: u64,
        stage: Stage,
        start: u64,
        end: u64,
        status: SpanStatus,
        note: &str,
    ) -> SpanRecord {
        SpanRecord {
            trace_id: TraceId(0xabc),
            span_id: SpanId(id),
            parent: SpanId(parent),
            stage,
            start_ns: start,
            end_ns: end,
            status,
            note: note.into(),
        }
    }

    fn frame_trace() -> Trace {
        Trace {
            id: TraceId(0xabc),
            spans: vec![
                span(1, 0, Stage::Tick, 0, 2_000_000, SpanStatus::Completed, ""),
                span(2, 1, Stage::Collect, 10, 400_000, SpanStatus::Completed, "96 samples"),
                span(3, 1, Stage::Transport, 400_100, 430_000, SpanStatus::Completed, ""),
                span(4, 3, Stage::Store, 430_100, 600_000, SpanStatus::Completed, ""),
                span(
                    5,
                    3,
                    Stage::Transport,
                    430_200,
                    430_300,
                    SpanStatus::Dropped(DropReason::QueueFull),
                    "metrics/frame -> laggard",
                ),
                span(6, 1, Stage::Analysis, 600_100, 900_000, SpanStatus::Completed, ""),
            ],
        }
    }

    #[test]
    fn span_tree_shows_hierarchy_and_drops() {
        let text = render_span_tree(&frame_trace());
        assert!(text.contains("6 spans"), "{text}");
        assert!(text.contains("[1 drop]"), "{text}");
        // The tick root is unindented; collect is a branch under it.
        assert!(text.contains("tick 2.00ms"), "{text}");
        assert!(text.contains("├─ collect"), "{text}");
        // Store nests under transport.
        assert!(text.contains("│  ├─ store"), "{text}");
        assert!(text.contains("✗ dropped: queue_full"), "{text}");
        assert!(text.contains("(metrics/frame -> laggard)"), "{text}");
    }

    #[test]
    fn orphan_drop_span_is_promoted_not_hidden() {
        // An unsampled frame's drop span references a parent that was
        // never recorded: the tree must still show it.
        let trace = Trace {
            id: TraceId(7),
            spans: vec![span(
                9,
                3,
                Stage::Transport,
                5,
                6,
                SpanStatus::Dropped(DropReason::DropOldest),
                "metrics/frame -> slow",
            )],
        };
        let text = render_span_tree(&trace);
        assert!(text.contains("~ transport"), "{text}");
        assert!(text.contains("drop_oldest"), "{text}");
    }

    #[test]
    fn svg_timeline_is_well_formed_and_colors_drops() {
        let svg = svg_trace_timeline(&frame_trace(), 800);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<rect").count(), 6);
        // Exactly one red (drop) bar.
        assert_eq!(svg.matches("#c0392b").count(), 1);
        assert!(svg.contains("queue_full"));
    }

    #[test]
    fn empty_trace_renders_without_panic() {
        let trace = Trace { id: TraceId(1), spans: Vec::new() };
        assert!(render_span_tree(&trace).contains("0 spans"));
        assert!(svg_trace_timeline(&trace, 400).ends_with("</svg>\n"));
    }

    #[test]
    fn durations_format_across_scales() {
        assert_eq!(fmt_ns(900), "900ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_000_000), "2.00ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
