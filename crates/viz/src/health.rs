//! Operator health console.
//!
//! Paper §III-B asks for "at-a-glance understanding" backed by drill-down;
//! [`render_health_board`] is the at-a-glance half for the SLO/alerting
//! plane: one graded row per pipeline subsystem, the active alerts with
//! their ages and burn rates, and — in federation mode — a per-site rollup.
//! [`health_board_json`] is the same report as machine-readable JSON for
//! dashboards and the data-download path.

use hpcmon_health::{Grade, HealthReport};

/// Render the operator health board as plain text.
///
/// ```text
/// Health @ tick 42
///   collect     OK
///   transport   CRITICAL  firing=1
///   ...
///   alerts:
///     FIRING   transport/delivery  ERROR  age=12  burn fast=412.0x slow=34.3x  trace=0x00000000deadbeef
/// ```
pub fn render_health_board(report: &HealthReport) -> String {
    let mut out = format!("Health @ tick {}\n", report.tick);
    let label_w =
        report.subsystems.iter().map(|s| s.subsystem.label().len()).max().unwrap_or(4).max(4);
    for row in &report.subsystems {
        let mut counts = String::new();
        if row.firing > 0 {
            counts.push_str(&format!("  firing={}", row.firing));
        }
        if row.pending > 0 {
            counts.push_str(&format!("  pending={}", row.pending));
        }
        out.push_str(&format!(
            "  {:<label_w$} {:<8}{}\n",
            row.subsystem.label(),
            grade_cell(row.grade),
            counts
        ));
    }
    if report.active.is_empty() {
        out.push_str("  alerts: none\n");
    } else {
        out.push_str("  alerts:\n");
        let key_w = report.active.iter().map(|a| a.key.len()).max().unwrap_or(4);
        for a in &report.active {
            let phase = if a.firing { "FIRING " } else { "PENDING" };
            out.push_str(&format!(
                "    {phase}  {:<key_w$}  {:<6}  age={}  burn fast={:.1}x slow={:.1}x",
                a.key,
                a.severity.label(),
                a.age_ticks,
                a.fast_burn,
                a.slow_burn,
            ));
            if a.exemplar_trace != 0 {
                out.push_str(&format!("  trace={:#018x}", a.exemplar_trace));
            }
            out.push('\n');
        }
    }
    if !report.sites.is_empty() {
        out.push_str("  sites:\n");
        let site_w = report.sites.iter().map(|s| s.site.len()).max().unwrap_or(4);
        for s in &report.sites {
            let mut counts = String::new();
            if s.firing > 0 {
                counts.push_str(&format!("  firing={}", s.firing));
            }
            if s.pending > 0 {
                counts.push_str(&format!("  pending={}", s.pending));
            }
            out.push_str(&format!(
                "    {:<site_w$} {:<8}{}\n",
                s.site,
                grade_cell(s.grade),
                counts
            ));
        }
    }
    out
}

/// The same report serialized as JSON, for dashboards and controlled data
/// release (mirrors the CSV download path the paper's sites rely on).
pub fn health_board_json(report: &HealthReport) -> String {
    serde_json::to_string(report).expect("HealthReport serializes")
}

fn grade_cell(grade: Grade) -> &'static str {
    grade.label()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_health::{ActiveAlert, SiteHealth, Subsystem, SubsystemHealth};
    use hpcmon_metrics::Severity;

    fn report() -> HealthReport {
        HealthReport {
            tick: 42,
            subsystems: vec![
                SubsystemHealth {
                    subsystem: Subsystem::Collect,
                    grade: Grade::Healthy,
                    firing: 0,
                    pending: 0,
                },
                SubsystemHealth {
                    subsystem: Subsystem::Transport,
                    grade: Grade::Critical,
                    firing: 1,
                    pending: 0,
                },
            ],
            active: vec![ActiveAlert {
                key: "transport/delivery".into(),
                subsystem: Subsystem::Transport,
                site: None,
                severity: Severity::Error,
                firing: true,
                since_tick: 30,
                age_ticks: 12,
                fast_burn: 412.0,
                slow_burn: 34.25,
                exemplar_trace: 0xDEAD_BEEF,
            }],
            sites: vec![SiteHealth {
                site: "alcf".into(),
                grade: Grade::Degraded,
                firing: 0,
                pending: 1,
            }],
        }
    }

    #[test]
    fn board_shows_grades_alerts_and_sites() {
        let text = render_health_board(&report());
        assert!(text.starts_with("Health @ tick 42\n"), "{text}");
        assert!(text.contains("collect"));
        assert!(text.contains("OK"));
        assert!(text.contains("CRITICAL  firing=1"), "{text}");
        assert!(text.contains("FIRING   transport/delivery"), "{text}");
        assert!(text.contains("age=12"));
        assert!(text.contains("burn fast=412.0x slow=34.2x"), "{text}");
        assert!(text.contains("trace=0x00000000deadbeef"), "{text}");
        assert!(text.contains("alcf"));
        assert!(text.contains("DEGRADED  pending=1"), "{text}");
    }

    #[test]
    fn empty_report_says_no_alerts() {
        let rep = HealthReport { tick: 0, subsystems: vec![], active: vec![], sites: vec![] };
        let text = render_health_board(&rep);
        assert!(text.contains("alerts: none"));
        assert!(!text.contains("sites:"));
    }

    #[test]
    fn json_round_trips() {
        let rep = report();
        let json = health_board_json(&rep);
        let back: HealthReport = serde_json::from_str(&json).expect("parses");
        assert_eq!(rep, back);
    }
}
