//! Component-state status board.
//!
//! Paper §III-B: "Reduced dimensionality through higher-level aggregations
//! (e.g., percentage of components in a state, regardless of location)
//! coupled with drill-down capabilities can enable better at-a-glance
//! understanding."  A [`StatusBoard`] is exactly the at-a-glance half:
//! one row per component class, a percent bar per state.

/// Counts of one component class in each state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassStatus {
    /// Class label, e.g. "nodes", "links", "OSTs".
    pub class: String,
    /// State label → count, in display order.
    pub states: Vec<(String, usize)>,
}

impl ClassStatus {
    /// Build a class row.
    pub fn new(class: &str, states: Vec<(&str, usize)>) -> ClassStatus {
        ClassStatus {
            class: class.to_owned(),
            states: states.into_iter().map(|(s, c)| (s.to_owned(), c)).collect(),
        }
    }

    /// Total components in the class.
    pub fn total(&self) -> usize {
        self.states.iter().map(|(_, c)| c).sum()
    }

    /// Fraction in the first ("good") state, in `[0, 1]`; 1.0 for an
    /// empty class.
    pub fn healthy_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        self.states.first().map(|(_, c)| *c as f64 / total as f64).unwrap_or(1.0)
    }
}

/// A stack of class rows.
#[derive(Debug, Clone, Default)]
pub struct StatusBoard {
    title: String,
    rows: Vec<ClassStatus>,
}

impl StatusBoard {
    /// Empty board.
    pub fn new(title: &str) -> StatusBoard {
        StatusBoard { title: title.to_owned(), rows: Vec::new() }
    }

    /// Add a class row.
    #[allow(clippy::should_implement_trait)] // builder-style add, not ops::Add
    pub fn add(mut self, row: ClassStatus) -> StatusBoard {
        self.rows.push(row);
        self
    }

    /// Render: `class  [#####....]  97.5% good   up=1234 down=3 ...`.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        let label_w = self.rows.iter().map(|r| r.class.len()).max().unwrap_or(4).max(4);
        for row in &self.rows {
            let frac = row.healthy_fraction();
            let filled = (frac * 20.0).round() as usize;
            let bar: String = "#".repeat(filled) + &".".repeat(20 - filled.min(20));
            let states: Vec<String> = row.states.iter().map(|(s, c)| format!("{s}={c}")).collect();
            out.push_str(&format!(
                "  {:<label_w$} [{bar}] {:>6.1}% good   {}\n",
                row.class,
                frac * 100.0,
                states.join(" ")
            ));
        }
        out
    }

    /// The worst (least healthy) class, if any rows exist.
    pub fn worst(&self) -> Option<&ClassStatus> {
        self.rows
            .iter()
            .min_by(|a, b| a.healthy_fraction().partial_cmp(&b.healthy_fraction()).expect("no NaN"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> StatusBoard {
        StatusBoard::new("Machine state")
            .add(ClassStatus::new("nodes", vec![("up", 120), ("hung", 2), ("down", 6)]))
            .add(ClassStatus::new("links", vec![("up", 760), ("down", 8)]))
            .add(ClassStatus::new("OSTs", vec![("healthy", 16), ("degraded", 0)]))
    }

    #[test]
    fn fractions_and_totals() {
        let row = ClassStatus::new("nodes", vec![("up", 90), ("down", 10)]);
        assert_eq!(row.total(), 100);
        assert!((row.healthy_fraction() - 0.9).abs() < 1e-12);
        let empty = ClassStatus::new("ghosts", vec![]);
        assert_eq!(empty.total(), 0);
        assert_eq!(empty.healthy_fraction(), 1.0);
    }

    #[test]
    fn render_shows_bars_and_counts() {
        let text = board().render();
        assert!(text.starts_with("Machine state\n"));
        assert!(text.contains("nodes"));
        assert!(text.contains("up=120"));
        assert!(text.contains("down=6"));
        assert!(text.contains("93.8% good"), "{text}");
        assert!(text.contains("100.0% good"));
        assert!(text.contains('#'));
    }

    #[test]
    fn worst_class_identified() {
        let b = board();
        assert_eq!(b.worst().unwrap().class, "nodes");
        assert!(StatusBoard::new("empty").worst().is_none());
    }

    #[test]
    fn fully_broken_class_renders() {
        let text = StatusBoard::new("bad")
            .add(ClassStatus::new("links", vec![("up", 0), ("down", 5)]))
            .render();
        assert!(text.contains("0.0% good"));
        assert!(text.contains("[....................]"));
    }
}
