//! CSV export — the "controlled release of data to users" path.
//!
//! NCSA "provides the ability to download both plot images and the
//! associated Comma Separated Value (CSV) formatted data" (Figure 5).
//! `series_to_csv` emits exactly what was plotted; `parse_series_csv`
//! round-trips it so a user's downstream tooling can rely on the format.

use hpcmon_metrics::Ts;

/// Render aligned series as CSV: a `time_ms` column plus one column per
/// labelled series.  Rows are the union of timestamps; absent values are
/// empty cells.
pub fn series_to_csv(series: &[(String, Vec<(Ts, f64)>)]) -> String {
    let mut out = String::from("time_ms");
    for (label, _) in series {
        out.push(',');
        out.push_str(&escape(label));
    }
    out.push('\n');
    // Union of timestamps, ordered.
    let mut times: Vec<Ts> = series.iter().flat_map(|(_, pts)| pts.iter().map(|p| p.0)).collect();
    times.sort_unstable();
    times.dedup();
    for t in times {
        out.push_str(&t.0.to_string());
        for (_, pts) in series {
            out.push(',');
            if let Ok(idx) = pts.binary_search_by_key(&t, |p| p.0) {
                out.push_str(&format_value(pts[idx].1));
            }
        }
        out.push('\n');
    }
    out
}

/// Render a generic table (header + rows) as CSV.
pub fn table_to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// A labelled series, as produced by parsing.
pub type LabelledSeries = (String, Vec<(Ts, f64)>);

/// Parse CSV produced by [`series_to_csv`] back into labelled series.
pub fn parse_series_csv(csv: &str) -> Option<Vec<LabelledSeries>> {
    let mut lines = csv.lines();
    let header = lines.next()?;
    let labels: Vec<&str> = header.split(',').skip(1).collect();
    let mut series: Vec<LabelledSeries> =
        labels.iter().map(|l| (unescape(l), Vec::new())).collect();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let mut cells = line.split(',');
        let t: u64 = cells.next()?.parse().ok()?;
        for (i, cell) in cells.enumerate() {
            if cell.is_empty() {
                continue;
            }
            let v: f64 = cell.parse().ok()?;
            series.get_mut(i)?.1.push((Ts(t), v));
        }
    }
    Some(series)
}

fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

fn unescape(s: &str) -> String {
    let t = s.trim();
    if t.starts_with('"') && t.ends_with('"') && t.len() >= 2 {
        t[1..t.len() - 1].replace("\"\"", "\"")
    } else {
        t.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(vals: &[(u64, f64)]) -> Vec<(Ts, f64)> {
        vals.iter().map(|&(t, v)| (Ts(t), v)).collect()
    }

    #[test]
    fn single_series_round_trip() {
        let series = vec![("power".to_owned(), pts(&[(0, 100.0), (60_000, 150.5)]))];
        let csv = series_to_csv(&series);
        assert!(csv.starts_with("time_ms,power\n"));
        assert!(csv.contains("0,100\n"));
        assert!(csv.contains("60000,150.5\n"));
        let back = parse_series_csv(&csv).unwrap();
        assert_eq!(back, series);
    }

    #[test]
    fn multiple_series_align_on_time_union() {
        let series = vec![
            ("a".to_owned(), pts(&[(0, 1.0), (1_000, 2.0)])),
            ("b".to_owned(), pts(&[(1_000, 20.0), (2_000, 30.0)])),
        ];
        let csv = series_to_csv(&series);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1], "0,1,");
        assert_eq!(lines[2], "1000,2,20");
        assert_eq!(lines[3], "2000,,30");
        let back = parse_series_csv(&csv).unwrap();
        assert_eq!(back, series);
    }

    #[test]
    fn labels_with_commas_are_quoted() {
        let series = vec![("cpu, mean".to_owned(), pts(&[(0, 1.0)]))];
        let csv = series_to_csv(&series);
        assert!(csv.contains("\"cpu, mean\""));
        // Note: parse_series_csv is spec'd for comma-free labels; quoting
        // protects spreadsheet import, which is the download use case.
    }

    #[test]
    fn empty_series_list() {
        let csv = series_to_csv(&[]);
        assert_eq!(csv, "time_ms\n");
        assert_eq!(parse_series_csv(&csv).unwrap(), vec![]);
    }

    #[test]
    fn table_export() {
        let csv = table_to_csv(
            &["node", "read B/s"],
            &[vec!["node/12".into(), "3.2e9".into()], vec!["node/7".into(), "1.1e9".into()]],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "node,read B/s");
        assert_eq!(lines[1], "node/12,3.2e9");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn garbage_csv_rejected() {
        assert!(parse_series_csv("").is_none());
        assert!(parse_series_csv("time_ms,a\nnotanumber,1\n").is_none());
        assert!(parse_series_csv("time_ms,a\n5,notanumber\n").is_none());
    }

    #[test]
    fn float_precision_survives() {
        let series = vec![("x".to_owned(), pts(&[(0, std::f64::consts::PI)]))];
        let back = parse_series_csv(&series_to_csv(&series)).unwrap();
        assert_eq!(back[0].1[0].1, std::f64::consts::PI);
    }
}
