//! Terminal line charts and sparklines.

use hpcmon_metrics::Ts;

/// Unicode block ramp used by [`sparkline`].
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render values as a one-line sparkline (empty input → empty string).
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * (BLOCKS.len() - 1) as f64).round() as usize;
            BLOCKS[idx.min(BLOCKS.len() - 1)]
        })
        .collect()
}

/// A multi-series text line chart with axes and a legend.
///
/// ```
/// use hpcmon_viz::LineChart;
/// use hpcmon_metrics::Ts;
///
/// let points: Vec<(Ts, f64)> = (0..30).map(|m| (Ts::from_mins(m), m as f64)).collect();
/// let text = LineChart::new("Queue depth", 40, 6)
///     .with_unit("jobs")
///     .add_series("queued", points)
///     .render();
/// assert!(text.contains("Queue depth"));
/// assert!(text.contains("[jobs]"));
/// ```
pub struct LineChart {
    title: String,
    width: usize,
    height: usize,
    unit: String,
    series: Vec<(String, Vec<(Ts, f64)>)>,
    /// Optional vertical marker timestamps (e.g. detected onsets).
    markers: Vec<Ts>,
}

/// Glyphs assigned to series in order.
const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

impl LineChart {
    /// A chart of the given plot-area size (columns × rows).
    pub fn new(title: &str, width: usize, height: usize) -> LineChart {
        assert!(width >= 10 && height >= 3, "chart too small to be legible");
        LineChart {
            title: title.to_owned(),
            width,
            height,
            unit: String::new(),
            series: Vec::new(),
            markers: Vec::new(),
        }
    }

    /// Set the y-axis unit label.
    pub fn with_unit(mut self, unit: &str) -> LineChart {
        self.unit = unit.to_owned();
        self
    }

    /// Add a series.
    pub fn add_series(mut self, label: &str, points: Vec<(Ts, f64)>) -> LineChart {
        self.series.push((label.to_owned(), points));
        self
    }

    /// Add a vertical marker (rendered as `|`).
    pub fn add_marker(mut self, ts: Ts) -> LineChart {
        self.markers.push(ts);
        self
    }

    /// Render to text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let all: Vec<(Ts, f64)> =
            self.series.iter().flat_map(|(_, pts)| pts.iter().copied()).collect();
        if all.is_empty() {
            out.push_str("  (no data)\n");
            return out;
        }
        let t_min = all.iter().map(|p| p.0).min().expect("non-empty");
        let t_max = all.iter().map(|p| p.0).max().expect("non-empty");
        let v_min = all.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let v_max = all.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let v_span = (v_max - v_min).max(1e-12);
        let t_span = (t_max.0 - t_min.0).max(1) as f64;

        let mut grid = vec![vec![' '; self.width]; self.height];
        // Markers first so data overdraws them.
        for &m in &self.markers {
            if m >= t_min && m <= t_max {
                let col =
                    (((m.0 - t_min.0) as f64 / t_span) * (self.width - 1) as f64).round() as usize;
                for row in grid.iter_mut() {
                    row[col] = '|';
                }
            }
        }
        for (si, (_, pts)) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(t, v) in pts {
                let col =
                    (((t.0 - t_min.0) as f64 / t_span) * (self.width - 1) as f64).round() as usize;
                let rowf = ((v - v_min) / v_span) * (self.height - 1) as f64;
                let row = self.height - 1 - rowf.round() as usize;
                grid[row][col.min(self.width - 1)] = glyph;
            }
        }
        let label_w = 12;
        for (i, row) in grid.iter().enumerate() {
            let value = v_max - (i as f64 / (self.height - 1) as f64) * v_span;
            let label = if i == 0 || i == self.height - 1 || i == self.height / 2 {
                format!("{:>10.2} |", value)
            } else {
                format!("{:>10} |", "")
            };
            out.push_str(&label);
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&" ".repeat(label_w));
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "{:label_w$}{} .. {}   [{}]\n",
            "",
            t_min.display_hms(),
            t_max.display_hms(),
            self.unit
        ));
        for (si, (label, _)) in self.series.iter().enumerate() {
            out.push_str(&format!("{:label_w$}{} {}\n", "", GLYPHS[si % GLYPHS.len()], label));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: u64) -> Vec<(Ts, f64)> {
        (0..n).map(|i| (Ts::from_mins(i), i as f64)).collect()
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
        // Constant series renders at the floor, not NaN garbage.
        let flat = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(flat.chars().count(), 3);
    }

    #[test]
    fn chart_renders_axes_and_legend() {
        let chart = LineChart::new("Power", 40, 8).with_unit("W").add_series("total", ramp(30));
        let text = chart.render();
        assert!(text.starts_with("Power\n"));
        assert!(text.contains('*'), "series glyph plotted");
        assert!(text.contains("[W]"));
        assert!(text.contains("total"));
        assert!(text.contains("29.00"), "max label present");
        assert!(text.contains("0.00"), "min label present");
    }

    #[test]
    fn empty_chart_says_no_data() {
        let chart = LineChart::new("empty", 20, 4);
        assert!(chart.render().contains("(no data)"));
    }

    #[test]
    fn two_series_use_distinct_glyphs() {
        let chart = LineChart::new("two", 30, 6)
            .add_series("a", ramp(10))
            .add_series("b", (0..10).map(|i| (Ts::from_mins(i), 9.0 - i as f64)).collect());
        let text = chart.render();
        assert!(text.contains('*'));
        assert!(text.contains('o'));
    }

    #[test]
    fn marker_renders_as_vertical_bar() {
        let chart =
            LineChart::new("m", 30, 6).add_series("a", ramp(10)).add_marker(Ts::from_mins(5));
        let text = chart.render();
        assert!(text.contains('|'), "marker column drawn");
    }

    #[test]
    fn marker_outside_range_is_ignored() {
        let chart =
            LineChart::new("m", 30, 6).add_series("a", ramp(10)).add_marker(Ts::from_mins(99));
        // Only axis '|' characters from labels appear, not a full column:
        // count rows whose plot area contains '|'.
        let text = chart.render();
        let plot_bars =
            text.lines().skip(1).take(6).filter(|l| l.len() > 13 && l[13..].contains('|')).count();
        assert_eq!(plot_bars, 0);
    }

    #[test]
    fn constant_series_renders() {
        let pts: Vec<(Ts, f64)> = (0..5).map(|i| (Ts::from_mins(i), 7.0)).collect();
        let text = LineChart::new("flat", 20, 4).add_series("c", pts).render();
        assert!(text.contains('*'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_chart_rejected() {
        LineChart::new("x", 2, 1);
    }
}
