//! SVG plot images — the downloadable "plot image" half of the NCSA data
//! release flow.

use hpcmon_metrics::Ts;

/// Stroke colors assigned to series in order.
const COLORS: [&str; 6] = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"];

/// Render labelled series as a standalone SVG line chart.
pub fn svg_line_chart(
    title: &str,
    unit: &str,
    width: u32,
    height: u32,
    series: &[(String, Vec<(Ts, f64)>)],
) -> String {
    let all: Vec<(Ts, f64)> = series.iter().flat_map(|(_, p)| p.iter().copied()).collect();
    let margin = 40.0;
    let plot_w = width as f64 - 2.0 * margin;
    let plot_h = height as f64 - 2.0 * margin;
    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" viewBox=\"0 0 {width} {height}\">\n"
    );
    out.push_str(&format!(
        "  <text x=\"{margin}\" y=\"20\" font-family=\"sans-serif\" font-size=\"14\">{}</text>\n",
        xml_escape(title)
    ));
    if all.is_empty() {
        out.push_str("  <text x=\"50%\" y=\"50%\" text-anchor=\"middle\">no data</text>\n</svg>\n");
        return out;
    }
    let t_min = all.iter().map(|p| p.0 .0).min().expect("non-empty") as f64;
    let t_max = all.iter().map(|p| p.0 .0).max().expect("non-empty") as f64;
    let v_min = all.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let v_max = all.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let t_span = (t_max - t_min).max(1.0);
    let v_span = (v_max - v_min).max(1e-12);
    // Axes.
    out.push_str(&format!(
        "  <rect x=\"{margin}\" y=\"{margin}\" width=\"{plot_w}\" height=\"{plot_h}\" fill=\"none\" stroke=\"#999\"/>\n"
    ));
    out.push_str(&format!(
        "  <text x=\"{margin}\" y=\"{}\" font-family=\"sans-serif\" font-size=\"10\">{} {}</text>\n",
        margin - 5.0,
        format_compact(v_max),
        xml_escape(unit)
    ));
    out.push_str(&format!(
        "  <text x=\"{margin}\" y=\"{}\" font-family=\"sans-serif\" font-size=\"10\">{} {}</text>\n",
        height as f64 - margin + 12.0,
        format_compact(v_min),
        xml_escape(unit)
    ));
    for (si, (label, pts)) in series.iter().enumerate() {
        if pts.is_empty() {
            continue;
        }
        let color = COLORS[si % COLORS.len()];
        let coords: Vec<String> = pts
            .iter()
            .map(|&(t, v)| {
                let x = margin + (t.0 as f64 - t_min) / t_span * plot_w;
                let y = margin + (1.0 - (v - v_min) / v_span) * plot_h;
                format!("{x:.1},{y:.1}")
            })
            .collect();
        out.push_str(&format!(
            "  <polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\" points=\"{}\"/>\n",
            coords.join(" ")
        ));
        out.push_str(&format!(
            "  <text x=\"{}\" y=\"{}\" font-family=\"sans-serif\" font-size=\"10\" fill=\"{color}\">{}</text>\n",
            margin + 5.0,
            margin + 14.0 + 12.0 * si as f64,
            xml_escape(label)
        ));
    }
    out.push_str("</svg>\n");
    out
}

pub(crate) fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn format_compact(v: f64) -> String {
    if v.abs() >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if v.abs() >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v.abs() >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: u64) -> Vec<(Ts, f64)> {
        (0..n).map(|i| (Ts::from_mins(i), (i * i) as f64)).collect()
    }

    #[test]
    fn valid_svg_structure() {
        let svg = svg_line_chart("Power", "W", 640, 480, &[("total".to_owned(), pts(20))]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("total"));
        assert!(svg.contains("Power"));
        assert_eq!(svg.matches("<polyline").count(), 1);
    }

    #[test]
    fn multiple_series_get_distinct_colors() {
        let svg = svg_line_chart(
            "x",
            "",
            640,
            480,
            &[("a".to_owned(), pts(5)), ("b".to_owned(), pts(5))],
        );
        assert!(svg.contains(COLORS[0]));
        assert!(svg.contains(COLORS[1]));
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn empty_chart_is_still_valid() {
        let svg = svg_line_chart("e", "", 100, 100, &[]);
        assert!(svg.contains("no data"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn title_is_escaped() {
        let svg = svg_line_chart("a < b & c", "", 100, 100, &[]);
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn coordinates_stay_in_viewbox() {
        let svg = svg_line_chart("x", "", 200, 100, &[("s".to_owned(), pts(50))]);
        let points_attr = svg
            .lines()
            .find(|l| l.contains("points="))
            .and_then(|l| l.split("points=\"").nth(1))
            .and_then(|s| s.split('"').next())
            .unwrap();
        for pair in points_attr.split(' ') {
            let (x, y) = pair.split_once(',').unwrap();
            let x: f64 = x.parse().unwrap();
            let y: f64 = y.parse().unwrap();
            assert!((0.0..=200.0).contains(&x));
            assert!((0.0..=100.0).contains(&y));
        }
    }

    #[test]
    fn compact_labels() {
        assert_eq!(format_compact(2.5e9), "2.5G");
        assert_eq!(format_compact(3.0e6), "3.0M");
        assert_eq!(format_compact(1_500.0), "1.5k");
        assert_eq!(format_compact(7.0), "7.0");
    }
}
