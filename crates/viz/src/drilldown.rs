//! Aggregate-to-drill-down views (Figure 4).
//!
//! "Here high values of system aggregate I/O metrics (top) drives further
//! investigation into the nodes, and hence, the job responsible for the
//! I/O" — while "limiting screen real-estate requirements."  A
//! [`DrilldownView`] is exactly that: the aggregate chart on top, the
//! top-k component table at the selected instant below, and the attributed
//! job at the bottom.

use crate::chart::LineChart;
use crate::csv::table_to_csv;
use hpcmon_metrics::{CompId, JobRecord, Ts};

/// The assembled view.
pub struct DrilldownView {
    title: String,
    unit: String,
    aggregate: Vec<(Ts, f64)>,
    selected: Ts,
    top: Vec<(CompId, f64)>,
    attributed: Option<JobRecord>,
}

impl DrilldownView {
    /// Build from query results.
    pub fn new(
        title: &str,
        unit: &str,
        aggregate: Vec<(Ts, f64)>,
        selected: Ts,
        top: Vec<(CompId, f64)>,
        attributed: Option<JobRecord>,
    ) -> DrilldownView {
        DrilldownView {
            title: title.to_owned(),
            unit: unit.to_owned(),
            aggregate,
            selected,
            top,
            attributed,
        }
    }

    /// The timestamp of the aggregate's maximum (the natural drill-down
    /// point); `None` when the series is empty.
    pub fn peak_of(aggregate: &[(Ts, f64)]) -> Option<Ts> {
        aggregate.iter().max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN")).map(|p| p.0)
    }

    /// Render to text.
    pub fn render(&self) -> String {
        let mut out = LineChart::new(&self.title, 64, 10)
            .with_unit(&self.unit)
            .add_series("aggregate", self.aggregate.clone())
            .add_marker(self.selected)
            .render();
        out.push_str(&format!("\nDrill-down at {}:\n", self.selected.display_hms()));
        if self.top.is_empty() {
            out.push_str("  (no component data)\n");
        }
        for (i, (comp, value)) in self.top.iter().enumerate() {
            out.push_str(&format!(
                "  {:>2}. {:<12} {:>14.3e} {}\n",
                i + 1,
                comp.path(),
                value,
                self.unit
            ));
        }
        match &self.attributed {
            Some(job) => out.push_str(&format!(
                "\nAttributed to job {} ({}, user {}, {} nodes)\n",
                job.id.0,
                job.name,
                job.user,
                job.nodes.len()
            )),
            None => out.push_str("\nNo job attribution.\n"),
        }
        out
    }

    /// The drill-down table as CSV (the data-download path).
    pub fn table_csv(&self) -> String {
        let rows: Vec<Vec<String>> =
            self.top.iter().map(|(c, v)| vec![c.path(), format!("{v}")]).collect();
        table_to_csv(&["component", "value"], &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::{JobId, JobState};

    fn job() -> JobRecord {
        JobRecord {
            id: JobId(42),
            user: "carol".into(),
            name: "io_storm".into(),
            nodes: vec![4, 5, 6],
            submit: Ts::ZERO,
            start: Some(Ts::from_mins(2)),
            end: None,
            state: JobState::Running,
        }
    }

    fn view() -> DrilldownView {
        let aggregate: Vec<(Ts, f64)> =
            (0..30).map(|i| (Ts::from_mins(i), if i == 20 { 5e9 } else { 1e8 })).collect();
        let peak = DrilldownView::peak_of(&aggregate).unwrap();
        DrilldownView::new(
            "FS read B/s",
            "B/s",
            aggregate,
            peak,
            vec![(CompId::node(5), 2e9), (CompId::node(4), 1.8e9), (CompId::node(6), 1.2e9)],
            Some(job()),
        )
    }

    #[test]
    fn peak_detection() {
        let agg = vec![(Ts(0), 1.0), (Ts(10), 9.0), (Ts(20), 3.0)];
        assert_eq!(DrilldownView::peak_of(&agg), Some(Ts(10)));
        assert_eq!(DrilldownView::peak_of(&[]), None);
    }

    #[test]
    fn render_contains_all_three_layers() {
        let text = view().render();
        assert!(text.contains("FS read B/s"), "aggregate chart");
        assert!(text.contains("Drill-down at 000:20:00"));
        assert!(text.contains("node/5"), "top component listed first");
        assert!(text.contains("Attributed to job 42"));
        assert!(text.contains("carol"));
        // Ranked order preserved.
        let n5 = text.find("node/5").unwrap();
        let n6 = text.find("node/6").unwrap();
        assert!(n5 < n6);
    }

    #[test]
    fn render_without_attribution() {
        let v = DrilldownView::new("x", "B/s", vec![(Ts(0), 1.0)], Ts(0), vec![], None);
        let text = v.render();
        assert!(text.contains("No job attribution"));
        assert!(text.contains("(no component data)"));
    }

    #[test]
    fn table_csv_export() {
        let csv = view().table_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "component,value");
        assert!(lines[1].starts_with("node/5,"));
        assert_eq!(lines.len(), 4);
    }
}
