//! Declarative, shareable dashboard configurations.
//!
//! "Grafana is currently a popular first order solution, due to its ease
//! of configuration, ability to graph live data, and ability to copy and
//! share dashboard configurations" (paper §III-B).  A [`Dashboard`] is the
//! shareable config: panels reference metrics *by name*, so a config built
//! at one site renders at another against that site's own registry and
//! store.

use crate::chart::LineChart;
use crate::heatmap::CabinetHeatmap;
use hpcmon_metrics::{CompKind, MetricRegistry};
use hpcmon_store::{AggFn, QueryEngine, TimeRange, TimeSeriesStore};
use serde::{Deserialize, Serialize};

/// What a panel shows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PanelKind {
    /// The across-component aggregate of a metric as a line chart.
    AggregateLine {
        /// Aggregation across components per tick.
        agg: AggFn,
    },
    /// The latest per-cabinet values of a metric as a heatmap.
    CabinetHeatmap {
        /// Cabinets per rendered row.
        columns: usize,
    },
    /// The current top-k components by latest value, as a table.
    TopK {
        /// Rows to show.
        k: usize,
    },
}

/// One panel: a title, a metric (by name), and a presentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelSpec {
    /// Panel title.
    pub title: String,
    /// Metric name as registered (e.g. `power.cabinet_w`).
    pub metric: String,
    /// Presentation.
    pub kind: PanelKind,
}

/// A shareable dashboard config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dashboard {
    /// Dashboard title.
    pub title: String,
    /// Panels in render order.
    pub panels: Vec<PanelSpec>,
}

impl Dashboard {
    /// The default operations dashboard.
    pub fn ops_default() -> Dashboard {
        Dashboard {
            title: "System overview".into(),
            panels: vec![
                PanelSpec {
                    title: "Total power".into(),
                    metric: "power.system_w".into(),
                    kind: PanelKind::AggregateLine { agg: AggFn::Sum },
                },
                PanelSpec {
                    title: "Cabinet power".into(),
                    metric: "power.cabinet_w".into(),
                    kind: PanelKind::CabinetHeatmap { columns: 8 },
                },
                PanelSpec {
                    title: "Queue depth".into(),
                    metric: "sched.queue_depth".into(),
                    kind: PanelKind::AggregateLine { agg: AggFn::Mean },
                },
                PanelSpec {
                    title: "Hottest links".into(),
                    metric: "hsn.link.utilization".into(),
                    kind: PanelKind::TopK { k: 5 },
                },
            ],
        }
    }

    /// Serialize for sharing.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("dashboard is serializable")
    }

    /// Load a shared config.
    pub fn from_json(json: &str) -> Result<Dashboard, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Render every panel against a store for a time range.  Panels whose
    /// metric is unknown render an explanatory stub instead of failing —
    /// a dashboard copied from another site may reference sources this
    /// site does not collect.
    pub fn render(
        &self,
        store: &TimeSeriesStore,
        registry: &MetricRegistry,
        range: TimeRange,
    ) -> String {
        let q = QueryEngine::new(store);
        let mut out = format!("=== {} ===\n\n", self.title);
        for panel in &self.panels {
            let Some(metric) = registry.lookup(&panel.metric) else {
                out.push_str(&format!(
                    "{}\n  (metric {:?} not collected at this site)\n\n",
                    panel.title, panel.metric
                ));
                continue;
            };
            match &panel.kind {
                PanelKind::AggregateLine { agg } => {
                    let pts = q.aggregate_across_components(metric, range, *agg);
                    out.push_str(
                        &LineChart::new(&panel.title, 64, 8)
                            .with_unit(
                                registry
                                    .meta(metric)
                                    .map(|m| m.unit.suffix().to_owned())
                                    .unwrap_or_default()
                                    .as_str(),
                            )
                            .add_series(&panel.metric, pts)
                            .render(),
                    );
                }
                PanelKind::CabinetHeatmap { columns } => {
                    let comps = q.components_of_kind(metric, CompKind::Cabinet, range);
                    let mut latest: Vec<(u32, f64)> = comps
                        .iter()
                        .filter_map(|(c, pts)| pts.last().map(|&(_, v)| (c.index, v)))
                        .collect();
                    latest.sort_by_key(|&(i, _)| i);
                    let values: Vec<f64> = latest.iter().map(|&(_, v)| v).collect();
                    out.push_str(&CabinetHeatmap::new(&panel.title, *columns, values).render());
                }
                PanelKind::TopK { k } => {
                    let rows = q.top_components_at(metric, range.to, u64::MAX, *k);
                    out.push_str(&format!("{}\n", panel.title));
                    if rows.is_empty() {
                        out.push_str("  (no data)\n");
                    }
                    for (i, (comp, v)) in rows.iter().enumerate() {
                        out.push_str(&format!("  {:>2}. {:<12} {v:.4}\n", i + 1, comp.path()));
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::{CompId, Sample, Ts, Unit};

    fn setup() -> (TimeSeriesStore, MetricRegistry) {
        let store = TimeSeriesStore::new();
        let registry = MetricRegistry::new();
        let sys = registry.register("power.system_w", Unit::Watts, "total");
        let cab = registry.register("power.cabinet_w", Unit::Watts, "per cabinet");
        let util = registry.register("hsn.link.utilization", Unit::Ratio, "util");
        for m in 0..10u64 {
            store.insert(&Sample::new(sys, CompId::SYSTEM, Ts::from_mins(m), 50_000.0 + m as f64));
            for c in 0..4u32 {
                store.insert(&Sample::new(
                    cab,
                    CompId::cabinet(c),
                    Ts::from_mins(m),
                    10_000.0 * (c + 1) as f64,
                ));
            }
            for l in 0..6u32 {
                store.insert(&Sample::new(
                    util,
                    CompId::link(l),
                    Ts::from_mins(m),
                    l as f64 / 10.0,
                ));
            }
        }
        (store, registry)
    }

    fn dash() -> Dashboard {
        Dashboard {
            title: "test".into(),
            panels: vec![
                PanelSpec {
                    title: "Total power".into(),
                    metric: "power.system_w".into(),
                    kind: PanelKind::AggregateLine { agg: AggFn::Sum },
                },
                PanelSpec {
                    title: "Cabinets".into(),
                    metric: "power.cabinet_w".into(),
                    kind: PanelKind::CabinetHeatmap { columns: 4 },
                },
                PanelSpec {
                    title: "Top links".into(),
                    metric: "hsn.link.utilization".into(),
                    kind: PanelKind::TopK { k: 3 },
                },
            ],
        }
    }

    #[test]
    fn render_all_panel_kinds() {
        let (store, registry) = setup();
        let text = dash().render(&store, &registry, TimeRange::all());
        assert!(text.contains("=== test ==="));
        assert!(text.contains("Total power"));
        assert!(text.contains("[W]"));
        assert!(text.contains("Cabinets"));
        assert!(text.contains("scale:"));
        assert!(text.contains("Top links"));
        assert!(text.contains("link/5"), "highest-utilization link listed");
        // Top-k respects k.
        assert!(!text.contains("link/1\n"), "k=3 keeps only links 5,4,3");
    }

    #[test]
    fn unknown_metric_renders_stub() {
        let (store, registry) = setup();
        let d = Dashboard {
            title: "foreign".into(),
            panels: vec![PanelSpec {
                title: "GPU temp".into(),
                metric: "gpu.temp_c".into(),
                kind: PanelKind::TopK { k: 3 },
            }],
        };
        let text = d.render(&store, &registry, TimeRange::all());
        assert!(text.contains("not collected at this site"));
    }

    #[test]
    fn config_shares_via_json() {
        let d = Dashboard::ops_default();
        let json = d.to_json();
        let back = Dashboard::from_json(&json).unwrap();
        assert_eq!(d, back);
        assert!(Dashboard::from_json("{broken").is_err());
    }

    #[test]
    fn ops_default_is_renderable() {
        let (store, registry) = setup();
        // Registry lacks sched.queue_depth: that panel stubs, others render.
        let text = Dashboard::ops_default().render(&store, &registry, TimeRange::all());
        assert!(text.contains("Total power"));
        assert!(text.contains("not collected"));
    }
}
