#![warn(missing_docs)]

//! `hpcmon-viz` — dashboards, charts, and data export.
//!
//! The paper's sites converge on the same visualization needs (§III-B):
//! Grafana-style live dashboards; "reduced dimensionality through
//! higher-level aggregations ... coupled with drill-down capabilities";
//! per-job multi-metric panels with sum/mean condensation (Figure 5); and
//! "the ability to download both plot images and the associated CSV
//! formatted data ... to enable controlled release of data to users."
//!
//! All renderers here produce plain text (terminal dashboards) or SVG
//! (plot images); [`csv`] handles the data-download path; [`dashboard`]
//! holds declarative, serializable dashboard configs — "ability to copy
//! and share dashboard configurations" is what made Grafana popular at the
//! sites.

pub mod chart;
pub mod csv;
pub mod dashboard;
pub mod drilldown;
pub mod health;
pub mod heatmap;
pub mod panels;
pub mod report;
pub mod status;
pub mod svg;
pub mod trace;

pub use chart::{sparkline, LineChart};
pub use csv::{series_to_csv, table_to_csv};
pub use dashboard::{Dashboard, PanelKind, PanelSpec};
pub use drilldown::DrilldownView;
pub use health::{health_board_json, render_health_board};
pub use heatmap::CabinetHeatmap;
pub use panels::JobPanel;
pub use report::{AlertSummary, OpsReport};
pub use status::{ClassStatus, StatusBoard};
pub use svg::svg_line_chart;
pub use trace::{render_span_tree, svg_trace_timeline};
