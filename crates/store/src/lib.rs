#![warn(missing_docs)]

//! `hpcmon-store` — storage for monitoring data.
//!
//! Table I (Data Storage and Formats): *"Easy access to historical data and
//! the ability to access historical data in conjunction with current data
//! is required ... hierarchical storage models with the ability to locate
//! and reload data as needed are desirable.  Analysis results should be
//! able to be stored with raw data."*
//!
//! The pieces:
//!
//! * [`compress`] — delta-of-delta timestamps + Gorilla XOR floats; regular
//!   one-minute cadences compress to ~2 bytes/sample.
//! * [`tsdb::TimeSeriesStore`] — sharded hot buffers that seal into
//!   compressed warm blocks; one store holds raw metrics *and* analysis
//!   outputs (they are just more series).
//! * [`archive::Archive`] — the cold tier: whole time ranges serialized
//!   out, catalogued, and reloadable into the query path.
//! * [`logstore::LogStore`] — append-only log storage with a token inverted
//!   index and a full-scan fallback (the `abl_logindex` ablation measures
//!   the difference).
//! * [`query`] — range scans, group-by, per-bucket aggregation,
//!   downsampling, and per-job extraction against stored allocations.

pub mod archive;
pub mod compress;
pub mod logstore;
pub mod query;
pub mod retention;
pub mod tsdb;

pub use archive::{Archive, ArchiveCatalog, ArchiveError, ArchiveOpCounts};
pub use logstore::{LogQuery, LogStore};
pub use query::{AggFn, InvalidParam, JobSeries, QueryEngine, TimeRange};
pub use retention::{RetentionPolicy, RetentionReport};
pub use tsdb::{
    BlockError, IngestRoute, SeriesBlock, SeriesSnapshot, StoreOpCounts, StoreSnapshot, StoreStats,
    TimeSeriesStore, WriteError,
};
