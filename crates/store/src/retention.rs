//! Retention policies over the tiered store.
//!
//! Table I: "We will need to keep all data" — but not all of it in the
//! performant tier.  A [`RetentionPolicy`] drives the standard lifecycle:
//! recent data stays hot/warm, older data is archived (still locatable and
//! reloadable), and — only if a site configures it — data beyond a hard
//! horizon is purged.

use crate::archive::{Archive, ArchiveCatalog};
use crate::tsdb::TimeSeriesStore;
use hpcmon_metrics::Ts;
use serde::{Deserialize, Serialize};

/// What to keep where, expressed as ages relative to "now".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// Data younger than this stays in the performant (hot/warm) tier, ms.
    pub keep_performant_ms: u64,
    /// Data older than this is purged from the archive entirely
    /// (`None` = keep forever, the paper's default desire).
    pub purge_after_ms: Option<u64>,
    /// When set, archived data leaves behind a mean-downsampled rollup at
    /// this bucket size in the performant tier (the RRDtool pattern:
    /// "all storage does not have to be equally performant" — old data
    /// stays queryable at coarse resolution without touching the archive).
    pub rollup_bucket_ms: Option<u64>,
}

impl RetentionPolicy {
    /// Keep one simulated week performant, everything forever.
    pub fn week_performant() -> RetentionPolicy {
        RetentionPolicy {
            keep_performant_ms: 7 * 24 * 3_600_000,
            purge_after_ms: None,
            rollup_bucket_ms: None,
        }
    }

    /// Enable rollups at `bucket_ms` for archived data.
    pub fn with_rollup(mut self, bucket_ms: u64) -> RetentionPolicy {
        assert!(bucket_ms > 0);
        self.rollup_bucket_ms = Some(bucket_ms);
        self
    }

    /// Outcome of one enforcement pass.
    pub fn enforce(
        &self,
        now: Ts,
        store: &TimeSeriesStore,
        archive: &mut Archive,
    ) -> RetentionReport {
        let archive_cutoff = now.sub_ms(self.keep_performant_ms);
        let archived: Option<ArchiveCatalog> = if archive_cutoff > Ts::ZERO {
            store.seal_all();
            let blocks = store.evict_warm_before(archive_cutoff);
            if blocks.is_empty() {
                None
            } else {
                // Leave coarse rollups behind before the blocks go cold.
                if let Some(bucket) = self.rollup_bucket_ms {
                    for block in &blocks {
                        // A corrupt block carries no points to roll up;
                        // the reload path counts it when it comes back.
                        let Ok(pts) = block.decompress() else { continue };
                        // `with_rollup` rejects zero buckets, so this cannot
                        // fail; an empty rollup is the safe fallback.
                        for (t, v) in crate::query::QueryEngine::downsample_points(
                            &pts,
                            bucket,
                            crate::query::AggFn::Mean,
                        )
                        .unwrap_or_default()
                        {
                            store.insert(&hpcmon_metrics::Sample {
                                key: block.key,
                                ts: t,
                                value: v,
                            });
                        }
                    }
                }
                // Non-empty by the guard above; a refusal would mean an
                // archiver bug, and losing the catalog entry is the safe
                // degradation (the counter records it).
                archive.file_segment(blocks).ok()
            }
        } else {
            None
        };
        let mut purged = 0usize;
        if let Some(purge_ms) = self.purge_after_ms {
            let purge_cutoff = now.sub_ms(purge_ms);
            let doomed: Vec<u32> = archive
                .catalog()
                .into_iter()
                .filter(|c| c.end < purge_cutoff)
                .map(|c| c.segment)
                .collect();
            for seg in doomed {
                if archive.purge(seg) {
                    purged += 1;
                }
            }
        }
        RetentionReport { archived, purged_segments: purged }
    }
}

/// What an enforcement pass did.
#[derive(Debug, Clone, PartialEq)]
pub struct RetentionReport {
    /// The newly created archive segment, if anything aged out.
    pub archived: Option<ArchiveCatalog>,
    /// Archive segments purged past the hard horizon.
    pub purged_segments: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::{CompId, MetricId, Sample, SeriesKey};

    fn fill(store: &TimeSeriesStore, minutes: std::ops::Range<u64>) {
        for m in minutes {
            store.insert(&Sample::new(MetricId(0), CompId::node(0), Ts::from_mins(m), m as f64));
        }
    }

    fn key() -> SeriesKey {
        SeriesKey::new(MetricId(0), CompId::node(0))
    }

    #[test]
    fn young_data_stays_put() {
        let store = TimeSeriesStore::with_options(2, 16);
        fill(&store, 0..60);
        let mut archive = Archive::new();
        let policy = RetentionPolicy {
            keep_performant_ms: 2 * 3_600_000,
            purge_after_ms: None,
            rollup_bucket_ms: None,
        };
        let report = policy.enforce(Ts::from_mins(60), &store, &mut archive);
        assert!(report.archived.is_none());
        assert_eq!(store.query(key(), Ts::ZERO, Ts(u64::MAX)).len(), 60);
    }

    #[test]
    fn old_data_moves_to_archive_but_stays_reachable() {
        let store = TimeSeriesStore::with_options(2, 16);
        fill(&store, 0..240);
        let mut archive = Archive::new();
        let policy = RetentionPolicy {
            keep_performant_ms: 3_600_000,
            purge_after_ms: None,
            rollup_bucket_ms: None,
        };
        let now = Ts::from_mins(240);
        let report = policy.enforce(now, &store, &mut archive);
        let cat = report.archived.expect("something archived");
        assert!(cat.points > 0);
        // Performant tier is trimmed...
        let remaining = store.query(key(), Ts::ZERO, Ts(u64::MAX)).len();
        assert!(remaining < 240);
        // ...but history is locatable and reloadable.
        assert_eq!(archive.locate(Ts::ZERO, Ts::from_mins(100)).len(), 1);
        archive.reload_into(cat.segment, &store);
        assert_eq!(store.query(key(), Ts::ZERO, Ts(u64::MAX)).len(), 240);
    }

    #[test]
    fn purge_horizon_removes_ancient_segments() {
        let store = TimeSeriesStore::with_options(2, 16);
        let mut archive = Archive::new();
        let policy = RetentionPolicy {
            keep_performant_ms: 3_600_000,
            purge_after_ms: Some(5 * 3_600_000),
            rollup_bucket_ms: None,
        };
        // Two epochs far apart.
        fill(&store, 0..120);
        policy.enforce(Ts::from_mins(180), &store, &mut archive);
        fill(&store, 600..720);
        let report = policy.enforce(Ts::from_mins(780), &store, &mut archive);
        // The first segment (ends minute 119) is more than 5 h older than
        // minute 780, so it is purged.
        assert_eq!(report.purged_segments, 1);
        assert_eq!(archive.catalog().len(), 1, "only the recent segment remains");
    }

    #[test]
    fn keep_forever_never_purges() {
        let store = TimeSeriesStore::with_options(2, 16);
        let mut archive = Archive::new();
        let policy = RetentionPolicy::week_performant();
        fill(&store, 0..60);
        // A month later, archive but never purge.
        let month = Ts(30 * 24 * 3_600_000);
        let report = policy.enforce(month, &store, &mut archive);
        assert!(report.archived.is_some());
        assert_eq!(report.purged_segments, 0);
        let far_future = Ts(365 * 24 * 3_600_000);
        let report = policy.enforce(far_future, &store, &mut archive);
        assert_eq!(report.purged_segments, 0);
        assert_eq!(archive.catalog().len(), 1);
    }

    #[test]
    fn rollup_keeps_coarse_history_in_the_performant_tier() {
        let store = TimeSeriesStore::with_options(2, 16);
        // Minutes 0..120, value = minute.
        fill(&store, 0..120);
        let mut archive = Archive::new();
        let policy = RetentionPolicy {
            keep_performant_ms: 30 * 60_000,
            purge_after_ms: None,
            rollup_bucket_ms: None,
        }
        .with_rollup(60 * 60_000); // hourly rollups
        let report = policy.enforce(Ts::from_mins(120), &store, &mut archive);
        assert!(report.archived.is_some());
        // Raw old points are gone, but hourly means remain queryable.
        let pts = store.query(key(), Ts::ZERO, Ts::from_mins(89));
        assert!(!pts.is_empty(), "rollups present");
        assert!(pts.len() < 90, "coarser than raw: {}", pts.len());
        // First hourly bucket covers minutes 0..59 → mean 29.5ish (bucket
        // membership depends on the seal boundary; just check plausibility).
        let (t0, v0) = pts[0];
        assert_eq!(t0, Ts::ZERO);
        assert!((0.0..60.0).contains(&v0), "mean of first hour: {v0}");
        // Full-resolution history is still in the archive.
        let cat = report.archived.unwrap();
        archive.reload_into(cat.segment, &store);
        let full = store.query(key(), Ts::ZERO, Ts(u64::MAX));
        assert!(full.len() >= 120, "raw + rollups after reload: {}", full.len());
    }

    #[test]
    fn enforce_near_epoch_is_safe() {
        let store = TimeSeriesStore::new();
        let mut archive = Archive::new();
        let policy = RetentionPolicy::week_performant();
        let report = policy.enforce(Ts::from_mins(1), &store, &mut archive);
        assert!(report.archived.is_none());
        assert_eq!(report.purged_segments, 0);
    }
}
