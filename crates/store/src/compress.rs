//! Time-series block compression.
//!
//! Timestamps use zigzag-varint delta-of-delta (a perfectly regular cadence
//! costs one byte per point after the header); values use the Gorilla XOR
//! scheme (Facebook, VLDB'15): identical values cost one bit, values with a
//! stable exponent/mantissa window cost a few bits.  Together they bring a
//! one-minute node-metric stream to roughly 1–3 bytes per sample, which is
//! what makes "keep all data" (Table I) a defensible requirement.

use hpcmon_metrics::Ts;

/// Bit-level writer over a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    // Bits used in the final byte (0..=7); 0 means byte-aligned.
    bit_pos: u8,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Append a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.bit_pos == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (7 - self.bit_pos);
        }
        self.bit_pos = (self.bit_pos + 1) % 8;
    }

    /// Append the low `n` bits of `value`, most significant first.
    pub fn write_bits(&mut self, value: u64, n: u8) {
        assert!(n <= 64);
        for i in (0..n).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Finish, returning the packed bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }
}

/// Bit-level reader over a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Next bit; `None` at end of input.
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8) as u8)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Next `n` bits as an integer (MSB first).
    pub fn read_bits(&mut self, n: u8) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Some(v)
    }
}

// ----- varint / zigzag -----

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

// ----- timestamps: delta-of-delta varint -----

/// Compress a monotone-nondecreasing timestamp sequence.
pub fn compress_timestamps(ts: &[Ts]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ts.len() + 8);
    write_varint(&mut out, ts.len() as u64);
    if ts.is_empty() {
        return out;
    }
    write_varint(&mut out, ts[0].0);
    if ts.len() == 1 {
        return out;
    }
    let first_delta = ts[1].0 as i64 - ts[0].0 as i64;
    write_varint(&mut out, zigzag(first_delta));
    let mut prev_delta = first_delta;
    for w in ts.windows(2).skip(1) {
        let delta = w[1].0 as i64 - w[0].0 as i64;
        write_varint(&mut out, zigzag(delta - prev_delta));
        prev_delta = delta;
    }
    out
}

/// Decompress timestamps written by [`compress_timestamps`].
///
/// Returns `None` on truncated input, overflow, or a cumulative timestamp
/// that goes negative: a corrupt or adversarial block must surface as an
/// error, never silently round-trip to *different* data.
pub fn decompress_timestamps(bytes: &[u8]) -> Option<Vec<Ts>> {
    let mut pos = 0usize;
    let n = read_varint(bytes, &mut pos)? as usize;
    // The length header is attacker/corruption-controlled: never trust it
    // into an allocation.  Each point costs at least one varint byte, so a
    // plausible block carries at least `n` bytes after the header.
    if n > bytes.len() - pos {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    if n == 0 {
        return Some(out);
    }
    let first = read_varint(bytes, &mut pos)?;
    out.push(Ts(first));
    if n == 1 {
        return Some(out);
    }
    let mut delta = unzigzag(read_varint(bytes, &mut pos)?);
    let mut cur = i64::try_from(first).ok()?.checked_add(delta)?;
    if cur < 0 {
        return None;
    }
    out.push(Ts(cur as u64));
    for _ in 2..n {
        let dod = unzigzag(read_varint(bytes, &mut pos)?);
        delta = delta.checked_add(dod)?;
        cur = cur.checked_add(delta)?;
        if cur < 0 {
            return None;
        }
        out.push(Ts(cur as u64));
    }
    Some(out)
}

// ----- values: Gorilla XOR -----

/// Compress a float sequence with the Gorilla XOR scheme.
pub fn compress_values(values: &[f64]) -> Vec<u8> {
    let mut header = Vec::new();
    write_varint(&mut header, values.len() as u64);
    if values.is_empty() {
        return header;
    }
    let mut w = BitWriter::new();
    w.write_bits(values[0].to_bits(), 64);
    let mut prev = values[0].to_bits();
    let mut prev_leading: u8 = 65; // sentinel: no previous window
    let mut prev_trailing: u8 = 0;
    for &v in &values[1..] {
        let bits = v.to_bits();
        let xor = bits ^ prev;
        if xor == 0 {
            w.write_bit(false);
        } else {
            w.write_bit(true);
            let leading = (xor.leading_zeros() as u8).min(31);
            let trailing = xor.trailing_zeros() as u8;
            if prev_leading <= 64 && leading >= prev_leading && trailing >= prev_trailing {
                // Fits the previous window: control bit 0, meaningful bits.
                w.write_bit(false);
                let meaningful = 64 - prev_leading - prev_trailing;
                w.write_bits(xor >> prev_trailing, meaningful);
            } else {
                // New window: control bit 1, 5 bits leading, 6 bits length.
                w.write_bit(true);
                let meaningful = 64 - leading - trailing;
                w.write_bits(leading as u64, 5);
                w.write_bits(meaningful as u64, 6);
                w.write_bits(xor >> trailing, meaningful);
                prev_leading = leading;
                prev_trailing = trailing;
            }
        }
        prev = bits;
    }
    header.extend_from_slice(&w.finish());
    header
}

/// Decompress floats written by [`compress_values`].
pub fn decompress_values(bytes: &[u8]) -> Option<Vec<f64>> {
    let mut pos = 0usize;
    let n = read_varint(bytes, &mut pos)? as usize;
    // Bound the corruption-controlled length by the bit budget actually
    // present: 64 bits for the first value, then at least one bit each.
    if n > 0 && 64usize.saturating_add(n - 1) > (bytes.len() - pos).saturating_mul(8) {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    if n == 0 {
        return Some(out);
    }
    let mut r = BitReader::new(&bytes[pos..]);
    let mut prev = r.read_bits(64)?;
    out.push(f64::from_bits(prev));
    let mut leading: u8 = 0;
    let mut meaningful: u8 = 0;
    for _ in 1..n {
        if !r.read_bit()? {
            out.push(f64::from_bits(prev));
            continue;
        }
        if r.read_bit()? {
            leading = r.read_bits(5)? as u8;
            meaningful = r.read_bits(6)? as u8;
            if meaningful == 0 {
                // 6 bits cannot express 64; 0 encodes a full-width window.
                meaningful = 64;
            }
        }
        let trailing = 64 - leading - meaningful;
        let xor = r.read_bits(meaningful)? << trailing;
        let bits = prev ^ xor;
        out.push(f64::from_bits(bits));
        prev = bits;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bitwriter_round_trip() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bits(0b1011, 4);
        w.write_bits(u64::MAX, 64);
        w.write_bit(false);
        assert_eq!(w.bit_len(), 70);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
        assert_eq!(r.read_bit(), Some(false));
    }

    #[test]
    fn reader_ends_cleanly() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(4), None);
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn empty_and_singleton_series() {
        assert_eq!(decompress_timestamps(&compress_timestamps(&[])).unwrap(), vec![]);
        assert_eq!(decompress_values(&compress_values(&[])).unwrap(), Vec::<f64>::new());
        let one = vec![Ts(99)];
        assert_eq!(decompress_timestamps(&compress_timestamps(&one)).unwrap(), one);
        let onev = vec![std::f64::consts::PI];
        assert_eq!(decompress_values(&compress_values(&onev)).unwrap(), onev);
    }

    #[test]
    fn regular_cadence_is_one_byte_per_point() {
        let ts: Vec<Ts> = (0..1_000).map(Ts::from_mins).collect();
        let bytes = compress_timestamps(&ts);
        // header + first + first delta + 998 single-byte zero dods.
        assert!(bytes.len() < 1_020, "got {} bytes", bytes.len());
        assert_eq!(decompress_timestamps(&bytes).unwrap(), ts);
    }

    #[test]
    fn irregular_timestamps_round_trip() {
        let ts = vec![Ts(0), Ts(7), Ts(7), Ts(1_000_000), Ts(1_000_001)];
        assert_eq!(decompress_timestamps(&compress_timestamps(&ts)).unwrap(), ts);
    }

    #[test]
    fn constant_values_compress_to_bits() {
        let vals = vec![42.5; 10_000];
        let bytes = compress_values(&vals);
        // 64-bit first value + ~1 bit each after.
        assert!(bytes.len() < 1_300, "got {} bytes", bytes.len());
        assert_eq!(decompress_values(&bytes).unwrap(), vals);
    }

    #[test]
    fn slowly_varying_values_compress_well() {
        let vals: Vec<f64> = (0..10_000).map(|i| 200.0 + (i as f64 * 0.01).sin()).collect();
        let bytes = compress_values(&vals);
        let ratio = bytes.len() as f64 / (vals.len() * 8) as f64;
        // Full-precision sin() wiggles most mantissa bits; Gorilla still
        // beats raw by trimming the stable exponent/sign window.
        assert!(ratio < 0.85, "ratio {ratio}");
        let back = decompress_values(&bytes).unwrap();
        assert_eq!(back, vals);
    }

    #[test]
    fn full_width_xor_window() {
        // Values engineered so the XOR has no leading/trailing zeros:
        // meaningful = 64 exercises the 6-bit length wrap encoding.
        let a = f64::from_bits(0x8000_0000_0000_0001);
        let b = f64::from_bits(0x0000_0000_0000_0000);
        let vals = vec![a, b, a, b];
        assert_eq!(decompress_values(&compress_values(&vals)).unwrap(), vals);
    }

    #[test]
    fn special_floats_round_trip() {
        let vals = vec![0.0, -0.0, f64::MIN_POSITIVE, f64::MAX, -f64::MAX, 1e-300];
        let back = decompress_values(&compress_values(&vals)).unwrap();
        assert_eq!(back.len(), vals.len());
        for (x, y) in back.iter().zip(&vals) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn negative_cumulative_timestamp_is_an_error_not_wrong_data() {
        // Hand-encode a block whose second point lands at 10 - 15 = -5.
        // Before the fix this decoded "successfully" to Ts(0) — silently
        // different data; now it must be rejected.
        let mut bytes = Vec::new();
        write_varint(&mut bytes, 2); // n
        write_varint(&mut bytes, 10); // first
        write_varint(&mut bytes, zigzag(-15)); // first delta
        assert_eq!(decompress_timestamps(&bytes), None);

        // Same shape but going negative mid-stream via a delta-of-delta.
        let mut bytes = Vec::new();
        write_varint(&mut bytes, 3); // n
        write_varint(&mut bytes, 100); // first
        write_varint(&mut bytes, zigzag(5)); // 100 -> 105
        write_varint(&mut bytes, zigzag(-300)); // delta becomes -295 -> -190
        assert_eq!(decompress_timestamps(&bytes), None);

        // A negative delta that stays non-negative is still legal.
        let ts = vec![Ts(100), Ts(40), Ts(0)];
        assert_eq!(decompress_timestamps(&compress_timestamps(&ts)).unwrap(), ts);
    }

    #[test]
    fn overflowing_delta_stream_is_an_error() {
        let mut bytes = Vec::new();
        write_varint(&mut bytes, 3);
        write_varint(&mut bytes, 0);
        write_varint(&mut bytes, zigzag(i64::MAX)); // delta = i64::MAX
        write_varint(&mut bytes, zigzag(i64::MAX)); // delta overflows
        assert_eq!(decompress_timestamps(&bytes), None);
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocating() {
        // A header claiming u64::MAX points over a 3-byte body must fail
        // up front — before the fix it reached `Vec::with_capacity(n)`.
        let mut bytes = Vec::new();
        write_varint(&mut bytes, u64::MAX);
        bytes.extend_from_slice(&[1, 2, 3]);
        assert_eq!(decompress_timestamps(&bytes), None);
        assert_eq!(decompress_values(&bytes), None);

        // One over the plausible budget is already rejected...
        let mut bytes = Vec::new();
        write_varint(&mut bytes, 4);
        bytes.extend_from_slice(&[0, 0, 0]); // 3 bytes < 4 points
        assert_eq!(decompress_timestamps(&bytes), None);
        // ...while an exactly-plausible block still decodes.
        let ts = vec![Ts(0), Ts(1), Ts(2), Ts(3)];
        assert!(decompress_timestamps(&compress_timestamps(&ts)).is_some());
    }

    #[test]
    fn truncated_input_returns_none() {
        let ts: Vec<Ts> = (0..100).map(Ts::from_secs).collect();
        let bytes = compress_timestamps(&ts);
        assert!(decompress_timestamps(&bytes[..bytes.len() / 2]).is_none());
        let vals: Vec<f64> = (0..100).map(|i| i as f64 * 1.7).collect();
        let vb = compress_values(&vals);
        assert!(decompress_values(&vb[..vb.len() / 2]).is_none());
    }

    proptest! {
        #[test]
        fn prop_timestamps_round_trip(mut raw in proptest::collection::vec(0u64..10_000_000_000, 0..300)) {
            raw.sort_unstable();
            let ts: Vec<Ts> = raw.into_iter().map(Ts).collect();
            prop_assert_eq!(decompress_timestamps(&compress_timestamps(&ts)).unwrap(), ts);
        }

        #[test]
        fn prop_adversarial_dod_streams_round_trip_or_fail_explicitly(
            first in 0u64..1_000_000_000,
            deltas in proptest::collection::vec(-1_099_511_627_776i64..1_099_511_627_776, 1..50),
        ) {
            // Hand-encode a delta-of-delta stream with large negative
            // swings (±2^40).  If every cumulative timestamp stays
            // non-negative the decoder must be lossless; otherwise it
            // must refuse — never clamp to different data.
            let n = deltas.len() + 1;
            let mut bytes = Vec::new();
            write_varint(&mut bytes, n as u64);
            write_varint(&mut bytes, first);
            let mut prev_delta = 0i64;
            for (i, &d) in deltas.iter().enumerate() {
                if i == 0 {
                    write_varint(&mut bytes, zigzag(d));
                } else {
                    write_varint(&mut bytes, zigzag(d - prev_delta));
                }
                prev_delta = d;
            }
            let mut expected = vec![first as i64];
            let mut cur = first as i64;
            for &d in &deltas {
                cur += d; // |values| ≤ 2^30 + 50·2^40: no i64 overflow
                expected.push(cur);
            }
            let decoded = decompress_timestamps(&bytes);
            if expected.iter().all(|&t| t >= 0) {
                let want: Vec<Ts> = expected.into_iter().map(|t| Ts(t as u64)).collect();
                prop_assert_eq!(decoded, Some(want));
            } else {
                prop_assert_eq!(decoded, None);
            }
        }

        #[test]
        fn prop_values_round_trip(vals in proptest::collection::vec(-1.0e12f64..1.0e12, 0..300)) {
            let back = decompress_values(&compress_values(&vals)).unwrap();
            prop_assert_eq!(back.len(), vals.len());
            for (x, y) in back.iter().zip(&vals) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        #[test]
        fn prop_corrupt_length_headers_fail_closed(
            n in any::<u64>(),
            raw_body in proptest::collection::vec(0u64..256, 0..64),
        ) {
            let body: Vec<u8> = raw_body.iter().map(|&b| b as u8).collect();
            // Arbitrary declared length over an arbitrary small body: the
            // decoders must either decode exactly `n` points that fit the
            // input's byte/bit budget, or refuse — never allocate on the
            // say-so of a corrupt header.
            let mut bytes = Vec::new();
            write_varint(&mut bytes, n);
            bytes.extend_from_slice(&body);
            if let Some(out) = decompress_timestamps(&bytes) {
                prop_assert_eq!(out.len() as u64, n);
                prop_assert!(out.len() <= body.len());
                prop_assert!(out.capacity() <= bytes.len());
            }
            if let Some(out) = decompress_values(&bytes) {
                prop_assert_eq!(out.len() as u64, n);
                prop_assert!(n == 0 || 64 + (n as usize - 1) <= body.len() * 8);
                prop_assert!(out.capacity() <= bytes.len().saturating_mul(8));
            }
        }

        #[test]
        fn prop_value_bit_patterns_round_trip(bits in proptest::collection::vec(any::<u64>(), 0..200)) {
            // Arbitrary bit patterns (including NaNs with odd payloads)
            // must survive: the store must not corrupt vendor data.
            let vals: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
            let back = decompress_values(&compress_values(&vals)).unwrap();
            prop_assert_eq!(back.len(), vals.len());
            for (x, y) in back.iter().zip(&vals) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
