//! The cold storage tier.
//!
//! Table I: hierarchical storage "with the ability to locate and reload
//! data as needed", where "solutions must address both the mechanics of
//! the archiving and reloading and tracking the locations and contents of
//! archived data."  An [`Archive`] holds serialized segments; the
//! [`ArchiveCatalog`] is the tracking index (what range, which series,
//! how many bytes, where).

use crate::tsdb::{SeriesBlock, TimeSeriesStore};
use hpcmon_metrics::Ts;
use serde::{Deserialize, Serialize};

/// Catalog entry describing one archived segment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchiveCatalog {
    /// Segment id (dense).
    pub segment: u32,
    /// Earliest point in the segment.
    pub start: Ts,
    /// Latest point in the segment.
    pub end: Ts,
    /// Number of series blocks.
    pub blocks: usize,
    /// Total points.
    pub points: u64,
    /// Serialized size in bytes.
    pub bytes: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Segment {
    catalog: ArchiveCatalog,
    blocks: Vec<SeriesBlock>,
}

/// Monotonic archive operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ArchiveOpCounts {
    /// Segments filed (archive or load).
    pub segments_filed: u64,
    /// Segments purged at end of retention.
    pub segments_purged: u64,
    /// Reloads back into a store.
    pub reloads: u64,
    /// Segments refused because they carried zero blocks (e.g. a truncated
    /// or hand-edited segment file).  Absent in counters serialized before
    /// the field existed — those deserialize as zero.
    #[serde(with = "count_or_zero")]
    pub empty_segments_rejected: u64,
    /// Segment files refused because they did not parse (truncated or
    /// bit-rotted on the cold tier).  Same legacy-default rule as above.
    #[serde(with = "count_or_zero")]
    pub corrupt_files_rejected: u64,
}

mod count_or_zero {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &u64, s: S) -> Result<S::Ok, S::Error> {
        v.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<u64, D::Error> {
        Ok(Option::<u64>::deserialize(d)?.unwrap_or(0))
    }
}

/// Why the archive refused an operation.
///
/// An operator feeding the archiver a corrupt segment file must get an
/// error row on the dashboard, not a crashed archiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchiveError {
    /// A segment with zero blocks has no time range and cannot be filed.
    EmptySegment,
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::EmptySegment => write!(f, "cannot archive an empty segment"),
        }
    }
}

impl std::error::Error for ArchiveError {}

/// The cold tier: archived segments plus their catalog.
#[derive(Debug, Default)]
pub struct Archive {
    segments: Vec<Option<Segment>>,
    ops: ArchiveOpCounts,
    // Separate from `ops` because reloads happen through `&self`.
    reloads: std::sync::atomic::AtomicU64,
}

impl Archive {
    /// Empty archive.
    pub fn new() -> Archive {
        Archive::default()
    }

    /// Archive everything in `store` older than `cutoff`: seals hot
    /// buffers, evicts the eligible warm blocks, and files them as a new
    /// segment.  Returns the catalog entry, or `None` if nothing was old
    /// enough.
    pub fn archive_before(
        &mut self,
        store: &TimeSeriesStore,
        cutoff: Ts,
    ) -> Option<ArchiveCatalog> {
        store.seal_all();
        let blocks = store.evict_warm_before(cutoff);
        if blocks.is_empty() {
            return None;
        }
        // Non-empty by the guard above, so filing cannot be refused.
        self.file_segment(blocks).ok()
    }

    /// File an explicit set of blocks as a segment.  Refuses (and counts)
    /// an empty block list: it has no time range to catalog, and typically
    /// means the caller fed the archiver a corrupt or truncated segment.
    pub fn file_segment(
        &mut self,
        blocks: Vec<SeriesBlock>,
    ) -> Result<ArchiveCatalog, ArchiveError> {
        let (Some(start), Some(end)) =
            (blocks.iter().map(|b| b.start).min(), blocks.iter().map(|b| b.end).max())
        else {
            self.ops.empty_segments_rejected += 1;
            return Err(ArchiveError::EmptySegment);
        };
        let points: u64 = blocks.iter().map(|b| b.count as u64).sum();
        let bytes: usize = blocks.iter().map(|b| b.compressed_bytes()).sum();
        let catalog = ArchiveCatalog {
            segment: self.segments.len() as u32,
            start,
            end,
            blocks: blocks.len(),
            points,
            bytes,
        };
        self.segments.push(Some(Segment { catalog: catalog.clone(), blocks }));
        self.ops.segments_filed += 1;
        Ok(catalog)
    }

    /// The catalog: every segment still in the archive, in id order.
    pub fn catalog(&self) -> Vec<ArchiveCatalog> {
        self.segments.iter().flatten().map(|s| s.catalog.clone()).collect()
    }

    /// Locate segments overlapping a time range (the "locate" half).
    pub fn locate(&self, from: Ts, to: Ts) -> Vec<ArchiveCatalog> {
        self.segments
            .iter()
            .flatten()
            .filter(|s| s.catalog.start <= to && s.catalog.end >= from)
            .map(|s| s.catalog.clone())
            .collect()
    }

    /// Reload a segment's blocks back into a store (the "reload" half).
    /// The segment stays in the archive — reloading is a cache fill, not a
    /// move — so repeated historical analyses need no re-archive step.
    pub fn reload_into(&self, segment: u32, store: &TimeSeriesStore) -> bool {
        match self.segments.get(segment as usize).and_then(|s| s.as_ref()) {
            Some(seg) => {
                store.reload_blocks(seg.blocks.clone());
                self.reloads.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Permanently delete a segment (end of retention).
    pub fn purge(&mut self, segment: u32) -> bool {
        match self.segments.get_mut(segment as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.ops.segments_purged += 1;
                true
            }
            _ => false,
        }
    }

    /// Monotonic operation counters.
    pub fn op_counts(&self) -> ArchiveOpCounts {
        ArchiveOpCounts {
            reloads: self.reloads.load(std::sync::atomic::Ordering::Relaxed),
            ..self.ops
        }
    }

    /// Total archived bytes.
    pub fn total_bytes(&self) -> usize {
        self.segments.iter().flatten().map(|s| s.catalog.bytes).sum()
    }

    /// Write a segment to a file (the real cold tier: tape/object-store
    /// stand-in).  The format is self-describing JSON of the compressed
    /// blocks; the blocks themselves stay Gorilla-compressed inside it.
    pub fn save_segment(&self, segment: u32, path: &std::path::Path) -> std::io::Result<()> {
        let seg =
            self.segments.get(segment as usize).and_then(|s| s.as_ref()).ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::NotFound, "no such segment")
            })?;
        let json = serde_json::to_vec(seg).map_err(std::io::Error::other)?;
        // Write-then-rename so a crash mid-write can never leave a torn
        // segment file at the catalogued path: the rename is atomic, and
        // until it happens readers still see the old (or no) file.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json)?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                Err(e)
            }
        }
    }

    /// Load a previously saved segment file into this archive under a new
    /// segment id.  Returns the new catalog entry.
    pub fn load_segment(&mut self, path: &std::path::Path) -> std::io::Result<ArchiveCatalog> {
        let bytes = std::fs::read(path)?;
        let seg: Segment = serde_json::from_slice(&bytes).map_err(|e| {
            // Truncated or bit-rotted file: an error row on the dashboard,
            // never a crashed archiver.
            self.ops.corrupt_files_rejected += 1;
            std::io::Error::other(e)
        })?;
        // A structurally valid file can still carry zero blocks (truncated
        // or hand-edited): surface it as an error, never a panic.
        self.file_segment(seg.blocks).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::{CompId, MetricId, Sample, SeriesKey};

    fn fill(store: &TimeSeriesStore, node: u32, minutes: std::ops::Range<u64>) {
        for m in minutes {
            store.insert(&Sample::new(MetricId(0), CompId::node(node), Ts::from_mins(m), m as f64));
        }
    }

    #[test]
    fn archive_locate_reload_round_trip() {
        // Seal threshold 50 so minutes 0..49 form a sealed block per series
        // (archiving moves whole sealed blocks, never splits them).
        let store = TimeSeriesStore::with_options(4, 50);
        fill(&store, 0, 0..100);
        fill(&store, 1, 0..100);
        let mut archive = Archive::new();
        let cat = archive.archive_before(&store, Ts::from_mins(50)).unwrap();
        assert_eq!(cat.points, 100, "two series × 50 old points");
        assert_eq!(cat.blocks, 2);
        // Old data is gone from the store...
        let key = SeriesKey::new(MetricId(0), CompId::node(0));
        assert_eq!(store.query(key, Ts::ZERO, Ts::from_mins(49)).len(), 0);
        // ...locatable in the catalog...
        let found = archive.locate(Ts::from_mins(10), Ts::from_mins(20));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].segment, cat.segment);
        // ...and reloadable for historical + current joint queries.
        assert!(archive.reload_into(cat.segment, &store));
        assert_eq!(store.query(key, Ts::ZERO, Ts(u64::MAX)).len(), 100);
    }

    #[test]
    fn archive_nothing_when_all_recent() {
        let store = TimeSeriesStore::new();
        fill(&store, 0, 90..100);
        let mut archive = Archive::new();
        assert!(archive.archive_before(&store, Ts::from_mins(50)).is_none());
        assert!(archive.catalog().is_empty());
    }

    #[test]
    fn reload_is_idempotent_cache_fill() {
        let store = TimeSeriesStore::new();
        fill(&store, 0, 0..10);
        let mut archive = Archive::new();
        let cat = archive.archive_before(&store, Ts::from_mins(100)).unwrap();
        assert!(archive.reload_into(cat.segment, &store));
        // Segment remains locatable after reload.
        assert_eq!(archive.locate(Ts::ZERO, Ts(u64::MAX)).len(), 1);
    }

    #[test]
    fn purge_removes_segment() {
        let store = TimeSeriesStore::new();
        fill(&store, 0, 0..10);
        let mut archive = Archive::new();
        let cat = archive.archive_before(&store, Ts::from_mins(100)).unwrap();
        assert!(archive.total_bytes() > 0);
        assert!(archive.purge(cat.segment));
        assert!(!archive.purge(cat.segment), "double purge is false");
        assert!(!archive.reload_into(cat.segment, &store));
        assert_eq!(archive.total_bytes(), 0);
    }

    #[test]
    fn multiple_segments_catalogued_in_order() {
        let store = TimeSeriesStore::new();
        let mut archive = Archive::new();
        fill(&store, 0, 0..10);
        let c1 = archive.archive_before(&store, Ts::from_mins(100)).unwrap();
        fill(&store, 0, 100..110);
        let c2 = archive.archive_before(&store, Ts::from_mins(200)).unwrap();
        assert_eq!(c1.segment, 0);
        assert_eq!(c2.segment, 1);
        let cat = archive.catalog();
        assert_eq!(cat.len(), 2);
        assert!(cat[0].end < cat[1].start);
    }

    #[test]
    fn locate_misses_disjoint_ranges() {
        let store = TimeSeriesStore::new();
        fill(&store, 0, 0..10);
        let mut archive = Archive::new();
        archive.archive_before(&store, Ts::from_mins(100)).unwrap();
        assert!(archive.locate(Ts::from_mins(500), Ts::from_mins(600)).is_empty());
    }

    #[test]
    fn save_and_load_segment_file_round_trip() {
        let store = TimeSeriesStore::with_options(2, 16);
        fill(&store, 0, 0..64);
        let mut archive = Archive::new();
        let cat = archive.archive_before(&store, Ts::from_mins(100)).unwrap();
        let path =
            std::env::temp_dir().join(format!("hpcmon_archive_test_{}.json", std::process::id()));
        archive.save_segment(cat.segment, &path).unwrap();
        // A fresh archive (say, at a disaster-recovery site) loads it.
        let mut restored = Archive::new();
        let new_cat = restored.load_segment(&path).unwrap();
        assert_eq!(new_cat.points, cat.points);
        assert_eq!(new_cat.start, cat.start);
        assert_eq!(new_cat.end, cat.end);
        let fresh = TimeSeriesStore::new();
        assert!(restored.reload_into(new_cat.segment, &fresh));
        let key = SeriesKey::new(MetricId(0), CompId::node(0));
        assert_eq!(fresh.query(key, Ts::ZERO, Ts(u64::MAX)).len(), 64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_unknown_segment_errors() {
        let archive = Archive::new();
        let path = std::env::temp_dir().join("hpcmon_never_written.json");
        assert!(archive.save_segment(9, &path).is_err());
    }

    #[test]
    fn load_garbage_file_errors() {
        let path = std::env::temp_dir().join(format!("hpcmon_garbage_{}.json", std::process::id()));
        std::fs::write(&path, b"not json at all").unwrap();
        let mut archive = Archive::new();
        assert!(archive.load_segment(&path).is_err());
        assert_eq!(archive.op_counts().corrupt_files_rejected, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_segment_file_is_rejected_and_counted() {
        // The torn-write scenario save_segment's temp+rename now prevents:
        // if such a file ever does appear (e.g. copied off a dying disk),
        // loading it must fail with a counted error, not a panic.
        let store = TimeSeriesStore::with_options(2, 16);
        fill(&store, 0, 0..64);
        let mut archive = Archive::new();
        let cat = archive.archive_before(&store, Ts::from_mins(100)).unwrap();
        let path =
            std::env::temp_dir().join(format!("hpcmon_truncated_{}.json", std::process::id()));
        archive.save_segment(cat.segment, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let mut fresh = Archive::new();
        assert!(fresh.load_segment(&path).is_err());
        let ops = fresh.op_counts();
        assert_eq!(ops.corrupt_files_rejected, 1);
        assert_eq!(ops.segments_filed, 0);
        assert!(fresh.catalog().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_segment_leaves_no_temp_file_behind() {
        let store = TimeSeriesStore::new();
        fill(&store, 0, 0..10);
        let mut archive = Archive::new();
        let cat = archive.archive_before(&store, Ts::from_mins(100)).unwrap();
        let path = std::env::temp_dir().join(format!("hpcmon_atomic_{}.json", std::process::id()));
        archive.save_segment(cat.segment, &path).unwrap();
        assert!(path.exists());
        assert!(!path.with_extension("tmp").exists(), "temp file was renamed away");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn op_counts_track_file_reload_purge() {
        let store = TimeSeriesStore::new();
        fill(&store, 0, 0..10);
        let mut archive = Archive::new();
        let cat = archive.archive_before(&store, Ts::from_mins(100)).unwrap();
        archive.reload_into(cat.segment, &store);
        archive.purge(cat.segment);
        let ops = archive.op_counts();
        assert_eq!(ops.segments_filed, 1);
        assert_eq!(ops.reloads, 1);
        assert_eq!(ops.segments_purged, 1);
    }

    #[test]
    fn empty_segment_is_refused_and_counted_not_a_panic() {
        let mut archive = Archive::new();
        assert_eq!(archive.file_segment(Vec::new()), Err(ArchiveError::EmptySegment));
        assert_eq!(archive.file_segment(Vec::new()), Err(ArchiveError::EmptySegment));
        let ops = archive.op_counts();
        assert_eq!(ops.empty_segments_rejected, 2);
        assert_eq!(ops.segments_filed, 0);
        assert!(archive.catalog().is_empty());
    }

    #[test]
    fn load_zero_block_segment_file_errors_cleanly() {
        // Structurally valid segment JSON with no blocks — the shape a
        // truncation-then-repair or hand edit produces.  Loading it must
        // return an error (and count the rejection), not crash.
        let path = std::env::temp_dir().join(format!("hpcmon_empty_{}.json", std::process::id()));
        std::fs::write(
            &path,
            br#"{"catalog":{"segment":0,"start":0,"end":0,"blocks":0,"points":0,"bytes":0},"blocks":[]}"#,
        )
        .unwrap();
        let mut archive = Archive::new();
        assert!(archive.load_segment(&path).is_err());
        assert_eq!(archive.op_counts().empty_segments_rejected, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn op_counts_without_rejection_field_deserialize_as_zero() {
        // Counters serialized before `empty_segments_rejected` existed.
        let legacy = r#"{"segments_filed":3,"segments_purged":1,"reloads":2}"#;
        let ops: ArchiveOpCounts = serde_json::from_str(legacy).unwrap();
        assert_eq!(ops.segments_filed, 3);
        assert_eq!(ops.empty_segments_rejected, 0);
        assert_eq!(ops.corrupt_files_rejected, 0);
    }

    #[test]
    fn unknown_segment_reload_fails() {
        let archive = Archive::new();
        let store = TimeSeriesStore::new();
        assert!(!archive.reload_into(42, &store));
    }
}
