//! The query engine: range scans, aggregation, group-by, downsampling, and
//! per-job extraction.
//!
//! Table I: "the data store should be designed to support arbitrary
//! extractions and computations" and "concurrent conditions on disparate
//! components should be able to be identified."  The primitives here are
//! what every figure-reproduction scenario is built from: Figure 4's
//! aggregate-then-drill-down is `aggregate_per_bucket` + `top_components_at`;
//! Figure 5's per-job panels are `job_series`.

use crate::tsdb::TimeSeriesStore;
use hpcmon_metrics::{CompId, CompKind, JobRecord, MetricId, SeriesKey, Ts};
use serde::{Deserialize, Serialize};

/// A malformed query parameter, reported instead of aborting the process:
/// query parameters now arrive from external consumers (the gateway), so
/// a bad request must be an error value, never a panic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvalidParam(pub String);

impl std::fmt::Display for InvalidParam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid query parameter: {}", self.0)
    }
}

impl std::error::Error for InvalidParam {}

/// An inclusive time range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeRange {
    /// Inclusive start.
    pub from: Ts,
    /// Inclusive end.
    pub to: Ts,
}

impl TimeRange {
    /// Construct; panics if inverted.
    pub fn new(from: Ts, to: Ts) -> TimeRange {
        assert!(from <= to, "inverted time range");
        TimeRange { from, to }
    }

    /// Everything ever.
    pub fn all() -> TimeRange {
        TimeRange { from: Ts::ZERO, to: Ts(u64::MAX) }
    }

    /// Whether `t` lies inside.
    pub fn contains(&self, t: Ts) -> bool {
        t >= self.from && t <= self.to
    }
}

/// Aggregation functions over a set of values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AggFn {
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Count of values.
    Count,
    /// Quantile in `[0, 1]` (nearest-rank on sorted values).
    Quantile(f64),
}

impl AggFn {
    /// Apply to a non-empty value set; returns `None` for empty input.
    pub fn apply(&self, values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        Some(match self {
            AggFn::Sum => values.iter().sum(),
            AggFn::Mean => values.iter().sum::<f64>() / values.len() as f64,
            AggFn::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            AggFn::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            AggFn::Count => values.len() as f64,
            AggFn::Quantile(q) => {
                let mut sorted = values.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
                let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
                sorted[rank]
            }
        })
    }
}

/// Query operations over a [`TimeSeriesStore`].
pub struct QueryEngine<'a> {
    store: &'a TimeSeriesStore,
}

impl<'a> QueryEngine<'a> {
    /// Wrap a store.
    pub fn new(store: &'a TimeSeriesStore) -> QueryEngine<'a> {
        QueryEngine { store }
    }

    /// Raw points of one series.
    pub fn series(&self, key: SeriesKey, range: TimeRange) -> Vec<(Ts, f64)> {
        self.store.query(key, range.from, range.to)
    }

    /// For each timestamp present across all components of `metric`,
    /// aggregate the per-component values: the system-wide series
    /// (Figure 4 top panel, Figure 1's mean utilization).
    pub fn aggregate_across_components(
        &self,
        metric: MetricId,
        range: TimeRange,
        agg: AggFn,
    ) -> Vec<(Ts, f64)> {
        let per_comp = self.store.query_metric(metric, range.from, range.to);
        let mut by_ts: std::collections::BTreeMap<Ts, Vec<f64>> = std::collections::BTreeMap::new();
        for (_, pts) in per_comp {
            for (t, v) in pts {
                by_ts.entry(t).or_default().push(v);
            }
        }
        by_ts.into_iter().filter_map(|(t, vals)| agg.apply(&vals).map(|v| (t, v))).collect()
    }

    /// Aggregate one metric per component *kind* group — e.g. power summed
    /// per cabinet requires the caller to have stored cabinet-level series;
    /// this groups whatever granularity exists.
    pub fn components_of_kind(
        &self,
        metric: MetricId,
        kind: CompKind,
        range: TimeRange,
    ) -> Vec<(CompId, Vec<(Ts, f64)>)> {
        self.store
            .query_metric(metric, range.from, range.to)
            .into_iter()
            .filter(|(c, _)| c.kind == kind)
            .collect()
    }

    /// The per-component values of `metric` nearest to `at` (within
    /// `tolerance_ms`), largest first — the Figure 4 drill-down table.
    pub fn top_components_at(
        &self,
        metric: MetricId,
        at: Ts,
        tolerance_ms: u64,
        limit: usize,
    ) -> Vec<(CompId, f64)> {
        let range = TimeRange::new(at.sub_ms(tolerance_ms), at.add_ms(tolerance_ms));
        let mut rows: Vec<(CompId, f64)> = self
            .store
            .query_metric(metric, range.from, range.to)
            .into_iter()
            .filter_map(|(c, pts)| {
                pts.iter().min_by_key(|(t, _)| t.delta(at).abs_ms()).map(|&(_, v)| (c, v))
            })
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN in metric values"));
        rows.truncate(limit);
        rows
    }

    /// Downsample one series into fixed buckets of `bucket_ms`, applying
    /// `agg` within each bucket.  Bucket timestamps are the bucket starts.
    /// A non-positive bucket is an [`InvalidParam`] error, not a panic —
    /// this path is reachable from external consumer requests.
    pub fn downsample(
        &self,
        key: SeriesKey,
        range: TimeRange,
        bucket_ms: u64,
        agg: AggFn,
    ) -> Result<Vec<(Ts, f64)>, InvalidParam> {
        let pts = self.series(key, range);
        Self::downsample_points(&pts, bucket_ms, agg)
    }

    /// Downsample already-fetched points.  Buckets are emitted in ascending
    /// time order; points may arrive unsorted (duplicates and out-of-order
    /// timestamps land in their proper bucket).
    pub fn downsample_points(
        pts: &[(Ts, f64)],
        bucket_ms: u64,
        agg: AggFn,
    ) -> Result<Vec<(Ts, f64)>, InvalidParam> {
        if bucket_ms == 0 {
            return Err(InvalidParam("downsample bucket must be positive".into()));
        }
        // Fast path: time-ordered input (the store always returns sorted
        // points) streams through one bucket accumulator.  A regression in
        // order falls back to grouping the whole set.
        let mut out: Vec<(Ts, f64)> = Vec::new();
        let mut bucket_start: Option<Ts> = None;
        let mut bucket_vals: Vec<f64> = Vec::new();
        for &(t, v) in pts {
            let start = t.align_down(bucket_ms);
            match bucket_start {
                Some(b) if b == start => bucket_vals.push(v),
                Some(b) if start > b => {
                    if let Some(a) = agg.apply(&bucket_vals) {
                        out.push((b, a));
                    }
                    bucket_start = Some(start);
                    bucket_vals.clear();
                    bucket_vals.push(v);
                }
                Some(_) => {
                    // Out-of-order bucket: group everything instead.
                    return Ok(Self::downsample_unordered(pts, bucket_ms, agg));
                }
                None => {
                    bucket_start = Some(start);
                    bucket_vals.push(v);
                }
            }
        }
        if let (Some(b), false) = (bucket_start, bucket_vals.is_empty()) {
            if let Some(a) = agg.apply(&bucket_vals) {
                out.push((b, a));
            }
        }
        Ok(out)
    }

    /// Slow path for unsorted input: regroup every point by bucket in one
    /// full pass.  Only runs when the input really is out of order.
    fn downsample_unordered(pts: &[(Ts, f64)], bucket_ms: u64, agg: AggFn) -> Vec<(Ts, f64)> {
        let mut by_bucket: std::collections::BTreeMap<Ts, Vec<f64>> =
            std::collections::BTreeMap::new();
        for &(t, v) in pts {
            by_bucket.entry(t.align_down(bucket_ms)).or_default().push(v);
        }
        by_bucket.into_iter().filter_map(|(b, vals)| agg.apply(&vals).map(|a| (b, a))).collect()
    }

    /// Align two series on exactly-equal timestamps (inner join) — the
    /// primitive for correlating e.g. power against network traffic.
    pub fn align_join(&self, a: SeriesKey, b: SeriesKey, range: TimeRange) -> Vec<(Ts, f64, f64)> {
        let pa = self.series(a, range);
        let pb = self.series(b, range);
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < pa.len() && j < pb.len() {
            match pa[i].0.cmp(&pb[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push((pa[i].0, pa[i].1, pb[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Per-node series of `metric` for a job's allocation and timeframe,
    /// plus the across-nodes aggregate at each tick (sum and mean) — the
    /// Figure 5 condensation ("summing and averaging over nodes enables
    /// condensation of high dimensional data").
    pub fn job_series(&self, job: &JobRecord, metric: MetricId) -> JobSeries {
        let from = job.start.unwrap_or(job.submit);
        let to = job.end.unwrap_or(Ts(u64::MAX));
        let range = TimeRange::new(from, to);
        let per_node: Vec<(CompId, Vec<(Ts, f64)>)> = job
            .nodes
            .iter()
            .map(|&n| {
                let key = SeriesKey::new(metric, CompId::node(n));
                (CompId::node(n), self.series(key, range))
            })
            .collect();
        let mut by_ts: std::collections::BTreeMap<Ts, Vec<f64>> = std::collections::BTreeMap::new();
        for (_, pts) in &per_node {
            for &(t, v) in pts {
                by_ts.entry(t).or_default().push(v);
            }
        }
        let sum: Vec<(Ts, f64)> =
            by_ts.iter().map(|(t, vs)| (*t, vs.iter().sum::<f64>())).collect();
        let mean: Vec<(Ts, f64)> =
            by_ts.iter().map(|(t, vs)| (*t, vs.iter().sum::<f64>() / vs.len() as f64)).collect();
        JobSeries { metric, per_node, sum, mean }
    }
}

/// Output of [`QueryEngine::job_series`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSeries {
    /// The queried metric.
    pub metric: MetricId,
    /// Per-node raw points.
    pub per_node: Vec<(CompId, Vec<(Ts, f64)>)>,
    /// Sum across nodes per tick.
    pub sum: Vec<(Ts, f64)>,
    /// Mean across nodes per tick.
    pub mean: Vec<(Ts, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::{JobId, JobState, Sample};

    fn store_with_grid() -> TimeSeriesStore {
        // metric 0 on nodes 0..4, minutes 0..10, value = node + minute.
        let store = TimeSeriesStore::new();
        for n in 0..4u32 {
            for m in 0..10u64 {
                store.insert(&Sample::new(
                    MetricId(0),
                    CompId::node(n),
                    Ts::from_mins(m),
                    (n as u64 + m) as f64,
                ));
            }
        }
        store
    }

    #[test]
    fn agg_fns() {
        let vals = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(AggFn::Sum.apply(&vals), Some(10.0));
        assert_eq!(AggFn::Mean.apply(&vals), Some(2.5));
        assert_eq!(AggFn::Min.apply(&vals), Some(1.0));
        assert_eq!(AggFn::Max.apply(&vals), Some(4.0));
        assert_eq!(AggFn::Count.apply(&vals), Some(4.0));
        assert_eq!(AggFn::Quantile(0.0).apply(&vals), Some(1.0));
        assert_eq!(AggFn::Quantile(1.0).apply(&vals), Some(4.0));
        assert_eq!(AggFn::Quantile(0.5).apply(&vals), Some(3.0)); // nearest rank
        assert_eq!(AggFn::Sum.apply(&[]), None);
    }

    #[test]
    fn aggregate_across_components() {
        let store = store_with_grid();
        let q = QueryEngine::new(&store);
        let sums = q.aggregate_across_components(MetricId(0), TimeRange::all(), AggFn::Sum);
        assert_eq!(sums.len(), 10);
        // minute m: values m, m+1, m+2, m+3 → sum 4m+6.
        for (i, &(t, v)) in sums.iter().enumerate() {
            assert_eq!(t, Ts::from_mins(i as u64));
            assert_eq!(v, 4.0 * i as f64 + 6.0);
        }
    }

    #[test]
    fn top_components_at_ranks_descending() {
        let store = store_with_grid();
        let q = QueryEngine::new(&store);
        let top = q.top_components_at(MetricId(0), Ts::from_mins(5), 30_000, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], (CompId::node(3), 8.0));
        assert_eq!(top[1], (CompId::node(2), 7.0));
    }

    #[test]
    fn top_components_respects_tolerance() {
        let store = store_with_grid();
        let q = QueryEngine::new(&store);
        // Querying off-grid with tiny tolerance finds nothing.
        let top = q.top_components_at(MetricId(0), Ts(30_500), 100, 5);
        assert!(top.is_empty());
    }

    #[test]
    fn downsample_means() {
        let pts: Vec<(Ts, f64)> = (0..6).map(|i| (Ts(i * 1_000), i as f64)).collect();
        let out = QueryEngine::downsample_points(&pts, 2_000, AggFn::Mean).unwrap();
        assert_eq!(out, vec![(Ts(0), 0.5), (Ts(2_000), 2.5), (Ts(4_000), 4.5)]);
    }

    #[test]
    fn downsample_handles_gaps() {
        let pts = vec![(Ts(0), 1.0), (Ts(10_000), 5.0)];
        let out = QueryEngine::downsample_points(&pts, 2_000, AggFn::Sum).unwrap();
        assert_eq!(out, vec![(Ts(0), 1.0), (Ts(10_000), 5.0)]);
        assert!(QueryEngine::downsample_points(&[], 1_000, AggFn::Sum).unwrap().is_empty());
    }

    #[test]
    fn downsample_rejects_zero_bucket_and_merges_unordered() {
        assert!(QueryEngine::downsample_points(&[(Ts(0), 1.0)], 0, AggFn::Sum).is_err());
        // Out-of-order buckets and duplicate timestamps merge into the same
        // buckets a sorted pass would produce.
        let pts = vec![(Ts(5_000), 5.0), (Ts(0), 1.0), (Ts(5_000), 3.0), (Ts(1_000), 2.0)];
        let out = QueryEngine::downsample_points(&pts, 2_000, AggFn::Sum).unwrap();
        assert_eq!(out, vec![(Ts(0), 3.0), (Ts(4_000), 8.0)]);
    }

    #[test]
    fn align_join_inner_semantics() {
        let store = TimeSeriesStore::new();
        let ka = SeriesKey::new(MetricId(0), CompId::node(0));
        let kb = SeriesKey::new(MetricId(1), CompId::node(0));
        for t in [0u64, 1_000, 2_000] {
            store.insert(&Sample::new(MetricId(0), CompId::node(0), Ts(t), t as f64));
        }
        for t in [1_000u64, 2_000, 3_000] {
            store.insert(&Sample::new(MetricId(1), CompId::node(0), Ts(t), -(t as f64)));
        }
        let q = QueryEngine::new(&store);
        let joined = q.align_join(ka, kb, TimeRange::all());
        assert_eq!(joined, vec![(Ts(1_000), 1_000.0, -1_000.0), (Ts(2_000), 2_000.0, -2_000.0)]);
    }

    #[test]
    fn job_series_condenses_nodes() {
        let store = store_with_grid();
        let q = QueryEngine::new(&store);
        let job = JobRecord {
            id: JobId(1),
            user: "alice".into(),
            name: "app".into(),
            nodes: vec![0, 1],
            submit: Ts::ZERO,
            start: Some(Ts::from_mins(2)),
            end: Some(Ts::from_mins(5)),
            state: JobState::Completed,
        };
        let js = q.job_series(&job, MetricId(0));
        assert_eq!(js.per_node.len(), 2);
        // Ticks 2..=5 inclusive (range is inclusive on both ends).
        assert_eq!(js.sum.len(), 4);
        // minute 2: nodes 0,1 → 2 + 3 = 5.
        assert_eq!(js.sum[0], (Ts::from_mins(2), 5.0));
        assert_eq!(js.mean[0], (Ts::from_mins(2), 2.5));
    }

    #[test]
    fn components_of_kind_filters() {
        let store = TimeSeriesStore::new();
        store.insert(&Sample::new(MetricId(0), CompId::node(0), Ts(0), 1.0));
        store.insert(&Sample::new(MetricId(0), CompId::cabinet(0), Ts(0), 2.0));
        let q = QueryEngine::new(&store);
        let cabs = q.components_of_kind(MetricId(0), CompKind::Cabinet, TimeRange::all());
        assert_eq!(cabs.len(), 1);
        assert_eq!(cabs[0].0, CompId::cabinet(0));
    }

    #[test]
    #[should_panic(expected = "inverted time range")]
    fn inverted_range_rejected() {
        TimeRange::new(Ts(10), Ts(5));
    }

    #[test]
    fn time_range_contains() {
        let r = TimeRange::new(Ts(5), Ts(10));
        assert!(r.contains(Ts(5)));
        assert!(r.contains(Ts(10)));
        assert!(!r.contains(Ts(4)));
        assert!(!r.contains(Ts(11)));
    }
}
