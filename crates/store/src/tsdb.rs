//! The tiered time-series store.
//!
//! Layout: `SeriesKey → { warm: Vec<SeriesBlock>, hot: Vec<(Ts, f64)> }`,
//! sharded by key hash behind `parking_lot` RwLocks so collector threads
//! ingest concurrently with query threads.  Hot buffers seal into
//! compressed warm blocks at a size threshold; `archive` (cold tier) can
//! evict warm blocks wholesale and reload them later.

use crate::compress;
use hpcmon_metrics::{ColumnFrame, CompId, Frame, MetricId, Sample, SeriesKey, Ts};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A sealed, compressed run of one series.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesBlock {
    /// The series this block belongs to.
    pub key: SeriesKey,
    /// First timestamp in the block.
    pub start: Ts,
    /// Last timestamp in the block.
    pub end: Ts,
    /// Number of points.
    pub count: u32,
    /// Compressed timestamps.
    pub ts_bytes: Vec<u8>,
    /// Compressed values.
    pub val_bytes: Vec<u8>,
}

/// Why a [`SeriesBlock`] failed to decompress.
///
/// Archived blocks cross a (de)serialization boundary in `archive.rs`, so
/// corrupt bytes are an *input* condition, not a logic error — callers get
/// a `Result`, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// The timestamp stream is truncated, overflows, or goes negative.
    Timestamps,
    /// The Gorilla value stream is truncated or malformed.
    Values,
    /// Streams decoded but their lengths disagree with each other or with
    /// the block's declared `count`.
    CountMismatch,
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockError::Timestamps => write!(f, "corrupt timestamp stream"),
            BlockError::Values => write!(f, "corrupt value stream"),
            BlockError::CountMismatch => write!(f, "decoded point count mismatch"),
        }
    }
}

impl std::error::Error for BlockError {}

/// Why a fault-aware write was refused.
///
/// Produced only by [`TimeSeriesStore::try_insert_frame`], the ingest
/// entry point that honors injected shard write faults.  The plain
/// `insert*` paths are fault-unaware and never fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteError {
    /// The named shard currently refuses writes (injected fault).  The
    /// frame was **not** inserted — not even its healthy shards — so the
    /// caller can spill it whole and retry later without double-ingesting.
    ShardUnavailable(usize),
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::ShardUnavailable(s) => write!(f, "store shard {s} unavailable"),
        }
    }
}

impl std::error::Error for WriteError {}

impl SeriesBlock {
    /// Compress a non-empty, time-ordered run of points.
    pub fn compress(key: SeriesKey, points: &[(Ts, f64)]) -> SeriesBlock {
        assert!(!points.is_empty(), "cannot seal an empty block");
        debug_assert!(points.windows(2).all(|w| w[0].0 <= w[1].0), "points must be ordered");
        let ts: Vec<Ts> = points.iter().map(|p| p.0).collect();
        let vals: Vec<f64> = points.iter().map(|p| p.1).collect();
        SeriesBlock {
            key,
            start: ts[0],
            end: *ts.last().expect("non-empty"),
            count: points.len() as u32,
            ts_bytes: compress::compress_timestamps(&ts),
            val_bytes: compress::compress_values(&vals),
        }
    }

    /// Decompress back to points, or report why the bytes are corrupt.
    pub fn decompress(&self) -> Result<Vec<(Ts, f64)>, BlockError> {
        let ts = compress::decompress_timestamps(&self.ts_bytes).ok_or(BlockError::Timestamps)?;
        let vals = compress::decompress_values(&self.val_bytes).ok_or(BlockError::Values)?;
        if ts.len() != vals.len() || ts.len() != self.count as usize {
            return Err(BlockError::CountMismatch);
        }
        Ok(ts.into_iter().zip(vals).collect())
    }

    /// Compressed size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.ts_bytes.len() + self.val_bytes.len()
    }

    /// Whether the block overlaps `[from, to]`.
    pub fn overlaps(&self, from: Ts, to: Ts) -> bool {
        self.start <= to && self.end >= from
    }
}

#[derive(Debug, Default)]
struct SeriesData {
    warm: Vec<SeriesBlock>,
    hot: Vec<(Ts, f64)>,
}

/// One series in a shard's slab: the key plus its tiered data.
#[derive(Debug)]
struct SeriesSlot {
    key: SeriesKey,
    data: SeriesData,
}

/// A shard is a **slab** of series plus a key→slot index.  Slots are
/// append-only under ingest, so a slot number resolved once stays valid
/// until a slot-moving operation (retention drop, snapshot load) bumps the
/// store's layout generation — which is what lets [`IngestRoute`] replace
/// the per-sample hash lookup on the hot path with a direct slab index.
#[derive(Default)]
struct Shard {
    slots: Vec<SeriesSlot>,
    index: HashMap<SeriesKey, u32>,
}

/// A caller-owned routing cache for columnar ingest: where each position
/// of a frame's key column lands (shard and slab slot), plus the per-shard
/// batches in frame order.
///
/// Frames produced by a fixed collector set repeat the same key column
/// tick after tick, so the route — built once with hashing and lookups —
/// is validated per tick by a layout-generation check plus a key-column
/// equality sweep, then reused: ingest costs one slab index and one push
/// per sample, one lock per touched shard, and **zero allocations**.  This
/// also retires the old per-tick `Vec<Vec<&Sample>>` partition rebuild.
#[derive(Debug, Default)]
pub struct IngestRoute {
    /// Store layout generation this route was built against.
    gen: u64,
    /// The key column the route describes (validity check per tick).
    keys: Vec<SeriesKey>,
    /// Slab slot per position (`u32::MAX` = series did not exist when the
    /// route was built; resolved by hash on first ingest, then refreshed).
    slot_of: Vec<u32>,
    /// Sample positions per shard, in frame order.
    per_shard: Vec<Vec<u32>>,
    /// Positions still `u32::MAX` in `slot_of`.
    unresolved: usize,
}

impl IngestRoute {
    /// An empty route; the first ingest through it builds the cache.
    pub fn new() -> IngestRoute {
        IngestRoute::default()
    }

    /// Whether this route currently describes `keys` at layout `gen`.
    fn matches(&self, gen: u64, keys: &[SeriesKey]) -> bool {
        self.gen == gen && self.keys == keys
    }

    /// Whether any sample of the routed frame lands in `shard`.
    pub fn touches(&self, shard: usize) -> bool {
        self.per_shard.get(shard).is_some_and(|b| !b.is_empty())
    }
}

/// Occupancy and compression statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StoreStats {
    /// Number of distinct series.
    pub series: usize,
    /// Points in hot buffers.
    pub hot_points: usize,
    /// Points in warm (compressed) blocks.
    pub warm_points: usize,
    /// Bytes used by warm blocks.
    pub warm_bytes: usize,
    /// Compressed bytes per warm point (0 when no warm data).
    pub bytes_per_point: f64,
    /// Corrupt blocks encountered (skipped on query, rejected on reload).
    /// Monotonic — a counter, not an occupancy figure, carried here so
    /// every stats consumer sees corruption without a second call.
    pub corrupt_blocks: u64,
}

/// Monotonic operation counters: how much work the store has done, as
/// opposed to [`StoreStats`] which reports what it currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoreOpCounts {
    /// Samples accepted by `insert` / `insert_frame`.
    pub samples_ingested: u64,
    /// Hot buffers sealed into warm blocks (threshold or `seal_all`).
    pub blocks_sealed: u64,
    /// Warm blocks handed to the archive tier.
    pub blocks_evicted: u64,
    /// Warm blocks reloaded from the archive tier.
    pub blocks_reloaded: u64,
}

/// The store.
///
/// ```
/// use hpcmon_store::TimeSeriesStore;
/// use hpcmon_metrics::{CompId, MetricId, Sample, SeriesKey, Ts};
///
/// let store = TimeSeriesStore::new();
/// for minute in 0..10 {
///     store.insert(&Sample::new(
///         MetricId(0), CompId::node(7), Ts::from_mins(minute), 200.0 + minute as f64,
///     ));
/// }
/// let key = SeriesKey::new(MetricId(0), CompId::node(7));
/// let points = store.query(key, Ts::from_mins(3), Ts::from_mins(5));
/// assert_eq!(points.len(), 3);
/// assert_eq!(points[0].1, 203.0);
/// ```
pub struct TimeSeriesStore {
    shards: Vec<RwLock<Shard>>,
    seal_threshold: usize,
    samples_ingested: AtomicU64,
    blocks_sealed: AtomicU64,
    blocks_evicted: AtomicU64,
    blocks_reloaded: AtomicU64,
    corrupt_blocks: AtomicU64,
    // Occupancy, maintained incrementally on every write path so
    // `occupancy()` is O(1) — the self-telemetry feed reads it every tick,
    // where the `stats()` scan would grow with the store.
    series_count: AtomicU64,
    hot_points: AtomicU64,
    warm_points: AtomicU64,
    warm_bytes: AtomicU64,
    // Bumped by every mutation (ingest, seal, evict, reload, retention
    // drop).  Consumers that cache derived results — the gateway's query
    // result cache — key entries on this value: an entry computed at epoch
    // E is valid exactly while `epoch()` still returns E.
    epoch: AtomicU64,
    // Bumped only by operations that can move or remove slab slots
    // (retention drops, snapshot loads) — NOT by appends.  An
    // `IngestRoute` built at generation G stays valid while the
    // generation still reads G (and the key column is unchanged).
    layout_gen: AtomicU64,
    // Injected per-shard write faults (chaos testing).  Only
    // `try_insert_frame` consults these; everything else ignores them.
    write_faults: Vec<AtomicBool>,
}

impl TimeSeriesStore {
    /// Default seal threshold: points per series before a hot buffer seals.
    pub const DEFAULT_SEAL_THRESHOLD: usize = 512;

    /// A store with 16 shards and the default seal threshold.
    pub fn new() -> TimeSeriesStore {
        TimeSeriesStore::with_options(16, Self::DEFAULT_SEAL_THRESHOLD)
    }

    /// Full control over sharding and sealing.
    pub fn with_options(shards: usize, seal_threshold: usize) -> TimeSeriesStore {
        assert!(shards > 0 && seal_threshold > 0);
        TimeSeriesStore {
            shards: (0..shards).map(|_| RwLock::new(Shard::default())).collect(),
            seal_threshold,
            samples_ingested: AtomicU64::new(0),
            blocks_sealed: AtomicU64::new(0),
            blocks_evicted: AtomicU64::new(0),
            blocks_reloaded: AtomicU64::new(0),
            corrupt_blocks: AtomicU64::new(0),
            series_count: AtomicU64::new(0),
            hot_points: AtomicU64::new(0),
            warm_points: AtomicU64::new(0),
            warm_bytes: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            layout_gen: AtomicU64::new(0),
            write_faults: (0..shards).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Inject (or clear) a write fault on one shard.  While set, any
    /// [`TimeSeriesStore::try_insert_frame`] touching that shard fails
    /// whole; reads and the fault-unaware insert paths are unaffected.
    /// Out-of-range shards are ignored.
    pub fn set_shard_write_fault(&self, shard: usize, failing: bool) {
        if let Some(flag) = self.write_faults.get(shard) {
            flag.store(failing, Ordering::Release);
        }
    }

    /// Whether a shard currently refuses fault-aware writes.
    pub fn shard_write_faulted(&self, shard: usize) -> bool {
        self.write_faults.get(shard).is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// Fault-aware frame ingest: like [`TimeSeriesStore::insert_frame`],
    /// but refuses the **whole frame** if any shard it would touch has an
    /// injected write fault — all-or-nothing, so a spilled frame can be
    /// retried later without double-ingesting its healthy shards.
    pub fn try_insert_frame(&self, frame: &Frame) -> Result<(), WriteError> {
        let batches = self.partition_frame(frame);
        for (shard, batch) in batches.iter().enumerate() {
            if !batch.is_empty() && self.shard_write_faulted(shard) {
                return Err(WriteError::ShardUnavailable(shard));
            }
        }
        for (shard, batch) in batches.into_iter().enumerate() {
            if !batch.is_empty() {
                self.insert_shard_batch(shard, &batch);
            }
        }
        Ok(())
    }

    /// The store's mutation epoch: a counter advanced by every write-path
    /// operation (`insert`, sealing, eviction, reload, retention drops).
    /// Two reads of the store separated by an unchanged epoch are
    /// guaranteed to observe identical contents, which is what makes
    /// query-result caching sound.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
    }

    fn bump_epoch_by(&self, n: u64) {
        // Batched ingest advances the epoch by the sample count so the
        // epoch value stays identical to per-sample insertion.
        self.epoch.fetch_add(n, Ordering::Release);
    }

    /// Number of shards (the fan-out width for batched ingest).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a series key lives in.
    pub fn shard_index(&self, key: &SeriesKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn shard_of(&self, key: &SeriesKey) -> &RwLock<Shard> {
        &self.shards[self.shard_index(key)]
    }

    /// Insert one sample.  Out-of-order samples (older than the hot tail)
    /// are accepted but land in order within the hot buffer.
    pub fn insert(&self, sample: &Sample) {
        self.samples_ingested.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(&sample.key).write();
        self.insert_locked(&mut shard, sample);
        drop(shard);
        self.bump_epoch();
    }

    /// Resolve (or create) the slab slot for `key` in a locked shard.
    fn resolve_slot(&self, shard: &mut Shard, key: SeriesKey) -> u32 {
        let Shard { slots, index } = shard;
        match index.entry(key) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(v) => {
                let slot = slots.len() as u32;
                slots.push(SeriesSlot { key, data: SeriesData::default() });
                v.insert(slot);
                self.series_count.fetch_add(1, Ordering::Relaxed);
                slot
            }
        }
    }

    /// The per-sample ingest step, with the owning shard's lock held.
    fn insert_locked(&self, shard: &mut Shard, sample: &Sample) {
        let slot = self.resolve_slot(shard, sample.key);
        let data = &mut shard.slots[slot as usize].data;
        self.insert_point(sample.key, data, sample.ts, sample.value);
    }

    /// Append one point to a resolved series, sealing at the threshold.
    /// Occupancy accounting is the caller's: the routed columnar path
    /// bumps `hot_points` once per shard batch instead of per sample.
    #[inline]
    fn append_point(&self, key: SeriesKey, data: &mut SeriesData, ts: Ts, value: f64) {
        // Common case: append in order.
        match data.hot.last() {
            Some(&(last, _)) if last > ts => {
                let pos = data.hot.partition_point(|&(t, _)| t <= ts);
                data.hot.insert(pos, (ts, value));
            }
            _ => data.hot.push((ts, value)),
        }
        if data.hot.len() >= self.seal_threshold {
            let block = SeriesBlock::compress(key, &data.hot);
            self.account_seal(&block);
            data.warm.push(block);
            data.hot.clear();
        }
    }

    /// [`Self::append_point`] plus the per-sample occupancy bump (the row
    /// ingest path counts one sample at a time).
    #[inline]
    fn insert_point(&self, key: SeriesKey, data: &mut SeriesData, ts: Ts, value: f64) {
        self.hot_points.fetch_add(1, Ordering::Relaxed);
        self.append_point(key, data, ts, value);
    }

    /// Move occupancy from hot to warm for a freshly sealed block.
    fn account_seal(&self, block: &SeriesBlock) {
        self.blocks_sealed.fetch_add(1, Ordering::Relaxed);
        self.hot_points.fetch_sub(block.count as u64, Ordering::Relaxed);
        self.warm_points.fetch_add(block.count as u64, Ordering::Relaxed);
        self.warm_bytes.fetch_add(block.compressed_bytes() as u64, Ordering::Relaxed);
    }

    /// Insert every sample of a frame.  Internally shard-batched: one
    /// lock acquisition per touched shard instead of one per sample, with
    /// contents, occupancy, op counts, and epoch identical to per-sample
    /// insertion (frame order is preserved within each shard; samples in
    /// different shards never share a series, so cross-shard order is
    /// immaterial).
    pub fn insert_frame(&self, frame: &Frame) {
        for (shard, batch) in self.partition_frame(frame).into_iter().enumerate() {
            if !batch.is_empty() {
                self.insert_shard_batch(shard, &batch);
            }
        }
    }

    /// Group a frame's samples by owning shard, preserving frame order
    /// within each shard — the split half of concurrent ingest: partition
    /// once, then hand each non-empty batch to a worker.
    pub fn partition_frame<'a>(&self, frame: &'a Frame) -> Vec<Vec<&'a Sample>> {
        let mut batches: Vec<Vec<&Sample>> = vec![Vec::new(); self.shards.len()];
        for s in &frame.samples {
            batches[self.shard_index(&s.key)].push(s);
        }
        batches
    }

    /// Ingest a batch of samples that all hash to `shard`, holding that
    /// shard's write lock once for the whole batch.  Callers must pass
    /// samples in their original frame order; [`TimeSeriesStore::partition_frame`]
    /// produces exactly that.
    ///
    /// Distinct shards can be ingested concurrently: each batch touches
    /// only its own shard's map, and all shared accounting is atomic.
    pub fn insert_shard_batch(&self, shard: usize, samples: &[&Sample]) {
        if samples.is_empty() {
            return;
        }
        self.samples_ingested.fetch_add(samples.len() as u64, Ordering::Relaxed);
        let mut guard = self.shards[shard].write();
        for s in samples {
            debug_assert_eq!(self.shard_index(&s.key), shard, "sample routed to wrong shard");
            self.insert_locked(&mut guard, s);
        }
        drop(guard);
        self.bump_epoch_by(samples.len() as u64);
    }

    /// The store's slab-layout generation: advanced only by operations
    /// that can move or remove slots (retention drops, snapshot loads).
    /// An [`IngestRoute`] is valid exactly while this still reads the
    /// value it was built at.
    pub fn layout_gen(&self) -> u64 {
        self.layout_gen.load(Ordering::Acquire)
    }

    fn bump_layout(&self) {
        self.layout_gen.fetch_add(1, Ordering::Release);
    }

    /// Ensure `route` describes `cf`'s key column against the current slab
    /// layout, rebuilding it if the keys or the layout changed.  Rebuild is
    /// **lookup-only** (read locks, no mutation): series the store has not
    /// seen yet stay unresolved and are created on first ingest.
    pub fn prepare_route(&self, cf: &ColumnFrame, route: &mut IngestRoute) {
        // A default route trivially "matches" an empty frame on a fresh
        // store (gen 0, empty keys) — the shard-table size check catches
        // that and any route built against a differently sharded store.
        if route.per_shard.len() == self.shards.len() && route.matches(self.layout_gen(), &cf.keys)
        {
            return;
        }
        route.gen = self.layout_gen();
        route.keys.clear();
        route.keys.extend_from_slice(&cf.keys);
        route.per_shard.resize_with(self.shards.len(), Vec::new);
        for batch in &mut route.per_shard {
            batch.clear();
        }
        for (i, key) in cf.keys.iter().enumerate() {
            route.per_shard[self.shard_index(key)].push(i as u32);
        }
        route.slot_of.clear();
        route.slot_of.resize(cf.keys.len(), u32::MAX);
        self.refresh_route_slots(route);
    }

    /// Re-run the slot lookup for every position of `route` (read locks
    /// only), leaving positions whose series still do not exist at
    /// `u32::MAX`.
    fn refresh_route_slots(&self, route: &mut IngestRoute) {
        let mut unresolved = 0;
        for (shard_id, batch) in route.per_shard.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let guard = self.shards[shard_id].read();
            for &i in batch {
                let i = i as usize;
                match guard.index.get(&route.keys[i]) {
                    Some(&slot) => route.slot_of[i] = slot,
                    None => {
                        route.slot_of[i] = u32::MAX;
                        unresolved += 1;
                    }
                }
            }
        }
        route.unresolved = unresolved;
    }

    /// Ingest the samples of `cf` that land in `shard`, holding that
    /// shard's write lock once for the whole batch — the columnar analogue
    /// of [`TimeSeriesStore::insert_shard_batch`].  `route` must have been
    /// prepared for `cf` ([`TimeSeriesStore::prepare_route`]).  Distinct
    /// shards can be ingested concurrently against the same shared route.
    pub fn ingest_route_shard(&self, shard_id: usize, cf: &ColumnFrame, route: &IngestRoute) {
        let batch = &route.per_shard[shard_id];
        if batch.is_empty() {
            return;
        }
        self.samples_ingested.fetch_add(batch.len() as u64, Ordering::Relaxed);
        // One occupancy bump for the whole batch — seals subtract their
        // own counts as they happen, so the final tally matches the
        // per-sample accounting of the row path.
        self.hot_points.fetch_add(batch.len() as u64, Ordering::Relaxed);
        let mut guard = self.shards[shard_id].write();
        for &i in batch {
            let i = i as usize;
            let key = cf.keys[i];
            debug_assert_eq!(self.shard_index(&key), shard_id, "sample routed to wrong shard");
            let hint = route.slot_of[i];
            // The route is validated against the key column and the layout
            // generation, so the hint is normally exact; the slot-key check
            // is a cheap last-line defense (the slot is already in cache).
            let slot = match guard.slots.get(hint as usize) {
                Some(s) if s.key == key => hint,
                _ => self.resolve_slot(&mut guard, key),
            };
            let data = &mut guard.slots[slot as usize].data;
            self.append_point(key, data, cf.stamps[i], cf.values[i]);
        }
        drop(guard);
        self.bump_epoch_by(batch.len() as u64);
    }

    /// Resolve any route positions left unresolved by a lookup-only build
    /// (their series were created during ingest).  Call once after a
    /// routed ingest so the next tick's hot path is hint-complete.
    pub fn finish_route(&self, route: &mut IngestRoute) {
        if route.unresolved > 0 {
            self.refresh_route_slots(route);
        }
    }

    /// Columnar frame ingest through a cached route: contents, occupancy,
    /// op counts, and epoch identical to [`TimeSeriesStore::insert_frame`]
    /// of the equivalent row frame, but with one slab index + push per
    /// sample and no per-tick partition rebuild.
    pub fn ingest_columns(&self, cf: &ColumnFrame, route: &mut IngestRoute) {
        self.prepare_route(cf, route);
        for shard_id in 0..self.shards.len() {
            self.ingest_route_shard(shard_id, cf, route);
        }
        self.finish_route(route);
    }

    /// Fault-aware columnar ingest: refuses the **whole frame** if any
    /// shard it would touch has an injected write fault (all-or-nothing,
    /// like [`TimeSeriesStore::try_insert_frame`]).  The route build is
    /// lookup-only, so a refused frame leaves the store untouched.
    pub fn try_ingest_columns(
        &self,
        cf: &ColumnFrame,
        route: &mut IngestRoute,
    ) -> Result<(), WriteError> {
        self.prepare_route(cf, route);
        for shard_id in 0..self.shards.len() {
            if route.touches(shard_id) && self.shard_write_faulted(shard_id) {
                return Err(WriteError::ShardUnavailable(shard_id));
            }
        }
        for shard_id in 0..self.shards.len() {
            self.ingest_route_shard(shard_id, cf, route);
        }
        self.finish_route(route);
        Ok(())
    }

    /// All points of one series in `[from, to]`, time-ordered.
    pub fn query(&self, key: SeriesKey, from: Ts, to: Ts) -> Vec<(Ts, f64)> {
        let shard = self.shard_of(&key).read();
        let Some(data) = shard.index.get(&key).map(|&slot| &shard.slots[slot as usize].data) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for block in &data.warm {
            if block.overlaps(from, to) {
                match block.decompress() {
                    Ok(pts) => {
                        out.extend(pts.into_iter().filter(|&(t, _)| t >= from && t <= to));
                    }
                    // A corrupt block degrades one range of one series;
                    // it must not take down the query (or the pipeline).
                    Err(_) => {
                        self.corrupt_blocks.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        out.extend(data.hot.iter().copied().filter(|&(t, _)| t >= from && t <= to));
        out.sort_by_key(|&(t, _)| t);
        out
    }

    /// All series keys for a metric (any component).
    pub fn series_of_metric(&self, metric: MetricId) -> Vec<SeriesKey> {
        let mut keys: Vec<SeriesKey> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .slots
                    .iter()
                    .map(|slot| slot.key)
                    .filter(|k| k.metric == metric)
                    .collect::<Vec<_>>()
            })
            .collect();
        keys.sort();
        keys
    }

    /// All distinct series keys.
    pub fn all_series(&self) -> Vec<SeriesKey> {
        let mut keys: Vec<SeriesKey> = self
            .shards
            .iter()
            .flat_map(|s| s.read().slots.iter().map(|slot| slot.key).collect::<Vec<_>>())
            .collect();
        keys.sort();
        keys
    }

    /// Per-component points of one metric in a range: the fan-in for
    /// group-by queries.
    pub fn query_metric(
        &self,
        metric: MetricId,
        from: Ts,
        to: Ts,
    ) -> Vec<(CompId, Vec<(Ts, f64)>)> {
        self.series_of_metric(metric)
            .into_iter()
            .map(|k| (k.comp, self.query(k, from, to)))
            .filter(|(_, pts)| !pts.is_empty())
            .collect()
    }

    /// Force-seal every non-empty hot buffer (used before archiving).
    pub fn seal_all(&self) {
        for shard in &self.shards {
            let mut shard = shard.write();
            for slot in shard.slots.iter_mut() {
                if !slot.data.hot.is_empty() {
                    let block = SeriesBlock::compress(slot.key, &slot.data.hot);
                    self.account_seal(&block);
                    slot.data.warm.push(block);
                    slot.data.hot.clear();
                }
            }
        }
        self.bump_epoch();
    }

    /// Remove and return all warm blocks that end at or before `cutoff`
    /// (the eviction half of the archive flow).
    pub fn evict_warm_before(&self, cutoff: Ts) -> Vec<SeriesBlock> {
        let mut evicted = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.write();
            for slot in shard.slots.iter_mut() {
                let (old, keep): (Vec<_>, Vec<_>) =
                    slot.data.warm.drain(..).partition(|b| b.end <= cutoff);
                evicted.extend(old);
                slot.data.warm = keep;
            }
        }
        self.blocks_evicted.fetch_add(evicted.len() as u64, Ordering::Relaxed);
        let points: u64 = evicted.iter().map(|b| b.count as u64).sum();
        let bytes: u64 = evicted.iter().map(|b| b.compressed_bytes() as u64).sum();
        self.warm_points.fetch_sub(points, Ordering::Relaxed);
        self.warm_bytes.fetch_sub(bytes, Ordering::Relaxed);
        self.bump_epoch();
        evicted
    }

    /// Re-insert previously evicted blocks (the reload half).  Blocks
    /// whose bytes no longer decompress — archives cross a serialization
    /// boundary, so this is an input condition — are rejected and counted
    /// rather than admitted as queryable-looking garbage.
    pub fn reload_blocks(&self, blocks: Vec<SeriesBlock>) {
        for block in blocks {
            if block.decompress().is_err() {
                self.corrupt_blocks.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.blocks_reloaded.fetch_add(1, Ordering::Relaxed);
            self.warm_points.fetch_add(block.count as u64, Ordering::Relaxed);
            self.warm_bytes.fetch_add(block.compressed_bytes() as u64, Ordering::Relaxed);
            let mut shard = self.shard_of(&block.key).write();
            let slot = self.resolve_slot(&mut shard, block.key);
            let data = &mut shard.slots[slot as usize].data;
            data.warm.push(block);
            data.warm.sort_by_key(|b| b.start);
        }
        self.bump_epoch();
    }

    /// Delete series whose data ends before `cutoff` and have no hot points
    /// (hard retention; returns dropped series count).
    pub fn drop_series_before(&self, cutoff: Ts) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut shard = shard.write();
            let before = shard.slots.len();
            shard.slots.retain(|slot| {
                let data = &slot.data;
                let dead = data.hot.is_empty()
                    && !data.warm.is_empty()
                    && data.warm.iter().all(|b| b.end < cutoff);
                if dead {
                    dropped += 1;
                    let points: u64 = data.warm.iter().map(|b| b.count as u64).sum();
                    let bytes: u64 = data.warm.iter().map(|b| b.compressed_bytes() as u64).sum();
                    self.warm_points.fetch_sub(points, Ordering::Relaxed);
                    self.warm_bytes.fetch_sub(bytes, Ordering::Relaxed);
                }
                !dead
            });
            // Retention compacts the slab, so every slot number may shift:
            // rebuild the index and (below) invalidate cached routes.
            if shard.slots.len() != before {
                let Shard { slots, index } = &mut *shard;
                index.clear();
                for (i, slot) in slots.iter().enumerate() {
                    index.insert(slot.key, i as u32);
                }
            }
        }
        self.series_count.fetch_sub(dropped as u64, Ordering::Relaxed);
        self.bump_layout();
        self.bump_epoch();
        dropped
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> StoreStats {
        let mut s = StoreStats::default();
        for shard in &self.shards {
            let shard = shard.read();
            s.series += shard.slots.len();
            for slot in &shard.slots {
                s.hot_points += slot.data.hot.len();
                for b in &slot.data.warm {
                    s.warm_points += b.count as usize;
                    s.warm_bytes += b.compressed_bytes();
                }
            }
        }
        s.bytes_per_point =
            if s.warm_points > 0 { s.warm_bytes as f64 / s.warm_points as f64 } else { 0.0 };
        s.corrupt_blocks = self.corrupt_blocks.load(Ordering::Relaxed);
        s
    }

    /// Occupancy from the counters maintained on the write paths: O(1),
    /// unlike the [`TimeSeriesStore::stats`] scan — the per-tick read for
    /// the self-telemetry feed.
    pub fn occupancy(&self) -> StoreStats {
        let warm_points = self.warm_points.load(Ordering::Relaxed) as usize;
        let warm_bytes = self.warm_bytes.load(Ordering::Relaxed) as usize;
        StoreStats {
            series: self.series_count.load(Ordering::Relaxed) as usize,
            hot_points: self.hot_points.load(Ordering::Relaxed) as usize,
            warm_points,
            warm_bytes,
            bytes_per_point: if warm_points > 0 {
                warm_bytes as f64 / warm_points as f64
            } else {
                0.0
            },
            corrupt_blocks: self.corrupt_blocks.load(Ordering::Relaxed),
        }
    }

    /// Corrupt blocks encountered so far (skipped on query, rejected on
    /// reload).
    pub fn corrupt_blocks(&self) -> u64 {
        self.corrupt_blocks.load(Ordering::Relaxed)
    }

    /// Admit a warm block without the reload validation — test-only, to
    /// exercise the query path's skip-and-count defense for corruption
    /// that bypasses the ingest boundary (e.g. in-memory bit flips).
    #[cfg(test)]
    fn inject_warm_block(&self, block: SeriesBlock) {
        let mut shard = self.shard_of(&block.key).write();
        let slot = self.resolve_slot(&mut shard, block.key);
        shard.slots[slot as usize].data.warm.push(block);
    }

    /// Monotonic operation counters.
    pub fn op_counts(&self) -> StoreOpCounts {
        StoreOpCounts {
            samples_ingested: self.samples_ingested.load(Ordering::Relaxed),
            blocks_sealed: self.blocks_sealed.load(Ordering::Relaxed),
            blocks_evicted: self.blocks_evicted.load(Ordering::Relaxed),
            blocks_reloaded: self.blocks_reloaded.load(Ordering::Relaxed),
        }
    }

    /// 64-bit digest of the store's deterministic observables, for per-tick
    /// replay verification.  Deliberately counter-based (epoch, occupancy,
    /// op counts): the counters are bit-identical across worker counts and
    /// reruns, and any content divergence (different samples stored,
    /// different seal/evict decisions) moves at least one of them.  Hashing
    /// contents directly would cost a full store scan every tick.
    pub fn state_digest(&self) -> u64 {
        let mut h = hpcmon_metrics::StateHash::new(0x57);
        let occ = self.occupancy();
        let ops = self.op_counts();
        h.u64(self.epoch.load(Ordering::Relaxed))
            .usize(occ.series)
            .usize(occ.hot_points)
            .usize(occ.warm_points)
            .usize(occ.warm_bytes)
            .u64(occ.corrupt_blocks)
            .u64(ops.samples_ingested)
            .u64(ops.blocks_sealed)
            .u64(ops.blocks_evicted)
            .u64(ops.blocks_reloaded);
        h.finish()
    }

    /// Capture the full store contents and counters for a flight-recorder
    /// checkpoint.  Series are sorted by key so the snapshot bytes are
    /// canonical regardless of hash-map iteration order.
    pub fn snapshot(&self) -> StoreSnapshot {
        let mut series = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            for slot in &shard.slots {
                series.push(SeriesSnapshot {
                    key: slot.key,
                    hot: slot.data.hot.clone(),
                    warm: slot.data.warm.clone(),
                });
            }
        }
        series.sort_by_key(|s| s.key);
        StoreSnapshot {
            num_shards: self.shards.len(),
            seal_threshold: self.seal_threshold,
            series,
            counts: self.op_counts(),
            corrupt_blocks: self.corrupt_blocks.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            write_faults: self.write_faults.iter().map(|f| f.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Load a checkpoint into this store **in place**, replacing all
    /// contents and counters.  The shard count and seal threshold must
    /// match the checkpoint (shard choice is a pure function of the key
    /// and shard count).  In-place restore keeps every
    /// `Arc<TimeSeriesStore>` handle (gateway, self-collector, query
    /// engines) valid, so replay seek swaps state without rebuilding the
    /// surrounding system.
    pub fn load_snapshot(&self, snap: &StoreSnapshot) {
        assert_eq!(self.shards.len(), snap.num_shards, "snapshot shard count mismatch");
        assert_eq!(self.seal_threshold, snap.seal_threshold, "snapshot seal threshold mismatch");
        for shard in &self.shards {
            let mut shard = shard.write();
            shard.slots.clear();
            shard.index.clear();
        }
        let mut hot_points = 0u64;
        let mut warm_points = 0u64;
        let mut warm_bytes = 0u64;
        let series_count = snap.series.len() as u64;
        for s in &snap.series {
            hot_points += s.hot.len() as u64;
            for b in &s.warm {
                warm_points += b.count as u64;
                warm_bytes += b.compressed_bytes() as u64;
            }
            let mut shard = self.shard_of(&s.key).write();
            let slot = shard.slots.len() as u32;
            shard.slots.push(SeriesSlot {
                key: s.key,
                data: SeriesData { warm: s.warm.clone(), hot: s.hot.clone() },
            });
            shard.index.insert(s.key, slot);
        }
        // Every slot may have moved: cached routes are stale.
        self.bump_layout();
        self.series_count.store(series_count, Ordering::Relaxed);
        self.hot_points.store(hot_points, Ordering::Relaxed);
        self.warm_points.store(warm_points, Ordering::Relaxed);
        self.warm_bytes.store(warm_bytes, Ordering::Relaxed);
        self.samples_ingested.store(snap.counts.samples_ingested, Ordering::Relaxed);
        self.blocks_sealed.store(snap.counts.blocks_sealed, Ordering::Relaxed);
        self.blocks_evicted.store(snap.counts.blocks_evicted, Ordering::Relaxed);
        self.blocks_reloaded.store(snap.counts.blocks_reloaded, Ordering::Relaxed);
        self.corrupt_blocks.store(snap.corrupt_blocks, Ordering::Relaxed);
        self.epoch.store(snap.epoch, Ordering::Relaxed);
        for (i, &f) in snap.write_faults.iter().enumerate() {
            self.set_shard_write_fault(i, f);
        }
    }

    /// Rebuild a store from a checkpoint: contents land in the same shards
    /// (shard choice is a pure function of the key), occupancy counters are
    /// recomputed from the restored contents, and the monotonic counters
    /// and epoch resume at their recorded values.
    pub fn restore(snap: StoreSnapshot) -> TimeSeriesStore {
        let store = TimeSeriesStore::with_options(snap.num_shards, snap.seal_threshold);
        store.load_snapshot(&snap);
        store
    }
}

/// One series' complete contents, as checkpointed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    /// The series.
    pub key: SeriesKey,
    /// Unsealed points.
    pub hot: Vec<(Ts, f64)>,
    /// Sealed compressed blocks.
    pub warm: Vec<SeriesBlock>,
}

/// Complete serializable state of the store at a tick boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreSnapshot {
    num_shards: usize,
    seal_threshold: usize,
    series: Vec<SeriesSnapshot>,
    counts: StoreOpCounts,
    corrupt_blocks: u64,
    epoch: u64,
    write_faults: Vec<bool>,
}

impl Default for TimeSeriesStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::MINUTE_MS;

    fn key(m: u32, n: u32) -> SeriesKey {
        SeriesKey::new(MetricId(m), CompId::node(n))
    }

    fn sample(m: u32, n: u32, ts: u64, v: f64) -> Sample {
        Sample::new(MetricId(m), CompId::node(n), Ts(ts), v)
    }

    #[test]
    fn insert_and_query_range() {
        let store = TimeSeriesStore::new();
        for i in 0..10u64 {
            store.insert(&sample(0, 1, i * MINUTE_MS, i as f64));
        }
        let pts = store.query(key(0, 1), Ts(2 * MINUTE_MS), Ts(5 * MINUTE_MS));
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0], (Ts(2 * MINUTE_MS), 2.0));
        assert_eq!(pts[3], (Ts(5 * MINUTE_MS), 5.0));
    }

    #[test]
    fn unknown_series_is_empty() {
        let store = TimeSeriesStore::new();
        assert!(store.query(key(9, 9), Ts::ZERO, Ts(u64::MAX)).is_empty());
    }

    #[test]
    fn sealing_preserves_data_across_tiers() {
        let store = TimeSeriesStore::with_options(4, 100);
        for i in 0..250u64 {
            store.insert(&sample(0, 1, i * 1_000, (i as f64).sqrt()));
        }
        let stats = store.stats();
        assert_eq!(stats.warm_points, 200, "two sealed blocks");
        assert_eq!(stats.hot_points, 50);
        let pts = store.query(key(0, 1), Ts::ZERO, Ts(u64::MAX));
        assert_eq!(pts.len(), 250);
        for (i, &(t, v)) in pts.iter().enumerate() {
            assert_eq!(t, Ts(i as u64 * 1_000));
            assert_eq!(v, (i as f64).sqrt());
        }
    }

    #[test]
    fn out_of_order_inserts_sorted_on_query() {
        let store = TimeSeriesStore::new();
        store.insert(&sample(0, 1, 3_000, 3.0));
        store.insert(&sample(0, 1, 1_000, 1.0));
        store.insert(&sample(0, 1, 2_000, 2.0));
        let pts = store.query(key(0, 1), Ts::ZERO, Ts(u64::MAX));
        assert_eq!(pts, vec![(Ts(1_000), 1.0), (Ts(2_000), 2.0), (Ts(3_000), 3.0)]);
    }

    #[test]
    fn query_metric_groups_components() {
        let store = TimeSeriesStore::new();
        for n in 0..4u32 {
            store.insert(&sample(7, n, 1_000, n as f64));
        }
        store.insert(&sample(8, 0, 1_000, 99.0)); // other metric
        let by_comp = store.query_metric(MetricId(7), Ts::ZERO, Ts(u64::MAX));
        assert_eq!(by_comp.len(), 4);
        assert!(by_comp.iter().all(|(c, pts)| pts[0].1 == c.index as f64));
    }

    #[test]
    fn seal_all_then_evict_and_reload() {
        let store = TimeSeriesStore::with_options(2, 1_000);
        for i in 0..100u64 {
            store.insert(&sample(0, 1, i * MINUTE_MS, i as f64));
        }
        store.seal_all();
        assert_eq!(store.stats().hot_points, 0);
        let evicted = store.evict_warm_before(Ts(u64::MAX));
        assert_eq!(evicted.len(), 1);
        assert!(store.query(key(0, 1), Ts::ZERO, Ts(u64::MAX)).is_empty());
        store.reload_blocks(evicted);
        assert_eq!(store.query(key(0, 1), Ts::ZERO, Ts(u64::MAX)).len(), 100);
    }

    #[test]
    fn evict_respects_cutoff() {
        let store = TimeSeriesStore::with_options(2, 10);
        for i in 0..30u64 {
            store.insert(&sample(0, 1, i * 1_000, i as f64));
        }
        // Blocks: [0..9], [10..19], [20..29] sealed at threshold 10.
        let evicted = store.evict_warm_before(Ts(15_000));
        assert_eq!(evicted.len(), 1, "only the fully-old block leaves");
        let remaining = store.query(key(0, 1), Ts::ZERO, Ts(u64::MAX));
        assert_eq!(remaining.len(), 20);
    }

    #[test]
    fn drop_series_before_removes_dead_series() {
        let store = TimeSeriesStore::with_options(2, 10);
        for i in 0..10u64 {
            store.insert(&sample(0, 1, i * 1_000, 0.0)); // seals exactly
        }
        for i in 0..5u64 {
            store.insert(&sample(0, 2, 100_000 + i * 1_000, 0.0)); // stays hot
        }
        let dropped = store.drop_series_before(Ts(50_000));
        assert_eq!(dropped, 1);
        assert!(store.query(key(0, 1), Ts::ZERO, Ts(u64::MAX)).is_empty());
        assert_eq!(store.query(key(0, 2), Ts::ZERO, Ts(u64::MAX)).len(), 5);
    }

    #[test]
    fn stats_report_compression() {
        let store = TimeSeriesStore::with_options(2, 1_000);
        for i in 0..1_000u64 {
            store.insert(&sample(0, 1, i * MINUTE_MS, 200.0));
        }
        let stats = store.stats();
        assert_eq!(stats.series, 1);
        assert_eq!(stats.warm_points, 1_000);
        assert!(
            stats.bytes_per_point < 2.0,
            "constant series ~1B/pt, got {}",
            stats.bytes_per_point
        );
    }

    #[test]
    fn concurrent_ingest_is_complete() {
        let store = std::sync::Arc::new(TimeSeriesStore::new());
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    store.insert(&sample(0, t, i * 1_000, i as f64));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8u32 {
            assert_eq!(store.query(key(0, t), Ts::ZERO, Ts(u64::MAX)).len(), 1_000);
        }
    }

    #[test]
    fn op_counts_track_ingest_seal_evict_reload() {
        let store = TimeSeriesStore::with_options(2, 10);
        for i in 0..25u64 {
            store.insert(&sample(0, 1, i * 1_000, i as f64));
        }
        let ops = store.op_counts();
        assert_eq!(ops.samples_ingested, 25);
        assert_eq!(ops.blocks_sealed, 2, "threshold 10 seals twice");
        store.seal_all();
        assert_eq!(store.op_counts().blocks_sealed, 3);
        let evicted = store.evict_warm_before(Ts(u64::MAX));
        assert_eq!(store.op_counts().blocks_evicted, 3);
        store.reload_blocks(evicted);
        assert_eq!(store.op_counts().blocks_reloaded, 3);
    }

    #[test]
    fn occupancy_counters_match_the_stats_scan() {
        // The O(1) occupancy counters must agree with the ground-truth
        // scan through every transition: ingest, threshold seal, force
        // seal, evict, reload, and hard retention.
        let store = TimeSeriesStore::with_options(2, 10);
        let check = |when: &str| {
            let (scan, fast) = (store.stats(), store.occupancy());
            assert_eq!(scan, fast, "after {when}");
        };
        for series in 0..3u32 {
            for i in 0..25u64 {
                store.insert(&sample(0, series, i * 1_000, i as f64));
            }
        }
        check("ingest with threshold seals");
        store.seal_all();
        check("seal_all");
        let evicted = store.evict_warm_before(Ts(15_000));
        assert!(!evicted.is_empty());
        check("evict");
        store.reload_blocks(evicted);
        check("reload");
        assert_eq!(store.drop_series_before(Ts(u64::MAX)), 3, "all series all-warm");
        check("drop_series_before");
        assert_eq!(store.occupancy().series, 0);
    }

    #[test]
    fn epoch_advances_on_every_mutation_class() {
        let store = TimeSeriesStore::with_options(2, 10);
        let e0 = store.epoch();
        store.insert(&sample(0, 1, 1_000, 1.0));
        let e1 = store.epoch();
        assert!(e1 > e0, "insert advances the epoch");
        assert_eq!(store.epoch(), e1, "queries do not");
        store.query(key(0, 1), Ts::ZERO, Ts(u64::MAX));
        assert_eq!(store.epoch(), e1);
        store.seal_all();
        let e2 = store.epoch();
        assert!(e2 > e1, "sealing advances the epoch");
        let evicted = store.evict_warm_before(Ts(u64::MAX));
        let e3 = store.epoch();
        assert!(e3 > e2, "eviction advances the epoch");
        store.reload_blocks(evicted);
        let e4 = store.epoch();
        assert!(e4 > e3, "reload advances the epoch");
        store.drop_series_before(Ts(u64::MAX));
        assert!(store.epoch() > e4, "retention drop advances the epoch");
    }

    #[test]
    fn block_round_trip_and_overlap() {
        let pts: Vec<(Ts, f64)> = (0..50).map(|i| (Ts(i * 10), i as f64 * 0.5)).collect();
        let b = SeriesBlock::compress(key(0, 0), &pts);
        assert_eq!(b.decompress().unwrap(), pts);
        assert_eq!(b.start, Ts(0));
        assert_eq!(b.end, Ts(490));
        assert!(b.overlaps(Ts(490), Ts(1_000)));
        assert!(b.overlaps(Ts(0), Ts(0)));
        assert!(!b.overlaps(Ts(491), Ts(1_000)));
        assert!(b.compressed_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "empty block")]
    fn empty_block_rejected() {
        SeriesBlock::compress(key(0, 0), &[]);
    }

    fn corrupt(block: &mut SeriesBlock) {
        // Truncating the timestamp stream mid-varint makes decoding fail.
        let keep = block.ts_bytes.len() / 2;
        block.ts_bytes.truncate(keep.max(1));
    }

    #[test]
    fn corrupt_block_is_a_result_not_a_panic() {
        let pts: Vec<(Ts, f64)> = (0..50).map(|i| (Ts(i * 10), i as f64)).collect();
        let mut b = SeriesBlock::compress(key(0, 0), &pts);
        corrupt(&mut b);
        // Before the fix this line panicked via `expect("corrupt ts block")`.
        assert_eq!(b.decompress(), Err(BlockError::Timestamps));

        let mut b2 = SeriesBlock::compress(key(0, 0), &pts);
        b2.val_bytes.truncate(4);
        assert_eq!(b2.decompress(), Err(BlockError::Values));

        let mut b3 = SeriesBlock::compress(key(0, 0), &pts);
        b3.count += 1; // streams decode fine but disagree with the header
        assert_eq!(b3.decompress(), Err(BlockError::CountMismatch));
    }

    #[test]
    fn query_skips_corrupt_blocks_and_counts_them() {
        let store = TimeSeriesStore::with_options(2, 10);
        for i in 0..30u64 {
            store.insert(&sample(0, 1, i * 1_000, i as f64));
        }
        // Three sealed blocks; round-trip the middle one through eviction
        // with tampered bytes, as archive reload would deliver it.
        let mut evicted = store.evict_warm_before(Ts(u64::MAX));
        assert_eq!(evicted.len(), 3);
        corrupt(&mut evicted[1]);
        let (good, bad): (Vec<_>, Vec<_>) =
            evicted.into_iter().partition(|b| b.decompress().is_ok());
        assert_eq!(bad.len(), 1);
        // Reload rejects the corrupt block outright…
        store.reload_blocks(bad);
        assert_eq!(store.corrupt_blocks(), 1);
        assert_eq!(store.stats().corrupt_blocks, 1);
        assert_eq!(store.occupancy().corrupt_blocks, 1);
        // …and the good data stays fully queryable.
        store.reload_blocks(good);
        let pts = store.query(key(0, 1), Ts::ZERO, Ts(u64::MAX));
        assert_eq!(pts.len(), 20, "two good blocks survive");
        assert_eq!(store.stats(), store.occupancy(), "counters stay consistent");
    }

    #[test]
    fn corrupt_warm_block_degrades_query_not_pipeline() {
        // Corruption reaching the warm tier past the reload guard (e.g.
        // an in-memory bit flip) must degrade only the affected range,
        // not panic the querying thread.  Before the fix this query
        // panicked via `expect("corrupt ts block")`.
        let store = TimeSeriesStore::with_options(2, 1_000);
        for i in 0..20u64 {
            store.insert(&sample(0, 1, i * 1_000, i as f64));
        }
        let good: Vec<(Ts, f64)> = (100..120).map(|i| (Ts(i * 1_000), i as f64)).collect();
        let mut bad = SeriesBlock::compress(key(0, 1), &good);
        corrupt(&mut bad);
        store.inject_warm_block(bad);
        let pts = store.query(key(0, 1), Ts::ZERO, Ts(u64::MAX));
        assert_eq!(pts.len(), 20, "hot data still served");
        assert_eq!(store.corrupt_blocks(), 1, "skip was counted");
        // Repeat queries keep counting (each skip is an observed event).
        store.query(key(0, 1), Ts::ZERO, Ts(u64::MAX));
        assert_eq!(store.corrupt_blocks(), 2);
    }

    #[test]
    fn insert_frame_batched_equals_serial_insertion() {
        let serial = TimeSeriesStore::with_options(4, 16);
        let batched = TimeSeriesStore::with_options(4, 16);
        let mut frame = Frame::new(Ts(5_000));
        for i in 0..200u64 {
            let s = sample((i % 3) as u32, (i % 7) as u32, (i / 7) * 1_000, i as f64);
            frame.samples.push(s);
        }
        for s in &frame.samples {
            serial.insert(s);
        }
        batched.insert_frame(&frame);
        assert_eq!(serial.stats(), batched.stats());
        assert_eq!(serial.op_counts(), batched.op_counts());
        assert_eq!(serial.epoch(), batched.epoch());
        for k in serial.all_series() {
            assert_eq!(
                serial.query(k, Ts::ZERO, Ts(u64::MAX)),
                batched.query(k, Ts::ZERO, Ts(u64::MAX)),
            );
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_shard_batched_insert_frame_equals_serial(
            specs in proptest::collection::vec(
                (0u32..6, 0u32..12, 0u64..100, -1.0e6f64..1.0e6),
                0..150,
            ),
        ) {
            use proptest::prelude::*;
            let serial = TimeSeriesStore::with_options(4, 16);
            let batched = TimeSeriesStore::with_options(4, 16);
            let mut frame = Frame::new(Ts(0));
            for &(m, n, t, v) in &specs {
                frame.samples.push(sample(m, n, t * 1_000, v));
            }
            for s in &frame.samples {
                serial.insert(s);
            }
            batched.insert_frame(&frame);
            prop_assert_eq!(serial.stats(), batched.stats());
            prop_assert_eq!(serial.op_counts(), batched.op_counts());
            prop_assert_eq!(serial.epoch(), batched.epoch());
            for k in serial.all_series() {
                prop_assert_eq!(
                    serial.query(k, Ts::ZERO, Ts(u64::MAX)),
                    batched.query(k, Ts::ZERO, Ts(u64::MAX))
                );
            }
        }
    }

    #[test]
    fn shard_write_fault_refuses_whole_frame_all_or_nothing() {
        let store = TimeSeriesStore::with_options(4, 512);
        let mut frame = Frame::new(Ts(1_000));
        for i in 0..40u64 {
            frame.samples.push(sample((i % 3) as u32, (i % 9) as u32, 1_000, i as f64));
        }
        // Find a shard the frame actually touches and fault it.
        let touched = store
            .partition_frame(&frame)
            .iter()
            .position(|b| !b.is_empty())
            .expect("frame touches at least one shard");
        store.set_shard_write_fault(touched, true);
        assert!(store.shard_write_faulted(touched));
        let e0 = store.epoch();
        assert_eq!(store.try_insert_frame(&frame), Err(WriteError::ShardUnavailable(touched)));
        // Nothing landed — not even the healthy shards — and no counter moved.
        assert_eq!(store.epoch(), e0, "refused frame must not mutate the store");
        assert_eq!(store.op_counts().samples_ingested, 0);
        assert!(store.all_series().is_empty());
        // The fault-unaware path still works (it is the pre-chaos baseline).
        store.insert_frame(&frame);
        assert_eq!(store.op_counts().samples_ingested, 40);
        // Clear the fault: the fault-aware path heals.
        store.set_shard_write_fault(touched, false);
        assert!(store.try_insert_frame(&frame).is_ok());
        assert_eq!(store.op_counts().samples_ingested, 80);
        // Out-of-range shard indexes are ignored, not a panic.
        store.set_shard_write_fault(99, true);
        assert!(!store.shard_write_faulted(99));
    }

    #[test]
    fn try_insert_frame_matches_insert_frame_when_healthy() {
        let plain = TimeSeriesStore::with_options(4, 16);
        let tried = TimeSeriesStore::with_options(4, 16);
        let mut frame = Frame::new(Ts(0));
        for i in 0..120u64 {
            frame.samples.push(sample((i % 3) as u32, (i % 7) as u32, (i / 7) * 1_000, i as f64));
        }
        plain.insert_frame(&frame);
        tried.try_insert_frame(&frame).unwrap();
        assert_eq!(plain.stats(), tried.stats());
        assert_eq!(plain.op_counts(), tried.op_counts());
        assert_eq!(plain.epoch(), tried.epoch());
        for k in plain.all_series() {
            assert_eq!(
                plain.query(k, Ts::ZERO, Ts(u64::MAX)),
                tried.query(k, Ts::ZERO, Ts(u64::MAX)),
            );
        }
    }

    #[test]
    fn partition_frame_preserves_order_and_covers_every_sample() {
        let store = TimeSeriesStore::with_options(4, 512);
        let mut frame = Frame::new(Ts(0));
        for i in 0..100u64 {
            frame.samples.push(sample((i % 5) as u32, (i % 11) as u32, i, i as f64));
        }
        let batches = store.partition_frame(&frame);
        assert_eq!(batches.len(), store.num_shards());
        let total: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(total, frame.samples.len());
        for (shard, batch) in batches.iter().enumerate() {
            for pair in batch.windows(2) {
                // Frame order within a shard: each sample's position in
                // the original frame strictly increases.
                let a = frame.samples.iter().position(|s| std::ptr::eq(s, pair[0])).unwrap();
                let b = frame.samples.iter().position(|s| std::ptr::eq(s, pair[1])).unwrap();
                assert!(a < b);
            }
            for s in batch {
                assert_eq!(store.shard_index(&s.key), shard);
            }
        }
    }

    // ---- columnar route ingest ----

    // The counting allocator backs the allocation-regression tests below;
    // it serves the whole test binary (per-thread counters keep concurrent
    // tests from polluting each other).
    #[global_allocator]
    static ALLOC: hpcmon_metrics::alloc_count::CountingAllocator =
        hpcmon_metrics::alloc_count::CountingAllocator;

    fn column_frame(ts: u64, specs: &[(u32, u32, f64)]) -> ColumnFrame {
        let mut cf = ColumnFrame::new(Ts(ts));
        for &(m, n, v) in specs {
            cf.push(MetricId(m), CompId::node(n), v);
        }
        cf
    }

    fn assert_same_contents(a: &TimeSeriesStore, b: &TimeSeriesStore) {
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.op_counts(), b.op_counts());
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.all_series(), b.all_series());
        for k in a.all_series() {
            assert_eq!(a.query(k, Ts::ZERO, Ts(u64::MAX)), b.query(k, Ts::ZERO, Ts(u64::MAX)));
        }
    }

    #[test]
    fn ingest_columns_matches_insert_frame_including_seals() {
        let row = TimeSeriesStore::with_options(4, 16);
        let col = TimeSeriesStore::with_options(4, 16);
        let mut route = IngestRoute::new();
        for tick in 0..40u64 {
            let specs: Vec<(u32, u32, f64)> = (0..50u64)
                .map(|i| ((i % 3) as u32, (i % 7) as u32, (tick * 50 + i) as f64))
                .collect();
            let cf = column_frame(tick * 1_000, &specs);
            row.insert_frame(&cf.to_frame());
            col.ingest_columns(&cf, &mut route);
        }
        assert_same_contents(&row, &col);
    }

    #[test]
    fn layout_generation_moves_only_on_slot_moving_ops() {
        let store = TimeSeriesStore::with_options(2, 10);
        let g0 = store.layout_gen();
        for i in 0..25u64 {
            store.insert(&sample(0, 1, i * 1_000, i as f64));
        }
        store.seal_all();
        let evicted = store.evict_warm_before(Ts(u64::MAX));
        store.reload_blocks(evicted);
        assert_eq!(store.layout_gen(), g0, "appends/seal/evict/reload keep slots in place");
        store.drop_series_before(Ts(u64::MAX));
        assert!(store.layout_gen() > g0, "retention compaction moves slots");
        let g1 = store.layout_gen();
        let snap = store.snapshot();
        store.load_snapshot(&snap);
        assert!(store.layout_gen() > g1, "snapshot load rebuilds slots");
    }

    #[test]
    fn route_rebuilds_after_retention_compaction() {
        let store = TimeSeriesStore::with_options(2, 10);
        let mut route = IngestRoute::new();
        // Series (0,1) seals exactly (all-warm, droppable); (0,2) stays hot.
        let specs: Vec<(u32, u32, f64)> = (0..10).map(|i| (0, 1, i as f64)).collect();
        for t in 0..10u64 {
            store.ingest_columns(
                &column_frame(t * 1_000, &specs[t as usize..=t as usize]),
                &mut route,
            );
        }
        let hot: Vec<(u32, u32, f64)> = vec![(0, 2, 7.0)];
        store.ingest_columns(&column_frame(100_000, &hot), &mut route);
        assert_eq!(store.drop_series_before(Ts(50_000)), 1);
        // Stale route (layout gen moved): re-ingesting must land correctly.
        store.ingest_columns(&column_frame(200_000, &specs), &mut route);
        store.ingest_columns(&column_frame(300_000, &hot), &mut route);
        assert_eq!(store.query(key(0, 1), Ts(150_000), Ts(u64::MAX)).len(), 10);
        assert_eq!(store.query(key(0, 2), Ts::ZERO, Ts(u64::MAX)).len(), 2);
    }

    #[test]
    fn try_ingest_columns_is_all_or_nothing() {
        let store = TimeSeriesStore::with_options(4, 512);
        let specs: Vec<(u32, u32, f64)> =
            (0..40u64).map(|i| ((i % 3) as u32, (i % 9) as u32, i as f64)).collect();
        let cf = column_frame(1_000, &specs);
        let mut route = IngestRoute::new();
        store.prepare_route(&cf, &mut route);
        let touched =
            (0..store.num_shards()).find(|&s| route.touches(s)).expect("frame touches a shard");
        store.set_shard_write_fault(touched, true);
        let e0 = store.epoch();
        assert_eq!(
            store.try_ingest_columns(&cf, &mut route),
            Err(WriteError::ShardUnavailable(touched))
        );
        assert_eq!(store.epoch(), e0, "refused frame must not mutate the store");
        assert_eq!(store.op_counts().samples_ingested, 0);
        assert!(store.all_series().is_empty());
        store.set_shard_write_fault(touched, false);
        assert!(store.try_ingest_columns(&cf, &mut route).is_ok());
        assert_eq!(store.op_counts().samples_ingested, 40);
        // Healthy columnar fault-aware path matches the row path exactly.
        let row = TimeSeriesStore::with_options(4, 512);
        row.try_insert_frame(&cf.to_frame()).unwrap();
        assert_same_contents(&row, &store);
    }

    #[test]
    fn routed_ingest_is_allocation_free_in_steady_state() {
        // The satellite regression: the legacy path rebuilt a
        // `Vec<Vec<&Sample>>` partition every tick; the routed columnar
        // path must hit the allocator zero times once warmed up.
        let store = TimeSeriesStore::with_options(4, 1_024);
        let mut route = IngestRoute::new();
        let specs: Vec<(u32, u32, f64)> =
            (0..200u64).map(|i| ((i % 5) as u32, (i % 11) as u32, i as f64)).collect();
        let mut cf = column_frame(0, &specs);
        for tick in 1..4u64 {
            cf.clear_for_tick(Ts(tick * 1_000));
            for &(m, n, v) in &specs {
                cf.push(MetricId(m), CompId::node(n), v);
            }
            store.ingest_columns(&cf, &mut route);
        }
        // Seal to empty the hot buffers while keeping their capacity, so
        // measured ticks cannot hit a hot-vec growth reallocation.
        store.seal_all();
        for tick in 4..7u64 {
            cf.clear_for_tick(Ts(tick * 1_000));
            for &(m, n, v) in &specs {
                cf.push(MetricId(m), CompId::node(n), v);
            }
            let before = hpcmon_metrics::alloc_count::thread_allocations();
            store.ingest_columns(&cf, &mut route);
            let after = hpcmon_metrics::alloc_count::thread_allocations();
            assert_eq!(after - before, 0, "steady-state routed ingest must not allocate");
        }
        // Contrast: the legacy partition path allocates every call.
        let frame = cf.to_frame();
        let before = hpcmon_metrics::alloc_count::thread_allocations();
        let batches = store.partition_frame(&frame);
        let after = hpcmon_metrics::alloc_count::thread_allocations();
        assert!(!batches.is_empty());
        assert!(after > before, "legacy partition rebuild allocates per tick");
    }

    proptest::proptest! {
        #[test]
        fn prop_routed_columnar_ingest_equals_row_ingest(
            ticks in proptest::collection::vec(
                proptest::collection::vec(
                    (0u32..6, 0u32..12, -1.0e6f64..1.0e6),
                    0..80,
                ),
                1..5,
            ),
        ) {
            use proptest::prelude::*;
            let row = TimeSeriesStore::with_options(4, 16);
            let col = TimeSeriesStore::with_options(4, 16);
            let mut route = IngestRoute::new();
            for (t, specs) in ticks.iter().enumerate() {
                let cf = column_frame(t as u64 * 1_000, specs);
                row.insert_frame(&cf.to_frame());
                col.ingest_columns(&cf, &mut route);
            }
            prop_assert_eq!(row.stats(), col.stats());
            prop_assert_eq!(row.op_counts(), col.op_counts());
            prop_assert_eq!(row.epoch(), col.epoch());
            for k in row.all_series() {
                prop_assert_eq!(
                    row.query(k, Ts::ZERO, Ts(u64::MAX)),
                    col.query(k, Ts::ZERO, Ts(u64::MAX))
                );
            }
        }
    }
}
