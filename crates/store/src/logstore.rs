//! Log storage with a token inverted index.
//!
//! The paper's sites index logs with Splunk/Elasticsearch because "in
//! production most log analysis involves detection of well-known log
//! lines" — which is a token lookup, not a scan.  [`LogStore`] keeps
//! records append-only (native format preserved) and maintains an inverted
//! index from lowercase tokens to record ids.  [`LogStore::search`] uses
//! the index; [`LogStore::scan_substring`] is the brute-force fallback the
//! `abl_logindex` bench compares against.

use hpcmon_metrics::{CompId, LogRecord, Severity, Ts};
use parking_lot::RwLock;
use std::collections::HashMap;

/// A structured log query: all present clauses must match (AND).
#[derive(Debug, Clone, Default)]
pub struct LogQuery {
    /// Tokens that must all appear in the message (case-insensitive).
    pub tokens: Vec<String>,
    /// Minimum severity, if any.
    pub min_severity: Option<Severity>,
    /// Restrict to one component.
    pub comp: Option<CompId>,
    /// Restrict to one source subsystem.
    pub source: Option<String>,
    /// Inclusive time window.
    pub from: Option<Ts>,
    /// Inclusive end of window.
    pub to: Option<Ts>,
}

impl LogQuery {
    /// Query for records containing all of `tokens`.
    pub fn tokens(tokens: &[&str]) -> LogQuery {
        LogQuery { tokens: tokens.iter().map(|t| t.to_lowercase()).collect(), ..Default::default() }
    }

    /// Add a minimum severity.
    pub fn with_min_severity(mut self, sev: Severity) -> LogQuery {
        self.min_severity = Some(sev);
        self
    }

    /// Add a time window.
    pub fn with_window(mut self, from: Ts, to: Ts) -> LogQuery {
        self.from = Some(from);
        self.to = Some(to);
        self
    }

    /// Restrict to a component.
    pub fn with_comp(mut self, comp: CompId) -> LogQuery {
        self.comp = Some(comp);
        self
    }

    /// Restrict to a source.
    pub fn with_source(mut self, source: &str) -> LogQuery {
        self.source = Some(source.to_owned());
        self
    }

    fn matches_filters(&self, rec: &LogRecord) -> bool {
        if let Some(min) = self.min_severity {
            if rec.severity < min {
                return false;
            }
        }
        if let Some(c) = self.comp {
            if rec.comp != c {
                return false;
            }
        }
        if let Some(ref s) = self.source {
            if &rec.source != s {
                return false;
            }
        }
        if let Some(f) = self.from {
            if rec.ts < f {
                return false;
            }
        }
        if let Some(t) = self.to {
            if rec.ts > t {
                return false;
            }
        }
        true
    }
}

#[derive(Default)]
struct Inner {
    records: Vec<LogRecord>,
    index: HashMap<String, Vec<u32>>,
}

/// Append-only log store with a token inverted index.
#[derive(Default)]
pub struct LogStore {
    inner: RwLock<Inner>,
}

/// Split a message into lowercase alphanumeric tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

impl LogStore {
    /// Empty store.
    pub fn new() -> LogStore {
        LogStore::default()
    }

    /// Append one record; returns its id.
    pub fn append(&self, rec: LogRecord) -> u32 {
        let mut inner = self.inner.write();
        let id = inner.records.len() as u32;
        let mut tokens = tokenize(&rec.message);
        tokens.push(rec.source.to_lowercase());
        tokens.sort_unstable();
        tokens.dedup();
        for tok in tokens {
            inner.index.entry(tok).or_default().push(id);
        }
        inner.records.push(rec);
        id
    }

    /// Append many records.
    pub fn append_batch(&self, recs: impl IntoIterator<Item = LogRecord>) {
        for r in recs {
            self.append(r);
        }
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.inner.read().records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch by id.
    pub fn get(&self, id: u32) -> Option<LogRecord> {
        self.inner.read().records.get(id as usize).cloned()
    }

    /// Indexed search: intersect token posting lists, then apply filters.
    /// A query with no tokens degrades to a filtered scan.
    pub fn search(&self, query: &LogQuery) -> Vec<LogRecord> {
        let inner = self.inner.read();
        if query.tokens.is_empty() {
            return inner.records.iter().filter(|r| query.matches_filters(r)).cloned().collect();
        }
        // Start from the rarest token's postings.
        let mut postings: Vec<&Vec<u32>> = Vec::with_capacity(query.tokens.len());
        for tok in &query.tokens {
            match inner.index.get(tok) {
                Some(p) => postings.push(p),
                None => return Vec::new(),
            }
        }
        postings.sort_by_key(|p| p.len());
        let mut candidates: Vec<u32> = postings[0].clone();
        for p in &postings[1..] {
            let set: std::collections::HashSet<u32> = p.iter().copied().collect();
            candidates.retain(|id| set.contains(id));
            if candidates.is_empty() {
                return Vec::new();
            }
        }
        candidates
            .into_iter()
            .map(|id| &inner.records[id as usize])
            .filter(|r| query.matches_filters(r))
            .cloned()
            .collect()
    }

    /// Count matches without materializing them.
    pub fn count(&self, query: &LogQuery) -> usize {
        self.search(query).len()
    }

    /// Brute-force substring scan over every record (the unindexed
    /// baseline; case-sensitive substring semantics).
    pub fn scan_substring(&self, needle: &str) -> Vec<LogRecord> {
        let inner = self.inner.read();
        inner.records.iter().filter(|r| r.message.contains(needle)).cloned().collect()
    }

    /// Occurrence counts per template id (the "variation in occurrences of
    /// log lines" analysis input).
    pub fn template_histogram(&self) -> HashMap<u32, usize> {
        let inner = self.inner.read();
        let mut hist = HashMap::new();
        for r in &inner.records {
            if let Some(t) = r.template {
                *hist.entry(t).or_insert(0) += 1;
            }
        }
        hist
    }

    /// Records in a time window (for windowed correlation).
    pub fn window(&self, from: Ts, to: Ts) -> Vec<LogRecord> {
        let inner = self.inner.read();
        inner.records.iter().filter(|r| r.ts >= from && r.ts <= to).cloned().collect()
    }

    /// Approximate memory footprint of the index, bytes.
    pub fn index_bytes(&self) -> usize {
        let inner = self.inner.read();
        inner.index.iter().map(|(k, v)| k.len() + v.len() * 4 + 48).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, node: u32, sev: Severity, source: &str, msg: &str) -> LogRecord {
        LogRecord::new(Ts(ts), CompId::node(node), sev, source, msg)
    }

    fn populated() -> LogStore {
        let store = LogStore::new();
        store.append(rec(1_000, 0, Severity::Error, "hsn", "link down on lane 3"));
        store.append(rec(2_000, 1, Severity::Warning, "fs", "slow OST response"));
        store.append(rec(3_000, 0, Severity::Info, "console", "link flap recovered"));
        store.append(rec(4_000, 2, Severity::Error, "hsn", "link down on lane 1"));
        store
    }

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(tokenize("Link DOWN, lane-3!"), vec!["link", "down", "lane", "3"]);
        assert!(tokenize("...").is_empty());
    }

    #[test]
    fn token_search_intersects() {
        let store = populated();
        let hits = store.search(&LogQuery::tokens(&["link", "down"]));
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|r| r.message.contains("link down")));
        // Single token matches more.
        assert_eq!(store.search(&LogQuery::tokens(&["link"])).len(), 3);
        // Unknown token: nothing.
        assert!(store.search(&LogQuery::tokens(&["zebra"])).is_empty());
    }

    #[test]
    fn search_is_case_insensitive() {
        let store = populated();
        assert_eq!(store.search(&LogQuery::tokens(&["LINK", "Down"])).len(), 2);
    }

    #[test]
    fn severity_filter() {
        let store = populated();
        let q = LogQuery::tokens(&["link"]).with_min_severity(Severity::Error);
        assert_eq!(store.search(&q).len(), 2);
        let q = LogQuery::default().with_min_severity(Severity::Warning);
        assert_eq!(store.search(&q).len(), 3);
    }

    #[test]
    fn window_and_comp_filters() {
        let store = populated();
        let q = LogQuery::tokens(&["link"]).with_window(Ts(1_500), Ts(3_500));
        assert_eq!(store.search(&q).len(), 1);
        let q = LogQuery::tokens(&["link"]).with_comp(CompId::node(0));
        assert_eq!(store.search(&q).len(), 2);
        let q = LogQuery::tokens(&["link"]).with_source("hsn");
        assert_eq!(store.search(&q).len(), 2);
    }

    #[test]
    fn source_is_searchable_as_token() {
        let store = populated();
        assert_eq!(store.search(&LogQuery::tokens(&["hsn"])).len(), 2);
    }

    #[test]
    fn scan_substring_baseline_agrees() {
        let store = populated();
        let scanned = store.scan_substring("link down");
        let indexed = store.search(&LogQuery::tokens(&["link", "down"]));
        assert_eq!(scanned.len(), indexed.len());
    }

    #[test]
    fn template_histogram_counts() {
        let store = LogStore::new();
        for i in 0..5 {
            store.append(rec(i, 0, Severity::Info, "x", "m").with_template(7));
        }
        store.append(rec(9, 0, Severity::Info, "x", "m").with_template(8));
        store.append(rec(10, 0, Severity::Info, "x", "untemplated"));
        let h = store.template_histogram();
        assert_eq!(h.get(&7), Some(&5));
        assert_eq!(h.get(&8), Some(&1));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn get_and_len() {
        let store = populated();
        assert_eq!(store.len(), 4);
        assert!(!store.is_empty());
        assert_eq!(store.get(1).unwrap().source, "fs");
        assert!(store.get(99).is_none());
    }

    #[test]
    fn window_fetch() {
        let store = populated();
        assert_eq!(store.window(Ts(2_000), Ts(3_000)).len(), 2);
        assert!(store.window(Ts(10_000), Ts(20_000)).is_empty());
    }

    #[test]
    fn empty_query_returns_all() {
        let store = populated();
        assert_eq!(store.search(&LogQuery::default()).len(), 4);
    }

    #[test]
    fn index_bytes_grows() {
        let store = LogStore::new();
        let before = store.index_bytes();
        store.append(rec(0, 0, Severity::Info, "a", "some unique words here"));
        assert!(store.index_bytes() > before);
    }

    #[test]
    fn concurrent_append_and_search() {
        let store = std::sync::Arc::new(LogStore::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    store.append(rec(i, t, Severity::Info, "src", "tick event"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 1_000);
        assert_eq!(store.search(&LogQuery::tokens(&["tick"])).len(), 1_000);
    }
}
