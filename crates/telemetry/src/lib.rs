#![warn(missing_docs)]

//! `hpcmon-telemetry` — the monitor monitoring itself.
//!
//! The paper's Table I requires that the monitoring system's own health be
//! observable: a dead collector must not impersonate a healthy machine, and
//! at scale the monitor is itself a large distributed system whose queue
//! depths, ingest rates, and per-stage latencies decide whether it keeps up.
//! This crate is the instrumentation substrate for that requirement:
//!
//! * [`Counter`] / [`Gauge`] — single atomics, lock-free on the hot path.
//! * [`Histogram`] — fixed log-spaced latency buckets with p50/p95/p99/max.
//! * [`StageTimer`] — a span guard that records elapsed nanoseconds into a
//!   histogram (and optionally a "last value" gauge) when dropped.
//! * [`Telemetry`] — the registry. Registration takes a lock once; the
//!   returned `Arc` handles are pure atomics afterwards.
//! * [`TelemetryReport`] — a serializable snapshot, rendered as text for
//!   the ops report or exported as JSON.
//!
//! The pipeline feeds these instruments and a `SelfCollector` (in
//! `hpcmon-collect`) republishes them as ordinary `hpcmon.self.*` metrics
//! into the system's own store, so the deadman detector, thresholds, and
//! status board cover the monitor exactly like the machine it watches.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Number of log-spaced histogram buckets: 2 per octave over 1ns..~1100s.
const BUCKETS: usize = 80;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
    active: bool,
}

impl Counter {
    fn new(active: bool) -> Counter {
        Counter { value: AtomicU64::new(0), active }
    }

    /// Add `n` events.
    pub fn add(&self, n: u64) {
        if self.active {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time level (queue depth, last-tick latency, ...).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
    active: bool,
}

impl Gauge {
    fn new(active: bool) -> Gauge {
        Gauge { bits: AtomicU64::new(0), active }
    }

    /// Set the level.
    pub fn set(&self, value: f64) {
        if self.active {
            self.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket latency histogram (log-spaced, 2 buckets per octave).
///
/// Recording is a couple of relaxed atomic adds; quantiles are estimated at
/// snapshot time from bucket midpoints, which is accurate to ~±19% (half an
/// octave step) — plenty for "where does tick time go".
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Exemplar slot per bucket: an opaque tag (in practice a trace id)
    /// from the most recent tagged observation landing in that bucket.
    /// 0 means "no exemplar" — tag allocators must reserve 0 as "none".
    exemplars: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    active: bool,
}

impl Histogram {
    fn new(active: bool) -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            active,
        }
    }

    fn bucket_index(ns: u64) -> usize {
        // Two buckets per octave: index = 2*log2(ns) + (ns in upper half).
        let ns = ns.max(1);
        let exp = 63 - ns.leading_zeros() as usize;
        let half = (ns >> exp.saturating_sub(1)) & 1;
        (exp * 2 + half as usize).min(BUCKETS - 1)
    }

    fn bucket_midpoint_ns(index: usize) -> u64 {
        let exp = index / 2;
        let base = 1u64 << exp;
        // Midpoint of [base, 1.5*base) or [1.5*base, 2*base).
        if index.is_multiple_of(2) {
            base + base / 4
        } else {
            base + base / 2 + base / 4
        }
    }

    /// Record one observation.
    pub fn record_ns(&self, ns: u64) {
        self.record_ns_tagged(ns, 0);
    }

    /// Record one observation carrying an exemplar tag (a trace id).
    /// `tag == 0` means untagged; the bucket's exemplar slot is left alone
    /// so a sparse sampled trace isn't clobbered by untraced observations.
    pub fn record_ns_tagged(&self, ns: u64, tag: u64) {
        if !self.active {
            return;
        }
        let bucket = Self::bucket_index(ns);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        if tag != 0 {
            self.exemplars[bucket].store(tag, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimated quantile in nanoseconds (`q` in 0..=1).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_midpoint_ns(i);
            }
        }
        self.max_ns.load(Ordering::Relaxed)
    }

    /// The exemplar tag nearest the quantile `q`: the tag stored in the
    /// bucket the quantile estimate falls in, or — when that bucket holds
    /// only untagged observations — the tag in the *nearest* tagged
    /// bucket by bucket distance, breaking ties toward the slower bucket
    /// (for a p99 question, the interesting exemplar is the slow
    /// outlier).  An any-direction upward scan would skip a tagged
    /// neighbor one bucket below in favor of an outlier many buckets
    /// above.  Returns 0 when no tagged observation exists at all.
    pub fn exemplar_near_quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        let mut target = BUCKETS - 1;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                target = i;
                break;
            }
        }
        let mut best = 0u64;
        let mut best_dist = usize::MAX;
        for (i, slot) in self.exemplars.iter().enumerate() {
            let tag = slot.load(Ordering::Relaxed);
            if tag == 0 {
                continue;
            }
            let dist = i.abs_diff(target);
            if dist < best_dist || (dist == best_dist && i > target) {
                best = tag;
                best_dist = dist;
            }
        }
        best
    }

    /// Snapshot for reporting.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let count = self.count();
        let sum = self.sum_ns.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: name.to_string(),
            count,
            mean_ns: sum.checked_div(count).unwrap_or(0),
            p50_ns: self.quantile_ns(0.50),
            p95_ns: self.quantile_ns(0.95),
            p99_ns: self.quantile_ns(0.99),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Span guard: times from construction to [`StageTimer::stop`] (or drop) and
/// records into a histogram plus an optional last-value gauge.
pub struct StageTimer {
    hist: Option<Arc<Histogram>>,
    last_gauge: Option<Arc<Gauge>>,
    tag: u64,
    start: Instant,
}

impl StageTimer {
    /// Start timing into `hist`.
    pub fn new(hist: Arc<Histogram>) -> StageTimer {
        StageTimer { hist: Some(hist), last_gauge: None, tag: 0, start: Instant::now() }
    }

    /// Also publish the elapsed time (in ms) to a gauge on completion.
    pub fn with_gauge(mut self, gauge: Arc<Gauge>) -> StageTimer {
        self.last_gauge = Some(gauge);
        self
    }

    /// Tag the recorded observation with an exemplar (a trace id); the
    /// histogram bucket it lands in will remember this tag.
    pub fn with_tag(mut self, tag: u64) -> StageTimer {
        self.tag = tag;
        self
    }

    /// Stop explicitly, returning elapsed nanoseconds.
    pub fn stop(mut self) -> u64 {
        self.finish()
    }

    fn finish(&mut self) -> u64 {
        let ns = self.start.elapsed().as_nanos() as u64;
        if let Some(h) = self.hist.take() {
            h.record_ns_tagged(ns, self.tag);
            if let Some(g) = self.last_gauge.take() {
                g.set(ns as f64 / 1e6);
            }
        }
        ns
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Busy-time guard for fan-out work: times from construction to drop and
/// **adds** the elapsed nanoseconds to a counter.
///
/// Where [`StageTimer`] records one wall-clock observation per stage (and
/// must be held by exactly one coordinator to avoid double-counting),
/// `BusyTimer` is held by each worker job: N concurrent jobs contribute
/// their individual durations, so the counter accumulates total busy time
/// across workers — the sum can legitimately exceed wall-clock, and the
/// ratio busy/wall is the stage's effective parallelism.
pub struct BusyTimer {
    counter: Arc<Counter>,
    start: Instant,
}

impl BusyTimer {
    /// Start timing into `counter` (nanoseconds accumulated on drop).
    pub fn new(counter: Arc<Counter>) -> BusyTimer {
        BusyTimer { counter, start: Instant::now() }
    }
}

impl Drop for BusyTimer {
    fn drop(&mut self) {
        self.counter.add(self.start.elapsed().as_nanos() as u64);
    }
}

/// One instrument family: `entries` preserves registration order (the
/// `visit_*` contract the self-feed depends on) while `index` makes
/// register-or-fetch O(1) instead of a linear scan — registries carry
/// hundreds of names once per-topic transport counters multiply.
struct Family<T> {
    entries: Vec<(String, Arc<T>)>,
    index: HashMap<String, usize>,
}

impl<T> Default for Family<T> {
    fn default() -> Self {
        Family { entries: Vec::new(), index: HashMap::new() }
    }
}

impl<T> Family<T> {
    fn get(&self, name: &str) -> Option<Arc<T>> {
        self.index.get(name).map(|&i| self.entries[i].1.clone())
    }

    fn insert(&mut self, name: &str, value: Arc<T>) {
        self.index.insert(name.to_string(), self.entries.len());
        self.entries.push((name.to_string(), value));
    }
}

#[derive(Default)]
struct Inner {
    counters: Family<Counter>,
    gauges: Family<Gauge>,
    histograms: Family<Histogram>,
}

/// The instrumentation registry.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a write lock once per
/// name; the returned handles are lock-free. A registry built with
/// [`Telemetry::disabled`] hands out inert instruments whose operations are
/// a single predictable branch — the no-op baseline for the overhead bench.
pub struct Telemetry {
    inner: RwLock<Inner>,
    active: bool,
    /// Times a poisoned registry lock was recovered instead of panicking.
    lock_recoveries: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// An active registry.
    pub fn new() -> Telemetry {
        Telemetry {
            inner: RwLock::new(Inner::default()),
            active: true,
            lock_recoveries: AtomicU64::new(0),
        }
    }

    /// An inert registry: instruments exist but record nothing.
    pub fn disabled() -> Telemetry {
        Telemetry {
            inner: RwLock::new(Inner::default()),
            active: false,
            lock_recoveries: AtomicU64::new(0),
        }
    }

    /// Whether instruments record.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Acquire the registry read lock, recovering (and counting) a
    /// poisoned lock rather than panicking: a panic elsewhere must not
    /// cascade into every thread that touches telemetry (no-panic
    /// policy).  The registry's invariants are append-only maps, which
    /// stay consistent across an interrupted writer.
    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        self.inner.read().unwrap_or_else(|poisoned| {
            self.lock_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// Write-lock counterpart of [`Telemetry::read`].
    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner.write().unwrap_or_else(|poisoned| {
            self.lock_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// Times a poisoned registry lock was recovered instead of
    /// propagating a panic (0 in a healthy process).
    pub fn lock_recoveries(&self) -> u64 {
        self.lock_recoveries.load(Ordering::Relaxed)
    }

    /// Register or fetch a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.read().counters.get(name) {
            return c;
        }
        let mut inner = self.write();
        if let Some(c) = inner.counters.get(name) {
            return c;
        }
        let c = Arc::new(Counter::new(self.active));
        inner.counters.insert(name, c.clone());
        c
    }

    /// Register or fetch a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.read().gauges.get(name) {
            return g;
        }
        let mut inner = self.write();
        if let Some(g) = inner.gauges.get(name) {
            return g;
        }
        let g = Arc::new(Gauge::new(self.active));
        inner.gauges.insert(name, g.clone());
        g
    }

    /// Register or fetch a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.read().histograms.get(name) {
            return h;
        }
        let mut inner = self.write();
        if let Some(h) = inner.histograms.get(name) {
            return h;
        }
        let h = Arc::new(Histogram::new(self.active));
        inner.histograms.insert(name, h.clone());
        h
    }

    /// Start a span timer recording into histogram `name` and gauge
    /// `<name>.last_ms`.
    pub fn timer(&self, name: &str) -> StageTimer {
        StageTimer::new(self.histogram(name)).with_gauge(self.gauge(&format!("{name}.last_ms")))
    }

    /// Visit every counter (registration order) with its current total.
    pub fn visit_counters(&self, mut f: impl FnMut(&str, u64)) {
        for (name, c) in &self.read().counters.entries {
            f(name, c.get());
        }
    }

    /// Visit every gauge (registration order) with its current level.
    pub fn visit_gauges(&self, mut f: impl FnMut(&str, f64)) {
        for (name, g) in &self.read().gauges.entries {
            f(name, g.get());
        }
    }

    /// Visit every histogram (registration order).  Allocation-free, unlike
    /// [`Telemetry::report`] — the per-tick self-feed path.
    pub fn visit_histograms(&self, mut f: impl FnMut(&str, &Histogram)) {
        for (name, h) in &self.read().histograms.entries {
            f(name, h);
        }
    }

    /// Snapshot everything for reporting/export.
    pub fn report(&self) -> TelemetryReport {
        let inner = self.read();
        TelemetryReport {
            counters: inner
                .counters
                .entries
                .iter()
                .map(|(n, c)| CounterSnapshot { name: n.clone(), value: c.get() })
                .collect(),
            gauges: inner
                .gauges
                .entries
                .iter()
                .map(|(n, g)| GaugeSnapshot { name: n.clone(), value: g.get() })
                .collect(),
            histograms: inner.histograms.entries.iter().map(|(n, h)| h.snapshot(n)).collect(),
        }
    }
}

/// Snapshot of one counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Instrument name.
    pub name: String,
    /// Total count.
    pub value: u64,
}

/// Snapshot of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Instrument name.
    pub name: String,
    /// Current level.
    pub value: f64,
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Mean, nanoseconds.
    pub mean_ns: u64,
    /// Median estimate, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile estimate, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile estimate, nanoseconds.
    pub p99_ns: u64,
    /// Exact maximum, nanoseconds.
    pub max_ns: u64,
}

/// A full snapshot of the monitor's self-instrumentation.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl TelemetryReport {
    /// Render as indented text (ops-report / status-board section).
    pub fn render_text(&self) -> String {
        fn fmt_ns(ns: u64) -> String {
            if ns >= 1_000_000_000 {
                format!("{:.2}s", ns as f64 / 1e9)
            } else if ns >= 1_000_000 {
                format!("{:.2}ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.1}us", ns as f64 / 1e3)
            } else {
                format!("{ns}ns")
            }
        }
        let mut out = String::from("self-telemetry\n");
        if !self.histograms.is_empty() {
            out.push_str("  stage latencies:\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "    {:<32} n={:<8} p50={:<9} p95={:<9} p99={:<9} max={}\n",
                    h.name,
                    h.count,
                    fmt_ns(h.p50_ns),
                    fmt_ns(h.p95_ns),
                    fmt_ns(h.p99_ns),
                    fmt_ns(h.max_ns),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("  counters:\n");
            for c in &self.counters {
                out.push_str(&format!("    {:<40} {}\n", c.name, c.value));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("  gauges:\n");
            for g in &self.gauges {
                out.push_str(&format!("    {:<40} {:.3}\n", g.name, g.value));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let t = Telemetry::new();
        let c = t.counter("a.b");
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        assert!(Arc::ptr_eq(&c, &t.counter("a.b")));
        let g = t.gauge("q.depth");
        g.set(7.5);
        assert_eq!(g.get(), 7.5);
        assert_eq!(t.lock_recoveries(), 0, "healthy use never trips poison recovery");
    }

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::disabled();
        let c = t.counter("x");
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = t.histogram("h");
        h.record_ns(500);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_quantiles_bracket_data() {
        let t = Telemetry::new();
        let h = t.histogram("lat");
        for ns in [100u64, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 1_000_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_ns(0.5);
        assert!((400..=3200).contains(&p50), "p50 {p50}");
        assert_eq!(h.snapshot("lat").max_ns, 1_000_000);
        let p99 = h.quantile_ns(0.99);
        assert!(p99 >= 500_000, "p99 {p99}");
    }

    #[test]
    fn stage_timer_records_on_drop() {
        let t = Telemetry::new();
        {
            let _timer = t.timer("stage.collect");
        }
        assert_eq!(t.histogram("stage.collect").count(), 1);
    }

    #[test]
    fn busy_timer_accumulates_across_holders() {
        let t = Telemetry::new();
        let c = t.counter("parallel.busy_ns.collect");
        {
            let _a = BusyTimer::new(c.clone());
            let _b = BusyTimer::new(c.clone());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // Two concurrent holders each contributed their full duration:
        // the busy total exceeds the ~2 ms wall-clock of the block.
        assert!(c.get() >= 2 * 2_000_000, "busy ns: {}", c.get());
    }

    #[test]
    fn registration_order_survives_indexed_lookup() {
        let t = Telemetry::new();
        let names = ["zeta", "alpha", "mu", "beta"];
        for n in &names {
            t.counter(n);
            t.histogram(n);
        }
        // Re-fetch out of order: must return the same instruments...
        assert!(Arc::ptr_eq(&t.counter("mu"), &t.counter("mu")));
        for n in names.iter().rev() {
            t.counter(n);
        }
        // ...and visitation must still run in first-registration order.
        let mut seen = Vec::new();
        t.visit_counters(|n, _| seen.push(n.to_string()));
        assert_eq!(seen, names);
        let mut hseen = Vec::new();
        t.visit_histograms(|n, _| hseen.push(n.to_string()));
        assert_eq!(hseen, names);
    }

    #[test]
    fn exemplar_resolves_slow_outlier() {
        let t = Telemetry::new();
        let h = t.histogram("lat");
        // 99 fast untagged observations, one slow tagged outlier.
        for _ in 0..99 {
            h.record_ns(1_000);
        }
        h.record_ns_tagged(50_000_000, 42);
        assert_eq!(h.exemplar_near_quantile(0.99), 42);
        // The fast buckets hold no tags; p50 falls back to the nearest
        // tagged bucket rather than returning nothing.
        assert_eq!(h.exemplar_near_quantile(0.50), 42);
    }

    #[test]
    fn untagged_records_do_not_clobber_exemplars() {
        let t = Telemetry::new();
        let h = t.histogram("lat");
        h.record_ns_tagged(1_000, 7);
        for _ in 0..100 {
            h.record_ns(1_000); // same bucket, no tag
        }
        assert_eq!(h.exemplar_near_quantile(0.5), 7);
        // A later tagged record in the same bucket replaces it.
        h.record_ns_tagged(1_000, 9);
        assert_eq!(h.exemplar_near_quantile(0.5), 9);
    }

    #[test]
    fn exemplar_prefers_nearest_bucket_not_first_upward() {
        let t = Telemetry::new();
        let h = t.histogram("lat");
        // A tagged fast record 8 buckets below the p99 bucket, the p99
        // mass itself untagged, and a tagged outlier 12 buckets above.
        // The old upward-first scan skipped the near neighbor and
        // returned the far outlier; nearest-bucket wins now.
        h.record_ns_tagged(1_000, 7); // bucket 19
        for _ in 0..100 {
            h.record_ns(16_000); // bucket 27, untagged — holds the p99
        }
        h.record_ns_tagged(1_000_000, 9); // bucket 39
        assert_eq!(h.exemplar_near_quantile(0.99), 7);
    }

    #[test]
    fn exemplar_equidistant_tie_prefers_slower_bucket() {
        let t = Telemetry::new();
        let h = t.histogram("lat");
        h.record_ns_tagged(1_000, 5); // bucket 19: 8 below the target
        for _ in 0..100 {
            h.record_ns(16_000); // bucket 27, untagged
        }
        h.record_ns_tagged(200_000, 6); // bucket 35: 8 above the target
        assert_eq!(h.exemplar_near_quantile(0.99), 6, "tie breaks toward the slow outlier");
    }

    #[test]
    fn empty_histogram_has_no_exemplar() {
        let t = Telemetry::new();
        assert_eq!(t.histogram("h").exemplar_near_quantile(0.99), 0);
    }

    #[test]
    fn stage_timer_tag_lands_in_bucket() {
        let t = Telemetry::new();
        {
            let _timer = t.timer("stage.x").with_tag(11);
        }
        assert_eq!(t.histogram("stage.x").exemplar_near_quantile(0.5), 11);
    }

    #[test]
    fn report_json_round_trips() {
        let t = Telemetry::new();
        t.counter("c1").add(5);
        t.gauge("g1").set(2.25);
        t.histogram("h1").record_ns(1234);
        let report = t.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: TelemetryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert!(report.render_text().contains("c1"));
    }
}
