//! Log novelty detection.
//!
//! Paper §III-B: "new or infrequent events may be missed until manual
//! observation of events leads to identification of relevant log lines to
//! include in the scan."  [`NoveltyDetector`] automates the manual step:
//! it learns the set of seen templates (and, for untemplated free text, a
//! token-shape signature) during a training window, then flags anything
//! unseen — the candidate "new log line to add to the scan".

use hpcmon_metrics::LogRecord;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Flags log shapes never seen during training.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NoveltyDetector {
    templates: HashSet<u32>,
    signatures: HashSet<String>,
    training: bool,
    seen_count: u64,
    /// XOR of per-item digests of everything in `templates` and
    /// `signatures` — maintained on insert, so the per-tick
    /// [`NoveltyDetector::state_digest`] is O(1) instead of re-sorting a
    /// vocabulary that can grow to thousands of signatures.  XOR makes
    /// the fold order-insensitive, which is exactly right for sets.
    vocab_digest: u64,
}

impl NoveltyDetector {
    /// 64-bit digest of the learned vocabulary, for per-tick replay
    /// verification.
    pub fn state_digest(&self) -> u64 {
        hpcmon_metrics::StateHash::new(0x40)
            .bool(self.training)
            .u64(self.seen_count)
            .usize(self.templates.len())
            .usize(self.signatures.len())
            .u64(self.vocab_digest)
            .finish()
    }

    fn learn_template(&mut self, t: u32) -> bool {
        let inserted = self.templates.insert(t);
        if inserted {
            self.vocab_digest ^= hpcmon_metrics::StateHash::new(0x54).u64(t as u64).finish();
        }
        inserted
    }

    fn learn_signature(&mut self, sig: String) -> bool {
        if self.signatures.contains(&sig) {
            return false;
        }
        self.vocab_digest ^= hpcmon_metrics::StateHash::new(0x5A).str(&sig).finish();
        self.signatures.insert(sig);
        true
    }

    /// A detector in training mode.
    pub fn new() -> NoveltyDetector {
        NoveltyDetector {
            templates: HashSet::new(),
            signatures: HashSet::new(),
            training: true,
            seen_count: 0,
            vocab_digest: 0,
        }
    }

    /// Signature of a free-text message: source plus the shape of its
    /// tokens (alphabetic tokens kept, numbers collapsed to `#`), so
    /// "job 17 started" and "job 23 started" share a signature.
    pub fn signature(rec: &LogRecord) -> String {
        let mut sig = String::with_capacity(rec.message.len() + rec.source.len() + 1);
        sig.push_str(&rec.source);
        sig.push('|');
        for tok in rec.message.split(|c: char| !c.is_alphanumeric()) {
            if tok.is_empty() {
                continue;
            }
            if tok.chars().all(|c| c.is_ascii_digit()) {
                sig.push('#');
            } else {
                sig.push_str(&tok.to_lowercase());
            }
            sig.push(' ');
        }
        sig
    }

    /// Observe during training: learn, never flag.
    pub fn train(&mut self, rec: &LogRecord) {
        self.seen_count += 1;
        match rec.template {
            Some(t) => {
                self.learn_template(t);
            }
            None => {
                self.learn_signature(Self::signature(rec));
            }
        }
    }

    /// Leave training mode.
    pub fn freeze(&mut self) {
        self.training = false;
    }

    /// Whether still training.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Observe a record: returns `true` when the record's shape is novel.
    /// In training mode this learns instead and never flags.  Novel shapes
    /// are learned on first flag, so each new shape is reported once.
    pub fn observe(&mut self, rec: &LogRecord) -> bool {
        if self.training {
            self.train(rec);
            return false;
        }
        self.seen_count += 1;
        match rec.template {
            Some(t) => self.learn_template(t),
            None => self.learn_signature(Self::signature(rec)),
        }
    }

    /// Distinct shapes learned (templates + signatures).
    pub fn known_shapes(&self) -> usize {
        self.templates.len() + self.signatures.len()
    }

    /// Records observed in total.
    pub fn seen_count(&self) -> u64 {
        self.seen_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::{CompId, Severity, Ts};

    fn rec(msg: &str, template: Option<u32>) -> LogRecord {
        let mut r = LogRecord::new(Ts(0), CompId::node(0), Severity::Info, "console", msg);
        r.template = template;
        r
    }

    #[test]
    fn known_templates_not_flagged() {
        let mut d = NoveltyDetector::new();
        d.train(&rec("job started", Some(9)));
        d.freeze();
        assert!(!d.observe(&rec("job started", Some(9))));
        assert!(d.observe(&rec("never seen this", Some(99))));
        // Second occurrence of the new template: already learned.
        assert!(!d.observe(&rec("never seen this", Some(99))));
    }

    #[test]
    fn numeric_variation_shares_signature() {
        let mut d = NoveltyDetector::new();
        d.train(&rec("job 17 started on 4 nodes", None));
        d.freeze();
        assert!(!d.observe(&rec("job 23 started on 128 nodes", None)));
        assert!(d.observe(&rec("job 23 aborted on 128 nodes", None)));
    }

    #[test]
    fn source_is_part_of_signature() {
        let a = rec("disk full", None);
        let mut b = rec("disk full", None);
        b.source = "hwerr".into();
        assert_ne!(NoveltyDetector::signature(&a), NoveltyDetector::signature(&b));
    }

    #[test]
    fn training_never_flags() {
        let mut d = NoveltyDetector::new();
        assert!(d.is_training());
        for i in 0..10 {
            assert!(!d.observe(&rec(&format!("weird {i}"), Some(i))));
        }
        assert_eq!(d.seen_count(), 10);
        d.freeze();
        assert!(!d.is_training());
        assert_eq!(d.known_shapes(), 10);
    }

    #[test]
    fn case_insensitive_signatures() {
        let mut d = NoveltyDetector::new();
        d.train(&rec("Link Down", None));
        d.freeze();
        assert!(!d.observe(&rec("link down", None)));
    }
}
