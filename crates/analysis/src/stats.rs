//! Streaming statistics primitives: rolling window moments, exponentially
//! weighted averages, and the P² streaming quantile estimator.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Mean/variance over a sliding window of the last `capacity` values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RollingStats {
    capacity: usize,
    window: VecDeque<f64>,
    sum: f64,
    sum_sq: f64,
}

impl RollingStats {
    /// Window of `capacity` values; panics on zero.
    pub fn new(capacity: usize) -> RollingStats {
        assert!(capacity > 0, "window capacity must be positive");
        RollingStats { capacity, window: VecDeque::with_capacity(capacity), sum: 0.0, sum_sq: 0.0 }
    }

    /// Push a value, evicting the oldest when full.
    pub fn push(&mut self, v: f64) {
        if self.window.len() == self.capacity {
            let old = self.window.pop_front().expect("full window");
            self.sum -= old;
            self.sum_sq -= old * old;
        }
        self.window.push_back(v);
        self.sum += v;
        self.sum_sq += v * v;
    }

    /// Values currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Fold the window contents and running moments into a flight-recorder
    /// digest.
    pub fn digest_into(&self, h: &mut hpcmon_metrics::StateHash) {
        h.usize(self.capacity).usize(self.window.len());
        for &v in &self.window {
            h.f64(v);
        }
        h.f64(self.sum).f64(self.sum_sq);
    }

    /// Whether no values have been pushed.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Whether the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.window.len() == self.capacity
    }

    /// Mean of the window (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.sum / self.window.len() as f64)
        }
    }

    /// Population variance of the window.  Floating-point cancellation is
    /// corrected by clamping at zero.
    pub fn variance(&self) -> Option<f64> {
        let n = self.window.len() as f64;
        if self.window.is_empty() {
            return None;
        }
        let mean = self.sum / n;
        Some((self.sum_sq / n - mean * mean).max(0.0))
    }

    /// Standard deviation of the window.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Median of the window (by sorting a copy; windows are small).
    pub fn median(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.window.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Some(sorted[sorted.len() / 2])
    }

    /// Median absolute deviation (robust spread).
    pub fn mad(&self) -> Option<f64> {
        let med = self.median()?;
        let mut devs: Vec<f64> = self.window.iter().map(|v| (v - med).abs()).collect();
        devs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Some(devs[devs.len() / 2])
    }

    /// Coefficient of variation (std/mean); `None` when mean is ~0.
    pub fn cv(&self) -> Option<f64> {
        let mean = self.mean()?;
        if mean.abs() < 1e-12 {
            return None;
        }
        Some(self.std_dev()? / mean.abs())
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Smoothing factor in `(0, 1]`; higher follows faster.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Fold in a value and return the new average.
    pub fn push(&mut self, v: f64) -> f64 {
        let next = match self.value {
            Some(prev) => prev + self.alpha * (v - prev),
            None => v,
        };
        self.value = Some(next);
        next
    }

    /// Current average, if any value was pushed.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// P² streaming quantile estimator (Jain & Chlamtac, 1985): tracks one
/// quantile in O(1) memory without storing samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    // Marker heights and positions; initialized from the first 5 samples.
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    initial: Vec<f64>,
    count: u64,
}

impl P2Quantile {
    /// Track quantile `q` in `(0, 1)`.
    pub fn new(q: f64) -> P2Quantile {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            initial: Vec::with_capacity(5),
            count: 0,
        }
    }

    /// Observe a value.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(v);
            if self.initial.len() == 5 {
                self.initial.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }
        // Find the cell containing v and bump marker positions.
        let k = if v < self.heights[0] {
            self.heights[0] = v;
            0
        } else if v >= self.heights[4] {
            self.heights[4] = v;
            3
        } else {
            (0..4).find(|&i| v >= self.heights[i] && v < self.heights[i + 1]).expect("in range")
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }
        // Adjust interior markers with the parabolic formula.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let step_fwd = self.positions[i + 1] - self.positions[i];
            let step_bwd = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && step_fwd > 1.0) || (d <= -1.0 && step_bwd < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] = if candidate > self.heights[i - 1]
                    && candidate < self.heights[i + 1]
                {
                    candidate
                } else {
                    // Linear fallback.
                    self.heights[i]
                        + d * (self.heights[(i as i64 + d as i64) as usize] - self.heights[i])
                            / (self.positions[(i as i64 + d as i64) as usize] - self.positions[i])
                };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    /// Current estimate (exact until 5 samples, then P²).
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut sorted = self.initial.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let rank = (self.q * (sorted.len() - 1) as f64).round() as usize;
            return Some(sorted[rank]);
        }
        Some(self.heights[2])
    }

    /// Samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_basic_moments() {
        let mut r = RollingStats::new(4);
        assert!(r.is_empty());
        assert_eq!(r.mean(), None);
        for v in [1.0, 2.0, 3.0, 4.0] {
            r.push(v);
        }
        assert!(r.is_full());
        assert_eq!(r.mean(), Some(2.5));
        assert!((r.variance().unwrap() - 1.25).abs() < 1e-12);
        assert_eq!(r.median(), Some(3.0));
    }

    #[test]
    fn rolling_evicts_oldest() {
        let mut r = RollingStats::new(3);
        for v in [10.0, 1.0, 2.0, 3.0] {
            r.push(v);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.mean(), Some(2.0));
    }

    #[test]
    fn rolling_mad_robust_to_outlier() {
        let mut r = RollingStats::new(10);
        for _ in 0..9 {
            r.push(5.0);
        }
        r.push(1_000.0);
        assert_eq!(r.mad(), Some(0.0), "MAD ignores a single outlier");
        assert!(r.std_dev().unwrap() > 100.0, "std dev does not");
    }

    #[test]
    fn rolling_cv() {
        let mut r = RollingStats::new(4);
        for v in [10.0, 10.0, 10.0, 10.0] {
            r.push(v);
        }
        assert_eq!(r.cv(), Some(0.0));
        let mut z = RollingStats::new(4);
        z.push(0.0);
        assert_eq!(z.cv(), None, "zero mean has no CV");
    }

    #[test]
    fn variance_never_negative_under_cancellation() {
        let mut r = RollingStats::new(8);
        for _ in 0..8 {
            r.push(1e9 + 0.1);
        }
        assert!(r.variance().unwrap() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_window_rejected() {
        RollingStats::new(0);
    }

    #[test]
    fn ewma_follows_level_shift() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.push(0.0);
        for _ in 0..20 {
            e.push(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 0.01);
    }

    #[test]
    fn ewma_first_value_is_identity() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.push(7.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn ewma_bad_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn p2_median_of_uniform() {
        let mut q = P2Quantile::new(0.5);
        // Deterministic pseudo-shuffled uniform values.
        for i in 0..10_000u64 {
            let v = ((i * 2_654_435_761) % 10_000) as f64 / 10_000.0;
            q.push(v);
        }
        let est = q.value().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    #[test]
    fn p2_p95_of_uniform() {
        let mut q = P2Quantile::new(0.95);
        for i in 0..20_000u64 {
            let v = ((i * 2_654_435_761) % 20_000) as f64 / 20_000.0;
            q.push(v);
        }
        let est = q.value().unwrap();
        assert!((est - 0.95).abs() < 0.02, "p95 estimate {est}");
    }

    #[test]
    fn p2_small_samples_exact() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.value(), None);
        q.push(3.0);
        assert_eq!(q.value(), Some(3.0));
        q.push(1.0);
        q.push(2.0);
        assert_eq!(q.value(), Some(2.0));
        assert_eq!(q.count(), 3);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn p2_bad_quantile() {
        P2Quantile::new(1.0);
    }
}
