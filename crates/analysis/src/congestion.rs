//! SNL-style network congestion levels and regions.
//!
//! Paper §II-9: SNL uses "functional combinations of High Speed Network
//! performance counters, collected periodically and synchronously across a
//! whole system, to determine congestion levels, congestion regions, and
//! impact on application performance."
//!
//! Input: one synchronized snapshot of per-link stall and traffic
//! counters, plus a link→region mapping (region = cabinet/group on real
//! machines).  Output: a per-region congestion level and the set of
//! contiguous hot regions.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Discretized congestion level, in SNL's spirit of operator-meaningful
/// bands rather than raw ratios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CongestionLevel {
    /// Stall ratio below 5%.
    None,
    /// 5–25%.
    Low,
    /// 25–75%.
    Medium,
    /// Above 75% — demand far exceeds capacity.
    High,
}

impl CongestionLevel {
    /// Band a stall ratio (stalled bytes / offered bytes).
    pub fn from_stall_ratio(ratio: f64) -> CongestionLevel {
        if ratio < 0.05 {
            CongestionLevel::None
        } else if ratio < 0.25 {
            CongestionLevel::Low
        } else if ratio < 0.75 {
            CongestionLevel::Medium
        } else {
            CongestionLevel::High
        }
    }
}

/// Per-link counter snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkCounters {
    /// Link id.
    pub link: u32,
    /// Bytes carried this interval.
    pub traffic_bytes: f64,
    /// Excess (stalled) bytes this interval.
    pub stall_bytes: f64,
}

impl LinkCounters {
    /// Stall ratio: stalled / offered (0 when idle).
    pub fn stall_ratio(&self) -> f64 {
        let offered = self.traffic_bytes + self.stall_bytes;
        if offered <= 0.0 {
            0.0
        } else {
            self.stall_bytes / offered
        }
    }
}

/// Region-level congestion assessment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionCongestion {
    /// Region id (cabinet/group index).
    pub region: u32,
    /// Mean stall ratio over the region's active links.
    pub stall_ratio: f64,
    /// Links in the region that carried or stalled traffic.
    pub active_links: usize,
    /// Banded level.
    pub level: CongestionLevel,
}

/// The full-system congestion picture for one snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionMap {
    /// Per-region assessments, sorted by region id.
    pub regions: Vec<RegionCongestion>,
}

impl CongestionMap {
    /// Build from a counter snapshot and a link→region mapping.
    pub fn build(counters: &[LinkCounters], region_of_link: impl Fn(u32) -> u32) -> CongestionMap {
        let mut acc: HashMap<u32, (f64, usize)> = HashMap::new();
        for c in counters {
            if c.traffic_bytes <= 0.0 && c.stall_bytes <= 0.0 {
                continue; // idle links say nothing about congestion
            }
            let entry = acc.entry(region_of_link(c.link)).or_insert((0.0, 0));
            entry.0 += c.stall_ratio();
            entry.1 += 1;
        }
        let mut regions: Vec<RegionCongestion> = acc
            .into_iter()
            .map(|(region, (sum, n))| {
                let ratio = sum / n as f64;
                RegionCongestion {
                    region,
                    stall_ratio: ratio,
                    active_links: n,
                    level: CongestionLevel::from_stall_ratio(ratio),
                }
            })
            .collect();
        regions.sort_by_key(|r| r.region);
        CongestionMap { regions }
    }

    /// Regions at or above a level.
    pub fn hot_regions(&self, at_least: CongestionLevel) -> Vec<u32> {
        self.regions.iter().filter(|r| r.level >= at_least).map(|r| r.region).collect()
    }

    /// The single worst region, if any region was active.
    pub fn worst(&self) -> Option<&RegionCongestion> {
        self.regions
            .iter()
            .max_by(|a, b| a.stall_ratio.partial_cmp(&b.stall_ratio).expect("no NaN"))
    }

    /// System-wide mean stall ratio over active regions.
    pub fn system_stall_ratio(&self) -> f64 {
        if self.regions.is_empty() {
            return 0.0;
        }
        self.regions.iter().map(|r| r.stall_ratio).sum::<f64>() / self.regions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lc(link: u32, traffic: f64, stalls: f64) -> LinkCounters {
        LinkCounters { link, traffic_bytes: traffic, stall_bytes: stalls }
    }

    #[test]
    fn level_bands() {
        assert_eq!(CongestionLevel::from_stall_ratio(0.0), CongestionLevel::None);
        assert_eq!(CongestionLevel::from_stall_ratio(0.1), CongestionLevel::Low);
        assert_eq!(CongestionLevel::from_stall_ratio(0.5), CongestionLevel::Medium);
        assert_eq!(CongestionLevel::from_stall_ratio(0.9), CongestionLevel::High);
        assert!(CongestionLevel::High > CongestionLevel::Low);
    }

    #[test]
    fn stall_ratio_computation() {
        assert_eq!(lc(0, 900.0, 100.0).stall_ratio(), 0.1);
        assert_eq!(lc(0, 0.0, 0.0).stall_ratio(), 0.0);
        assert_eq!(lc(0, 0.0, 500.0).stall_ratio(), 1.0, "fully starved link");
    }

    #[test]
    fn regions_aggregate_their_links() {
        // Links 0..4 in region 0 (hot), 4..8 in region 1 (cool).
        let mut counters = Vec::new();
        for l in 0..4 {
            counters.push(lc(l, 200.0, 800.0));
        }
        for l in 4..8 {
            counters.push(lc(l, 1_000.0, 10.0));
        }
        let map = CongestionMap::build(&counters, |l| l / 4);
        assert_eq!(map.regions.len(), 2);
        assert_eq!(map.regions[0].level, CongestionLevel::High);
        assert_eq!(map.regions[1].level, CongestionLevel::None);
        assert_eq!(map.hot_regions(CongestionLevel::Medium), vec![0]);
        assert_eq!(map.worst().unwrap().region, 0);
        assert_eq!(map.regions[0].active_links, 4);
    }

    #[test]
    fn idle_links_are_excluded() {
        let counters = vec![lc(0, 0.0, 0.0), lc(1, 100.0, 100.0)];
        let map = CongestionMap::build(&counters, |_| 0);
        assert_eq!(map.regions.len(), 1);
        assert_eq!(map.regions[0].active_links, 1);
        assert_eq!(map.regions[0].stall_ratio, 0.5);
    }

    #[test]
    fn all_idle_is_empty_map() {
        let counters = vec![lc(0, 0.0, 0.0)];
        let map = CongestionMap::build(&counters, |_| 0);
        assert!(map.regions.is_empty());
        assert!(map.worst().is_none());
        assert_eq!(map.system_stall_ratio(), 0.0);
        assert!(map.hot_regions(CongestionLevel::Low).is_empty());
    }

    #[test]
    fn system_ratio_is_region_mean() {
        let counters = vec![lc(0, 500.0, 500.0), lc(1, 1_000.0, 0.0)];
        let map = CongestionMap::build(&counters, |l| l);
        assert!((map.system_stall_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn regions_sorted_by_id() {
        let counters = vec![lc(9, 1.0, 1.0), lc(2, 1.0, 1.0), lc(5, 1.0, 1.0)];
        let map = CongestionMap::build(&counters, |l| l);
        let ids: Vec<u32> = map.regions.iter().map(|r| r.region).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }
}
