//! HLRS aggressor/victim classification.
//!
//! Paper §II-10: "Applications having high runtime variability are
//! classified as 'victim' applications and those running concurrently that
//! don't hit the 'victim' variability threshold are considered as possible
//! 'aggressor' applications where the resource being contended for is
//! assumed to be the HSN."
//!
//! [`classify_jobs`] reproduces that pipeline from stored [`JobRecord`]s:
//! per-application runtime coefficient of variation → victims; apps that
//! overlap victims' runs but are themselves stable → aggressor suspects,
//! ranked by how often they co-ran with victim executions.

use hpcmon_metrics::{JobRecord, JobState};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Classification of one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobClass {
    /// High runtime variability: suffering from contention.
    Victim,
    /// Stable runtime and co-runs with victims: likely causing contention.
    Aggressor,
    /// Stable and not implicated.
    Neutral,
    /// Too few completed runs to judge.
    Insufficient,
}

/// Per-application report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariabilityReport {
    /// Application name.
    pub app: String,
    /// Completed runs considered.
    pub runs: usize,
    /// Mean runtime, ms.
    pub mean_runtime_ms: f64,
    /// Runtime coefficient of variation.
    pub cv: f64,
    /// Classification.
    pub class: JobClass,
    /// For aggressors: fraction of victim runs they overlapped.
    pub overlap_with_victims: f64,
}

/// Classify applications from completed job records.
///
/// `cv_threshold` is the victim variability threshold (HLRS used runtime
/// variability; 0.15 is a reasonable default), `min_runs` the minimum
/// completed runs per app to classify at all.
pub fn classify_jobs(
    records: &[JobRecord],
    cv_threshold: f64,
    min_runs: usize,
) -> Vec<VariabilityReport> {
    let completed: Vec<&JobRecord> = records
        .iter()
        .filter(|r| r.state == JobState::Completed && r.runtime_ms().is_some())
        .collect();

    // Group runtimes by application.
    let mut by_app: HashMap<&str, Vec<&JobRecord>> = HashMap::new();
    for r in &completed {
        by_app.entry(r.name.as_str()).or_default().push(r);
    }

    // First pass: runtime statistics per app.
    struct AppStat<'a> {
        app: &'a str,
        runs: Vec<&'a JobRecord>,
        mean: f64,
        cv: f64,
    }
    let mut stats: Vec<AppStat> = by_app
        .into_iter()
        .map(|(app, runs)| {
            let times: Vec<f64> =
                runs.iter().map(|r| r.runtime_ms().expect("completed") as f64).collect();
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            let var =
                times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / times.len() as f64;
            let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
            AppStat { app, runs, mean, cv }
        })
        .collect();
    stats.sort_by(|a, b| a.app.cmp(b.app));

    // Victims: enough runs and CV above threshold.
    let victim_apps: Vec<&str> = stats
        .iter()
        .filter(|s| s.runs.len() >= min_runs && s.cv > cv_threshold)
        .map(|s| s.app)
        .collect();
    let victim_runs: Vec<&JobRecord> = stats
        .iter()
        .filter(|s| victim_apps.contains(&s.app))
        .flat_map(|s| s.runs.iter().copied())
        .collect();

    // Second pass: classify, measuring overlap with victim executions.
    stats
        .into_iter()
        .map(|s| {
            let runs = s.runs.len();
            if runs < min_runs {
                return VariabilityReport {
                    app: s.app.to_owned(),
                    runs,
                    mean_runtime_ms: s.mean,
                    cv: s.cv,
                    class: JobClass::Insufficient,
                    overlap_with_victims: 0.0,
                };
            }
            if victim_apps.contains(&s.app) {
                return VariabilityReport {
                    app: s.app.to_owned(),
                    runs,
                    mean_runtime_ms: s.mean,
                    cv: s.cv,
                    class: JobClass::Victim,
                    overlap_with_victims: 0.0,
                };
            }
            // Stable app: how many victim runs did it co-run with?
            let overlapped = victim_runs
                .iter()
                .filter(|v| v.name != s.app && s.runs.iter().any(|r| overlaps(r, v)))
                .count();
            let overlap_frac = if victim_runs.is_empty() {
                0.0
            } else {
                overlapped as f64 / victim_runs.len() as f64
            };
            let class = if overlap_frac > 0.5 { JobClass::Aggressor } else { JobClass::Neutral };
            VariabilityReport {
                app: s.app.to_owned(),
                runs,
                mean_runtime_ms: s.mean,
                cv: s.cv,
                class,
                overlap_with_victims: overlap_frac,
            }
        })
        .collect()
}

fn overlaps(a: &JobRecord, b: &JobRecord) -> bool {
    match (a.start, a.end, b.start, b.end) {
        (Some(a0), Some(a1), Some(b0), Some(b1)) => a0 < b1 && b0 < a1,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::{JobId, Ts};

    fn job(id: u32, app: &str, start_min: u64, runtime_min: u64) -> JobRecord {
        JobRecord {
            id: JobId(id),
            user: "u".into(),
            name: app.into(),
            nodes: vec![id],
            submit: Ts::from_mins(start_min),
            start: Some(Ts::from_mins(start_min)),
            end: Some(Ts::from_mins(start_min + runtime_min)),
            state: JobState::Completed,
        }
    }

    /// Scenario: "fft" runs vary wildly (victim); "stencil" is rock-stable
    /// and always co-runs with fft (aggressor); "quiet" is stable and runs
    /// alone (neutral).
    fn scenario() -> Vec<JobRecord> {
        let mut jobs = Vec::new();
        let fft_runtimes = [30u64, 60, 45, 90, 35];
        for (i, rt) in fft_runtimes.iter().enumerate() {
            jobs.push(job(i as u32, "fft", i as u64 * 200, *rt));
        }
        for i in 0..5u32 {
            jobs.push(job(100 + i, "stencil", i as u64 * 200 + 10, 40));
        }
        for i in 0..5u32 {
            jobs.push(job(200 + i, "quiet", 5_000 + i as u64 * 200, 40));
        }
        jobs
    }

    fn report_for<'a>(reports: &'a [VariabilityReport], app: &str) -> &'a VariabilityReport {
        reports.iter().find(|r| r.app == app).unwrap()
    }

    #[test]
    fn classifies_victim_aggressor_neutral() {
        let reports = classify_jobs(&scenario(), 0.15, 3);
        assert_eq!(report_for(&reports, "fft").class, JobClass::Victim);
        assert!(report_for(&reports, "fft").cv > 0.15);
        let stencil = report_for(&reports, "stencil");
        assert_eq!(stencil.class, JobClass::Aggressor);
        assert!(stencil.overlap_with_victims > 0.5);
        assert_eq!(report_for(&reports, "quiet").class, JobClass::Neutral);
    }

    #[test]
    fn few_runs_is_insufficient() {
        let jobs = vec![job(0, "once", 0, 30)];
        let reports = classify_jobs(&jobs, 0.15, 3);
        assert_eq!(reports[0].class, JobClass::Insufficient);
    }

    #[test]
    fn incomplete_jobs_are_ignored() {
        let mut jobs = scenario();
        let mut running = job(999, "fft", 0, 10);
        running.end = None;
        running.state = JobState::Running;
        jobs.push(running);
        let reports = classify_jobs(&jobs, 0.15, 3);
        assert_eq!(report_for(&reports, "fft").runs, 5, "running job not counted");
    }

    #[test]
    fn stable_everything_means_no_victims() {
        let jobs: Vec<JobRecord> =
            (0..6).map(|i| job(i, if i % 2 == 0 { "a" } else { "b" }, i as u64 * 10, 40)).collect();
        let reports = classify_jobs(&jobs, 0.15, 3);
        assert!(reports.iter().all(|r| r.class == JobClass::Neutral));
        assert!(reports.iter().all(|r| r.overlap_with_victims == 0.0));
    }

    #[test]
    fn overlap_requires_temporal_intersection() {
        let a = job(0, "a", 0, 10);
        let b = job(1, "b", 10, 10); // touches at the boundary: half-open, no overlap
        assert!(!overlaps(&a, &b));
        let c = job(2, "c", 5, 10);
        assert!(overlaps(&a, &c));
    }

    #[test]
    fn empty_input() {
        assert!(classify_jobs(&[], 0.15, 3).is_empty());
    }

    #[test]
    fn reports_are_deterministic_order() {
        let r1 = classify_jobs(&scenario(), 0.15, 3);
        let r2 = classify_jobs(&scenario(), 0.15, 3);
        assert_eq!(r1, r2);
        let names: Vec<&str> = r1.iter().map(|r| r.app.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "sorted by app name");
    }
}
