//! Cross-component event association under clock skew.
//!
//! Paper §III-B: "Associating numerical or log events over components and
//! time is particularly tricky when a single global timestamp is
//! unavailable as local clock drift can result in erroneous associations."
//!
//! [`associate`] clusters events into incidents by temporal proximity: two
//! events belong to the same incident when their (possibly corrected)
//! timestamps are within `window_ms`.  The `abl_clocksync` experiment runs
//! this twice — once on drifting local stamps, once after applying a clock
//! correction — and measures how association quality collapses without
//! synchronized time.

use hpcmon_metrics::{CompId, Ts};
use serde::{Deserialize, Serialize};

/// An event to be associated: where and (reportedly) when.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssocEvent {
    /// Reported timestamp (may be skewed by the source's local clock).
    pub ts: Ts,
    /// Emitting component.
    pub comp: CompId,
    /// Caller-defined tag (e.g. ground-truth incident id, for scoring).
    pub tag: u32,
}

/// A cluster of events judged to be one incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Events in the incident, time-ordered.
    pub events: Vec<AssocEvent>,
}

impl Incident {
    /// Time span covered by the incident.
    pub fn span_ms(&self) -> u64 {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => b.ts.0.saturating_sub(a.ts.0),
            _ => 0,
        }
    }

    /// Distinct components involved.
    pub fn comps(&self) -> Vec<CompId> {
        let mut c: Vec<CompId> = self.events.iter().map(|e| e.comp).collect();
        c.sort();
        c.dedup();
        c
    }
}

/// Cluster events into incidents: sort by timestamp, then cut whenever the
/// gap to the previous event exceeds `window_ms`.  Single-linkage in time,
/// which matches how operators eyeball a log stream.
pub fn associate(mut events: Vec<AssocEvent>, window_ms: u64) -> Vec<Incident> {
    if events.is_empty() {
        return Vec::new();
    }
    events.sort_by_key(|e| e.ts);
    let mut incidents = Vec::new();
    let mut current = vec![events[0]];
    for e in events.into_iter().skip(1) {
        let prev = current.last().expect("non-empty").ts;
        if e.ts.0.saturating_sub(prev.0) <= window_ms {
            current.push(e);
        } else {
            incidents.push(Incident { events: std::mem::replace(&mut current, vec![e]) });
        }
    }
    incidents.push(Incident { events: current });
    incidents
}

/// Association quality against ground truth tags: pairwise precision and
/// recall.  Two events are a *true pair* when they share a tag; a
/// *predicted pair* when they land in the same incident.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssocScore {
    /// Fraction of predicted pairs that are true pairs.
    pub precision: f64,
    /// Fraction of true pairs that were predicted.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
}

/// Score a clustering against the events' ground-truth tags.
pub fn score(incidents: &[Incident]) -> AssocScore {
    let mut predicted_pairs = 0u64;
    let mut correct_pairs = 0u64;
    let mut all_events: Vec<AssocEvent> = Vec::new();
    for inc in incidents {
        let n = inc.events.len() as u64;
        predicted_pairs += n * (n - 1) / 2;
        for i in 0..inc.events.len() {
            for j in (i + 1)..inc.events.len() {
                if inc.events[i].tag == inc.events[j].tag {
                    correct_pairs += 1;
                }
            }
        }
        all_events.extend_from_slice(&inc.events);
    }
    // True pairs across the whole event set.
    let mut true_pairs = 0u64;
    for i in 0..all_events.len() {
        for j in (i + 1)..all_events.len() {
            if all_events[i].tag == all_events[j].tag {
                true_pairs += 1;
            }
        }
    }
    let precision =
        if predicted_pairs == 0 { 1.0 } else { correct_pairs as f64 / predicted_pairs as f64 };
    let recall = if true_pairs == 0 { 1.0 } else { correct_pairs as f64 / true_pairs as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    AssocScore { precision, recall, f1 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ms: u64, node: u32, tag: u32) -> AssocEvent {
        AssocEvent { ts: Ts(ts_ms), comp: CompId::node(node), tag }
    }

    #[test]
    fn clusters_by_gap() {
        let incidents = associate(
            vec![ev(0, 0, 1), ev(500, 1, 1), ev(900, 2, 1), ev(10_000, 3, 2), ev(10_100, 4, 2)],
            1_000,
        );
        assert_eq!(incidents.len(), 2);
        assert_eq!(incidents[0].events.len(), 3);
        assert_eq!(incidents[1].events.len(), 2);
        assert_eq!(incidents[0].comps().len(), 3);
        assert_eq!(incidents[0].span_ms(), 900);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let incidents = associate(vec![ev(900, 2, 1), ev(0, 0, 1), ev(500, 1, 1)], 1_000);
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].events[0].ts, Ts(0));
    }

    #[test]
    fn empty_input() {
        assert!(associate(vec![], 1_000).is_empty());
    }

    #[test]
    fn perfect_clustering_scores_one() {
        let incidents =
            associate(vec![ev(0, 0, 1), ev(100, 1, 1), ev(60_000, 2, 2), ev(60_100, 3, 2)], 1_000);
        let s = score(&incidents);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn skew_merges_incidents_and_hurts_precision() {
        // Two true incidents 10 s apart; skew pushes one event of incident
        // 2 right next to incident 1.
        let clean = vec![ev(0, 0, 1), ev(100, 1, 1), ev(10_000, 2, 2), ev(10_100, 3, 2)];
        let mut skewed = clean.clone();
        skewed[2].ts = Ts(600); // node 2's clock is 9.4 s slow
        let s_clean = score(&associate(clean, 2_000));
        let s_skew = score(&associate(skewed, 2_000));
        assert_eq!(s_clean.f1, 1.0);
        assert!(s_skew.precision < 1.0, "skew creates false pairs");
        assert!(s_skew.recall < 1.0, "skew splits a true pair");
    }

    #[test]
    fn singleton_incidents_have_perfect_precision() {
        // Window 0: everything is its own incident → no predicted pairs.
        let incidents = associate(vec![ev(0, 0, 1), ev(5_000, 1, 1)], 100);
        let s = score(&incidents);
        assert_eq!(s.precision, 1.0, "vacuous precision");
        assert_eq!(s.recall, 0.0, "missed the true pair");
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn span_and_comps_dedup() {
        let incidents = associate(vec![ev(0, 7, 1), ev(10, 7, 1), ev(20, 8, 1)], 100);
        assert_eq!(incidents[0].comps(), vec![CompId::node(7), CompId::node(8)]);
        assert_eq!(incidents[0].span_ms(), 20);
    }
}
