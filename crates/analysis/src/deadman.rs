//! Deadman monitoring: detecting the *absence* of expected data.
//!
//! A monitoring system whose collector dies looks exactly like a perfectly
//! healthy machine — no anomalies, no errors, just silence.  The paper's
//! requirement that "all monitoring system capabilities should be
//! production capabilities" implies the monitoring must watch itself.
//! [`Deadman`] tracks expected feeds and flags any that miss their
//! deadline.

use hpcmon_metrics::Ts;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A feed that went quiet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SilentFeed {
    /// The feed's registered name.
    pub feed: String,
    /// When it last reported (`None` = never since registration).
    pub last_seen: Option<Ts>,
    /// How overdue it is, ms.
    pub overdue_ms: u64,
}

/// Tracks per-feed heartbeats against an expected interval.
///
/// ```
/// use hpcmon_analysis::Deadman;
/// use hpcmon_metrics::{Ts, MINUTE_MS};
///
/// let mut deadman = Deadman::new(MINUTE_MS);
/// deadman.beat("power-collector", Ts::from_mins(10));
/// assert!(deadman.check(Ts::from_mins(11)).is_empty());
/// let silent = deadman.check(Ts::from_mins(20));
/// assert_eq!(silent[0].feed, "power-collector");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Deadman {
    expected_interval_ms: u64,
    grace_factor: f64,
    feeds: HashMap<String, Option<Ts>>,
    /// Feeds the supervisor has quarantined: their grace collapses to
    /// zero, so one missed beat flags immediately.  A quarantined feed is
    /// *known* broken — waiting out the normal grace would turn a detected
    /// fault back into silence, exactly what the deadman exists to prevent.
    quarantined: Vec<String>,
}

impl Deadman {
    /// Expect each registered feed to report every `expected_interval_ms`,
    /// with 2.5× grace before flagging.
    pub fn new(expected_interval_ms: u64) -> Deadman {
        assert!(expected_interval_ms > 0);
        Deadman {
            expected_interval_ms,
            grace_factor: 2.5,
            feeds: HashMap::new(),
            quarantined: Vec::new(),
        }
    }

    /// 64-bit digest of the feed table, for per-tick replay verification.
    /// Feeds are folded in sorted order so hash-map iteration order cannot
    /// leak into the digest.
    pub fn state_digest(&self) -> u64 {
        let mut h = hpcmon_metrics::StateHash::new(0xDD);
        h.u64(self.expected_interval_ms).f64(self.grace_factor);
        let mut feeds: Vec<(&String, &Option<Ts>)> = self.feeds.iter().collect();
        feeds.sort_by_key(|(name, _)| name.as_str());
        h.usize(feeds.len());
        for (name, last) in feeds {
            h.str(name).u64(last.map_or(u64::MAX, |t| t.0));
        }
        let mut q: Vec<&String> = self.quarantined.iter().collect();
        q.sort();
        h.usize(q.len());
        for name in q {
            h.str(name);
        }
        h.finish()
    }

    /// Change the grace multiplier (≥ 1).
    pub fn with_grace_factor(mut self, factor: f64) -> Deadman {
        assert!(factor >= 1.0);
        self.grace_factor = factor;
        self
    }

    /// Register a feed that must report.  Registration time counts as the
    /// reference point for a feed that never reports at all.
    pub fn register(&mut self, feed: &str) {
        self.feeds.entry(feed.to_owned()).or_insert(None);
    }

    /// Record a report from a feed (auto-registers unknown feeds).
    pub fn beat(&mut self, feed: &str, ts: Ts) {
        let entry = self.feeds.entry(feed.to_owned()).or_insert(None);
        if entry.is_none_or(|prev| ts > prev) {
            *entry = Some(ts);
        }
    }

    /// Deadline in ms after the last beat before a feed is overdue.
    pub fn deadline_ms(&self) -> u64 {
        (self.expected_interval_ms as f64 * self.grace_factor) as u64
    }

    /// Hand a feed to (or take it back from) quarantine.  While
    /// quarantined, the feed's grace is zero: any missed beat is flagged
    /// on the very next check, so a supervised fault surfaces as a
    /// monitoring gap immediately rather than after the normal grace.
    pub fn set_quarantined(&mut self, feed: &str, quarantined: bool) {
        let present = self.quarantined.iter().any(|f| f == feed);
        if quarantined && !present {
            self.quarantined.push(feed.to_owned());
            self.register(feed);
        } else if !quarantined && present {
            self.quarantined.retain(|f| f != feed);
        }
    }

    /// Whether a feed is currently quarantined.
    pub fn is_quarantined(&self, feed: &str) -> bool {
        self.quarantined.iter().any(|f| f == feed)
    }

    /// Feeds overdue as of `now`, sorted most-overdue first.
    pub fn check(&self, now: Ts) -> Vec<SilentFeed> {
        let mut silent: Vec<SilentFeed> = self
            .feeds
            .iter()
            .filter_map(|(name, last)| {
                let deadline = if self.is_quarantined(name) { 0 } else { self.deadline_ms() };
                let reference = last.unwrap_or(Ts::ZERO);
                let age = now.0.saturating_sub(reference.0);
                (age > deadline).then(|| SilentFeed {
                    feed: name.clone(),
                    last_seen: *last,
                    overdue_ms: age - deadline,
                })
            })
            .collect();
        silent.sort_by(|a, b| b.overdue_ms.cmp(&a.overdue_ms).then(a.feed.cmp(&b.feed)));
        silent
    }

    /// Number of tracked feeds.
    pub fn len(&self) -> usize {
        self.feeds.len()
    }

    /// Whether no feeds are registered.
    pub fn is_empty(&self) -> bool {
        self.feeds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::MINUTE_MS;

    #[test]
    fn healthy_feeds_are_quiet() {
        let mut d = Deadman::new(MINUTE_MS);
        d.beat("node", Ts::from_mins(10));
        d.beat("power", Ts::from_mins(10));
        assert!(d.check(Ts::from_mins(11)).is_empty());
        assert!(d.check(Ts::from_mins(12)).is_empty(), "within 2.5x grace");
    }

    #[test]
    fn silent_feed_is_flagged_with_overdue_amount() {
        let mut d = Deadman::new(MINUTE_MS);
        d.beat("node", Ts::from_mins(10));
        d.beat("power", Ts::from_mins(24));
        let silent = d.check(Ts::from_mins(25));
        assert_eq!(silent.len(), 1);
        assert_eq!(silent[0].feed, "node");
        assert_eq!(silent[0].last_seen, Some(Ts::from_mins(10)));
        // 15 min since last beat, deadline 2.5 min → 12.5 min overdue.
        assert_eq!(silent[0].overdue_ms, 15 * MINUTE_MS - d.deadline_ms());
    }

    #[test]
    fn never_reported_feed_is_flagged() {
        let mut d = Deadman::new(MINUTE_MS);
        d.register("ghost");
        let silent = d.check(Ts::from_mins(5));
        assert_eq!(silent.len(), 1);
        assert_eq!(silent[0].last_seen, None);
    }

    #[test]
    fn recovery_clears_the_flag() {
        let mut d = Deadman::new(MINUTE_MS);
        d.beat("node", Ts::from_mins(1));
        assert_eq!(d.check(Ts::from_mins(30)).len(), 1);
        d.beat("node", Ts::from_mins(30));
        assert!(d.check(Ts::from_mins(31)).is_empty());
    }

    #[test]
    fn most_overdue_first() {
        let mut d = Deadman::new(MINUTE_MS);
        d.beat("a", Ts::from_mins(1));
        d.beat("b", Ts::from_mins(10));
        let silent = d.check(Ts::from_mins(40));
        assert_eq!(silent.len(), 2);
        assert_eq!(silent[0].feed, "a");
    }

    #[test]
    fn stale_beats_do_not_move_time_backwards() {
        let mut d = Deadman::new(MINUTE_MS);
        d.beat("a", Ts::from_mins(20));
        d.beat("a", Ts::from_mins(5)); // late-arriving old report
        assert!(d.check(Ts::from_mins(21)).is_empty());
    }

    #[test]
    fn registration_is_idempotent() {
        let mut d = Deadman::new(MINUTE_MS);
        d.beat("a", Ts::from_mins(7));
        d.register("a"); // must not clobber the beat
        assert!(d.check(Ts::from_mins(8)).is_empty());
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_interval_rejected() {
        Deadman::new(0);
    }

    #[test]
    fn quarantined_feed_flags_on_the_first_missed_beat() {
        let mut d = Deadman::new(MINUTE_MS);
        d.beat("node", Ts::from_mins(10));
        d.beat("power", Ts::from_mins(10));
        d.set_quarantined("node", true);
        assert!(d.is_quarantined("node"));
        // One interval later: "power" is well within grace, but the
        // quarantined feed is flagged immediately — a known-broken
        // collector must never look healthy.
        let silent = d.check(Ts::from_mins(11));
        assert_eq!(silent.len(), 1);
        assert_eq!(silent[0].feed, "node");
        assert_eq!(silent[0].overdue_ms, MINUTE_MS);
        // A beat at the current instant (successful re-probe) clears it...
        d.beat("node", Ts::from_mins(12));
        d.beat("power", Ts::from_mins(12));
        assert!(d.check(Ts::from_mins(12)).is_empty());
        // ...and release restores the normal grace.
        d.set_quarantined("node", false);
        assert!(!d.is_quarantined("node"));
        assert!(d.check(Ts::from_mins(14)).is_empty(), "back within 2.5x grace");
        // Quarantining an unknown feed registers it (never silent).
        d.set_quarantined("ghost", true);
        assert_eq!(d.check(Ts::from_mins(14)).len(), 1);
    }
}
