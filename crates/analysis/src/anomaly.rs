//! Streaming anomaly and changepoint detectors.
//!
//! NERSC's Figure 2 workflow — "occurrences and onset of performance
//! problems are apparent in visualizations tracking performance over time"
//! — is automated here: z-score and MAD detectors flag deviations from a
//! learned baseline, a CUSUM detector finds sustained level shifts
//! (degradation onsets), and a plain threshold detector covers
//! requirements like the ASHRAE gas limit.

use crate::stats::RollingStats;
use hpcmon_metrics::{StateHash, Ts};
use serde::{Deserialize, Serialize};

/// A flagged observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Anomaly {
    /// When it was observed.
    pub ts: Ts,
    /// The offending value.
    pub value: f64,
    /// Detector-specific score (z-score, MAD multiples, CUSUM sum, ...).
    pub score: f64,
}

/// A streaming detector over one series.
pub trait Detector: Send {
    /// Observe one point; return an anomaly if this point is flagged.
    fn observe(&mut self, ts: Ts, value: f64) -> Option<Anomaly>;
    /// Reset learned state (e.g. after a known maintenance window).
    fn reset(&mut self);
    /// 64-bit digest of learned state, folded into the flight recorder's
    /// per-tick analysis sub-hash.  Stateless detectors keep the default.
    fn state_digest(&self) -> u64 {
        0
    }
    /// Serialize learned state for a flight-recorder checkpoint.  `None`
    /// (the default) means the detector is stateless or opts out — replay
    /// seek then resumes it from a fresh baseline, which the divergence
    /// verifier will surface if it matters.
    fn snapshot_state(&self) -> Option<serde::Value> {
        None
    }
    /// Restore learned state captured by [`Detector::snapshot_state`].
    /// Ignoring an unrecognized value is correct: the digest check catches
    /// any resulting divergence.
    fn restore_state(&mut self, _state: &serde::Value) {}
}

/// Flags values more than `threshold` standard deviations from the rolling
/// window mean.  Flagged values are not folded into the baseline, so a
/// fault cannot teach the detector that broken is normal.
#[derive(Debug, Clone)]
pub struct ZScoreDetector {
    stats: RollingStats,
    window: usize,
    threshold: f64,
    min_samples: usize,
    /// Absolute floor on σ so a perfectly flat baseline doesn't flag noise.
    sigma_floor: f64,
}

impl ZScoreDetector {
    /// Window size and z threshold (e.g. 60, 3.0).
    pub fn new(window: usize, threshold: f64) -> ZScoreDetector {
        ZScoreDetector {
            stats: RollingStats::new(window),
            window,
            threshold,
            min_samples: (window / 4).max(8),
            sigma_floor: 1e-9,
        }
    }

    /// Set the σ floor (units of the series).
    pub fn with_sigma_floor(mut self, floor: f64) -> ZScoreDetector {
        self.sigma_floor = floor;
        self
    }
}

impl Detector for ZScoreDetector {
    fn observe(&mut self, ts: Ts, value: f64) -> Option<Anomaly> {
        if self.stats.len() >= self.min_samples {
            let mean = self.stats.mean().expect("non-empty");
            let sigma = self.stats.std_dev().expect("non-empty").max(self.sigma_floor);
            let z = (value - mean) / sigma;
            if z.abs() > self.threshold {
                return Some(Anomaly { ts, value, score: z });
            }
        }
        self.stats.push(value);
        None
    }

    fn reset(&mut self) {
        self.stats = RollingStats::new(self.window);
    }

    fn state_digest(&self) -> u64 {
        let mut h = StateHash::new(0xA1);
        self.stats.digest_into(&mut h);
        h.finish()
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        self.stats.to_value().ok()
    }

    fn restore_state(&mut self, state: &serde::Value) {
        if let Ok(s) = RollingStats::from_value(state) {
            self.stats = s;
        }
    }
}

/// Robust variant: flags values more than `threshold` scaled MADs from the
/// rolling median.  Survives windows already containing outliers.
#[derive(Debug, Clone)]
pub struct MadDetector {
    stats: RollingStats,
    window: usize,
    threshold: f64,
    min_samples: usize,
    mad_floor: f64,
}

impl MadDetector {
    /// Consistency constant for normally distributed data.
    const MAD_TO_SIGMA: f64 = 1.4826;

    /// Window size and threshold in σ-equivalents.
    pub fn new(window: usize, threshold: f64) -> MadDetector {
        MadDetector {
            stats: RollingStats::new(window),
            window,
            threshold,
            min_samples: (window / 4).max(8),
            mad_floor: 1e-9,
        }
    }

    /// Set the MAD floor (units of the series).
    pub fn with_mad_floor(mut self, floor: f64) -> MadDetector {
        self.mad_floor = floor;
        self
    }
}

impl Detector for MadDetector {
    fn observe(&mut self, ts: Ts, value: f64) -> Option<Anomaly> {
        if self.stats.len() >= self.min_samples {
            let median = self.stats.median().expect("non-empty");
            let mad = self.stats.mad().expect("non-empty").max(self.mad_floor);
            let score = (value - median) / (mad * Self::MAD_TO_SIGMA);
            if score.abs() > self.threshold {
                return Some(Anomaly { ts, value, score });
            }
        }
        self.stats.push(value);
        None
    }

    fn reset(&mut self) {
        self.stats = RollingStats::new(self.window);
    }

    fn state_digest(&self) -> u64 {
        let mut h = StateHash::new(0xA2);
        self.stats.digest_into(&mut h);
        h.finish()
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        self.stats.to_value().ok()
    }

    fn restore_state(&mut self, state: &serde::Value) {
        if let Ok(s) = RollingStats::from_value(state) {
            self.stats = s;
        }
    }
}

/// Fixed-bound detector: fires whenever the value crosses the limit
/// (above when `upper`, below otherwise).  The ASHRAE/free-memory case.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdDetector {
    limit: f64,
    upper: bool,
}

impl ThresholdDetector {
    /// Fire when value exceeds `limit`.
    pub fn above(limit: f64) -> ThresholdDetector {
        ThresholdDetector { limit, upper: true }
    }

    /// Fire when value drops below `limit`.
    pub fn below(limit: f64) -> ThresholdDetector {
        ThresholdDetector { limit, upper: false }
    }
}

impl Detector for ThresholdDetector {
    fn observe(&mut self, ts: Ts, value: f64) -> Option<Anomaly> {
        let fired = if self.upper { value > self.limit } else { value < self.limit };
        fired.then_some(Anomaly { ts, value, score: value - self.limit })
    }

    fn reset(&mut self) {}
}

/// One-sided CUSUM changepoint detector: accumulates positive deviations
/// beyond a `slack` margin from a learned baseline; fires when the sum
/// exceeds `decision`.  Finds *sustained* shifts that per-point detectors
/// dismiss as noise — the shape of a slow filesystem degradation onset.
#[derive(Debug, Clone)]
pub struct CusumDetector {
    baseline: RollingStats,
    baseline_window: usize,
    slack_sigmas: f64,
    decision_sigmas: f64,
    sum: f64,
    frozen_mean: Option<(f64, f64)>,
}

impl CusumDetector {
    /// Learn the baseline over `baseline_window` points, then accumulate
    /// deviations beyond `slack_sigmas`, firing at `decision_sigmas` of
    /// accumulated excess.
    pub fn new(baseline_window: usize, slack_sigmas: f64, decision_sigmas: f64) -> CusumDetector {
        CusumDetector {
            baseline: RollingStats::new(baseline_window),
            baseline_window,
            slack_sigmas,
            decision_sigmas,
            sum: 0.0,
            frozen_mean: None,
        }
    }

    /// Accumulated CUSUM statistic (σ units).
    pub fn statistic(&self) -> f64 {
        self.sum
    }
}

impl Detector for CusumDetector {
    fn observe(&mut self, ts: Ts, value: f64) -> Option<Anomaly> {
        match self.frozen_mean {
            None => {
                self.baseline.push(value);
                if self.baseline.is_full() {
                    let mean = self.baseline.mean().expect("full");
                    let sigma = self.baseline.std_dev().expect("full").max(1e-9);
                    self.frozen_mean = Some((mean, sigma));
                }
                None
            }
            Some((mean, sigma)) => {
                let z = (value - mean) / sigma;
                self.sum = (self.sum + z - self.slack_sigmas).max(0.0);
                if self.sum > self.decision_sigmas {
                    let score = self.sum;
                    self.sum = 0.0;
                    Some(Anomaly { ts, value, score })
                } else {
                    None
                }
            }
        }
    }

    fn reset(&mut self) {
        self.baseline = RollingStats::new(self.baseline_window);
        self.sum = 0.0;
        self.frozen_mean = None;
    }

    fn state_digest(&self) -> u64 {
        let mut h = StateHash::new(0xA3);
        self.baseline.digest_into(&mut h);
        h.f64(self.sum);
        match self.frozen_mean {
            Some((mean, sigma)) => h.f64(mean).f64(sigma),
            None => h.u64(u64::MAX),
        };
        h.finish()
    }

    fn snapshot_state(&self) -> Option<serde::Value> {
        CusumState { baseline: self.baseline.clone(), sum: self.sum, frozen_mean: self.frozen_mean }
            .to_value()
            .ok()
    }

    fn restore_state(&mut self, state: &serde::Value) {
        if let Ok(s) = CusumState::from_value(state) {
            self.baseline = s.baseline;
            self.sum = s.sum;
            self.frozen_mean = s.frozen_mean;
        }
    }
}

/// Checkpointed CUSUM learned state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CusumState {
    baseline: RollingStats,
    sum: f64,
    frozen_mean: Option<(f64, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(det: &mut dyn Detector, values: &[f64]) -> Vec<(usize, Anomaly)> {
        values
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| det.observe(Ts::from_mins(i as u64), v).map(|a| (i, a)))
            .collect()
    }

    fn steady_then_spike() -> Vec<f64> {
        let mut v: Vec<f64> = (0..50).map(|i| 100.0 + ((i * 37) % 10) as f64 * 0.1).collect();
        v.push(200.0);
        v.extend((0..10).map(|i| 100.0 + ((i * 37) % 10) as f64 * 0.1));
        v
    }

    #[test]
    fn zscore_flags_spike_only() {
        let mut det = ZScoreDetector::new(32, 4.0);
        let hits = feed(&mut det, &steady_then_spike());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 50);
        assert!(hits[0].1.score > 4.0);
    }

    #[test]
    fn zscore_does_not_learn_from_anomalies() {
        let mut det = ZScoreDetector::new(32, 4.0);
        let mut values: Vec<f64> = (0..40).map(|i| 100.0 + (i % 5) as f64 * 0.1).collect();
        // A sustained fault: every one of these should flag, because the
        // baseline must not absorb flagged values.
        values.extend(std::iter::repeat_n(300.0, 10));
        let hits = feed(&mut det, &values);
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn zscore_quiet_during_warmup() {
        let mut det = ZScoreDetector::new(32, 3.0);
        let hits = feed(&mut det, &[1.0, 100.0, 5.0, 80.0]);
        assert!(hits.is_empty(), "min_samples suppresses early noise");
    }

    #[test]
    fn zscore_sigma_floor_suppresses_flat_noise() {
        // A perfectly flat baseline then a tiny wiggle: without a floor
        // this flags; with a floor it does not.
        let mut values = vec![5.0; 40];
        values.push(5.001);
        let mut with_floor = ZScoreDetector::new(32, 3.0).with_sigma_floor(0.1);
        assert!(feed(&mut with_floor, &values).is_empty());
        let mut without = ZScoreDetector::new(32, 3.0);
        assert_eq!(feed(&mut without, &values).len(), 1);
    }

    #[test]
    fn mad_tolerates_polluted_window() {
        // Window contains occasional outliers; MAD stays calm about
        // normal values and still flags the monster.
        let mut values = Vec::new();
        for i in 0..60 {
            values.push(if i % 10 == 9 { 130.0 } else { 100.0 + (i % 3) as f64 });
        }
        values.push(500.0);
        let mut det = MadDetector::new(32, 6.0).with_mad_floor(0.5);
        let hits = feed(&mut det, &values);
        assert!(hits.iter().any(|(i, _)| *i == 60), "monster flagged");
        // The mild 130s may or may not flag depending on window phase, but
        // normal 100-102 values never do.
        assert!(hits.iter().all(|(i, _)| values[*i] >= 130.0));
    }

    #[test]
    fn threshold_above_and_below() {
        let mut above = ThresholdDetector::above(10.0);
        assert!(above.observe(Ts(0), 10.5).is_some());
        assert!(above.observe(Ts(1), 10.0).is_none());
        let mut below = ThresholdDetector::below(4.0 * 1e9);
        assert!(below.observe(Ts(2), 1e9).is_some());
        assert!(below.observe(Ts(3), 5e9).is_none());
    }

    #[test]
    fn cusum_finds_small_sustained_shift() {
        // A +1.5σ shift: far too small for a z=4 detector, but sustained.
        let mut values: Vec<f64> = (0..40).map(|i| 10.0 + (i % 4) as f64 * 0.1).collect();
        let sigma = {
            let mut s = RollingStats::new(40);
            values.iter().for_each(|&v| s.push(v));
            s.std_dev().unwrap()
        };
        values.extend((0..30).map(|i| 10.15 + 1.5 * sigma + (i % 4) as f64 * 0.1));
        let mut cusum = CusumDetector::new(40, 0.5, 8.0);
        let hits = feed(&mut cusum, &values);
        assert!(!hits.is_empty(), "sustained shift detected");
        let onset = hits[0].0;
        assert!((40..60).contains(&onset), "onset near the true changepoint, got {onset}");

        let mut z = ZScoreDetector::new(40, 4.0);
        assert!(feed(&mut z, &values).is_empty(), "z-score misses the small shift");
    }

    #[test]
    fn cusum_ignores_transient_spike() {
        // A single ~7σ blip: loud enough for a z-score detector, but not a
        // sustained shift, so CUSUM (decision = 20σ of accumulation) must
        // stay quiet and decay back to zero on the normal values after.
        let mut values: Vec<f64> = (0..40).map(|i| 10.0 + (i % 4) as f64 * 0.1).collect();
        values.push(11.0); // single spike
        values.extend((0..20).map(|i| 10.0 + (i % 4) as f64 * 0.1));
        let mut cusum = CusumDetector::new(40, 0.5, 20.0);
        assert!(feed(&mut cusum, &values).is_empty());
        assert!(cusum.statistic() < 5.0, "accumulator stays far from the decision bound");
    }

    #[test]
    fn reset_clears_state() {
        let mut det = ZScoreDetector::new(16, 3.0);
        for i in 0..16 {
            det.observe(Ts(i), 100.0 + (i % 3) as f64);
        }
        det.reset();
        // After reset the warmup applies again.
        assert!(det.observe(Ts(99), 1_000.0).is_none());

        let mut cusum = CusumDetector::new(8, 0.5, 5.0);
        for i in 0..8 {
            cusum.observe(Ts(i), 1.0 + (i % 2) as f64 * 0.01);
        }
        cusum.reset();
        assert_eq!(cusum.statistic(), 0.0);
    }
}
