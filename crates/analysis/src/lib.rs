#![warn(missing_docs)]

//! `hpcmon-analysis` — turning monitoring data into findings.
//!
//! Table I (Analysis and Visualization) asks for analysis "at a variety of
//! locations within the monitoring infrastructure (e.g., at data sources,
//! as streaming analysis, at the store, at points of exposure)".  Every
//! analysis here is therefore *streaming-capable*: observe one sample or
//! log record at a time, keep bounded state, emit findings incrementally.
//!
//! The modules map one-to-one onto site techniques from §II of the paper:
//!
//! | module | site technique |
//! |---|---|
//! | [`anomaly`] | NERSC benchmark-deviation flagging; changepoint onsets (Fig 2) |
//! | [`trend`] | ALCF BER trend analysis; ORNL corrosion-dose forecasting |
//! | [`correlator`] | SEC/Splunk well-known-line detection and windowed correlation |
//! | [`association`] | cross-component event association under clock drift (§III-B) |
//! | [`variability`] | HLRS aggressor/victim classification by runtime variability |
//! | [`power_profile`] | KAUST power-profile matching and imbalance detection (Fig 3) |
//! | [`congestion`] | SNL HSN congestion levels and regions from stall counters |
//! | [`novelty`] | "new or infrequent events may be missed" — template novelty |

pub mod anomaly;
pub mod association;
pub mod congestion;
pub mod correlator;
pub mod deadman;
pub mod novelty;
pub mod power_profile;
pub mod stats;
pub mod template_miner;
pub mod trend;
pub mod variability;

pub use anomaly::{
    Anomaly, CusumDetector, Detector, MadDetector, ThresholdDetector, ZScoreDetector,
};
pub use association::{associate, Incident};
pub use congestion::{CongestionLevel, CongestionMap};
pub use correlator::{Correlator, CorrelatorSnapshot, EventMatch, Finding, Rule};
pub use deadman::{Deadman, SilentFeed};
pub use novelty::NoveltyDetector;
pub use power_profile::{ImbalanceDetector, PowerProfileLibrary, ProfileVerdict};
pub use stats::{Ewma, P2Quantile, RollingStats};
pub use template_miner::{OccurrenceShift, TemplateMiner, TemplateStat};
pub use trend::{LinearTrend, TrendTracker};
pub use variability::{classify_jobs, JobClass, VariabilityReport};
