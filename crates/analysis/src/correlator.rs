//! SEC-style log event correlation.
//!
//! "Cray systems more generally use SEC, which can trigger events, such as
//! alerts, upon matching conditions" and "in production most log analysis
//! involves detection of well-known log lines" (paper §III-B, §IV-C).
//! Three rule shapes cover what the sites describe:
//!
//! * [`Rule::Single`] — fire on every matching line (the well-known-line
//!   scan).
//! * [`Rule::Threshold`] — fire when N matching lines land within a time
//!   window (error storms, CRC retry bursts).
//! * [`Rule::Pair`] — fire when a *second* pattern follows a *first*
//!   within a window (event propagation across components, e.g. an HSN
//!   link failure followed by job failures — the cross-time association
//!   the paper says "require[s] a vendor-supported understanding of the
//!   architecture").

use hpcmon_metrics::{CompId, LogRecord, Severity, Ts};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Predicate over log records.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventMatch {
    /// Match a specific template id.
    pub template: Option<u32>,
    /// Require this (case-insensitive) substring in the message.
    pub contains: Option<String>,
    /// Require at least this severity.
    pub min_severity: Option<Severity>,
    /// Require this source subsystem.
    pub source: Option<String>,
    /// Require this component kind (any index).
    pub comp_kind: Option<hpcmon_metrics::CompKind>,
}

impl EventMatch {
    /// Match a template id.
    pub fn template(t: u32) -> EventMatch {
        EventMatch { template: Some(t), ..Default::default() }
    }

    /// Match a message substring.
    pub fn contains(s: &str) -> EventMatch {
        EventMatch { contains: Some(s.to_lowercase()), ..Default::default() }
    }

    /// Add a severity floor.
    pub fn with_min_severity(mut self, sev: Severity) -> EventMatch {
        self.min_severity = Some(sev);
        self
    }

    /// Add a source requirement.
    pub fn with_source(mut self, source: &str) -> EventMatch {
        self.source = Some(source.to_owned());
        self
    }

    /// Add a component-kind requirement.
    pub fn with_comp_kind(mut self, kind: hpcmon_metrics::CompKind) -> EventMatch {
        self.comp_kind = Some(kind);
        self
    }

    /// Whether a record satisfies every present clause.
    pub fn matches(&self, rec: &LogRecord) -> bool {
        if let Some(t) = self.template {
            if rec.template != Some(t) {
                return false;
            }
        }
        if let Some(ref s) = self.contains {
            if !rec.message.to_lowercase().contains(s.as_str()) {
                return false;
            }
        }
        if let Some(min) = self.min_severity {
            if rec.severity < min {
                return false;
            }
        }
        if let Some(ref src) = self.source {
            if &rec.source != src {
                return false;
            }
        }
        if let Some(kind) = self.comp_kind {
            if rec.comp.kind != kind {
                return false;
            }
        }
        true
    }
}

/// A correlation rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Rule {
    /// Fire on every match.
    Single {
        /// Rule name (reported in findings).
        name: String,
        /// The predicate.
        m: EventMatch,
    },
    /// Fire when `count` matches land within `window_ms`.
    Threshold {
        /// Rule name.
        name: String,
        /// The predicate.
        m: EventMatch,
        /// Matches required.
        count: usize,
        /// Window length.
        window_ms: u64,
    },
    /// Fire when `second` occurs within `window_ms` after `first`.
    Pair {
        /// Rule name.
        name: String,
        /// The triggering predicate.
        first: EventMatch,
        /// The consequent predicate.
        second: EventMatch,
        /// Maximum delay between them.
        window_ms: u64,
    },
}

impl Rule {
    /// The rule's name.
    pub fn name(&self) -> &str {
        match self {
            Rule::Single { name, .. } | Rule::Threshold { name, .. } | Rule::Pair { name, .. } => {
                name
            }
        }
    }
}

/// A fired rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Name of the rule that fired.
    pub rule: String,
    /// When it fired (timestamp of the completing record).
    pub ts: Ts,
    /// Components involved (1 for Single/Threshold trigger, 2 for Pair).
    pub comps: Vec<CompId>,
    /// Short human explanation.
    pub detail: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum RuleState {
    Single,
    Threshold { recent: VecDeque<Ts> },
    Pair { pending_first: VecDeque<(Ts, CompId)> },
}

/// Checkpointed correlator state: per-rule windows (in rule order) plus the
/// lifetime counters.  The rules themselves are configuration and are
/// rebuilt by the caller; restore re-attaches state positionally.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelatorSnapshot {
    states: Vec<RuleState>,
    records_observed: u64,
    findings_emitted: u64,
}

/// The correlation engine: feed records in time order, collect findings.
///
/// ```
/// use hpcmon_analysis::{Correlator, EventMatch, Rule};
/// use hpcmon_metrics::{CompId, LogRecord, Severity, Ts};
///
/// let mut correlator = Correlator::new(vec![Rule::Single {
///     name: "link-down".into(),
///     m: EventMatch::contains("lcb failure"),
/// }]);
/// let rec = LogRecord::new(
///     Ts(0), CompId::link(4), Severity::Error, "hwerr", "LCB failure on link r0->r1",
/// );
/// let findings = correlator.observe(&rec);
/// assert_eq!(findings.len(), 1);
/// assert_eq!(findings[0].rule, "link-down");
/// ```
pub struct Correlator {
    rules: Vec<(Rule, RuleState)>,
    records_observed: u64,
    findings_emitted: u64,
}

impl Correlator {
    /// Build from a rule set.
    pub fn new(rules: Vec<Rule>) -> Correlator {
        let rules = rules
            .into_iter()
            .map(|r| {
                let state = match &r {
                    Rule::Single { .. } => RuleState::Single,
                    Rule::Threshold { .. } => RuleState::Threshold { recent: VecDeque::new() },
                    Rule::Pair { .. } => RuleState::Pair { pending_first: VecDeque::new() },
                };
                (r, state)
            })
            .collect();
        Correlator { rules, records_observed: 0, findings_emitted: 0 }
    }

    /// Lifetime evaluation counts: (records observed, findings emitted) —
    /// the self-telemetry feed for this analysis stage.
    pub fn eval_counts(&self) -> (u64, u64) {
        (self.records_observed, self.findings_emitted)
    }

    /// Capture the correlation windows for a flight-recorder checkpoint.
    pub fn snapshot(&self) -> CorrelatorSnapshot {
        CorrelatorSnapshot {
            states: self.rules.iter().map(|(_, s)| s.clone()).collect(),
            records_observed: self.records_observed,
            findings_emitted: self.findings_emitted,
        }
    }

    /// Re-attach checkpointed state to this correlator's rules
    /// (positionally; a rule-count mismatch leaves extra rules fresh).
    pub fn restore(&mut self, snap: CorrelatorSnapshot) {
        for ((_, state), restored) in self.rules.iter_mut().zip(snap.states) {
            *state = restored;
        }
        self.records_observed = snap.records_observed;
        self.findings_emitted = snap.findings_emitted;
    }

    /// 64-bit digest of the correlation windows, for per-tick replay
    /// verification.
    pub fn state_digest(&self) -> u64 {
        let mut h = hpcmon_metrics::StateHash::new(0xC0);
        h.u64(self.records_observed).u64(self.findings_emitted).usize(self.rules.len());
        for (_, state) in &self.rules {
            match state {
                RuleState::Single => {
                    h.u64(0);
                }
                RuleState::Threshold { recent } => {
                    h.u64(1).usize(recent.len());
                    for t in recent {
                        h.u64(t.0);
                    }
                }
                RuleState::Pair { pending_first } => {
                    h.u64(2).usize(pending_first.len());
                    for (t, c) in pending_first {
                        h.u64(t.0).u64(c.kind as u64).u64(c.index as u64);
                    }
                }
            }
        }
        h.finish()
    }

    /// The default production rule set over the simulator's templates.
    pub fn production_rules() -> Vec<Rule> {
        // Template ids from hpcmon-sim's engine::templates; duplicated as
        // literals here because analysis must not depend on the simulator
        // (in production these come from a site config file).
        vec![
            Rule::Single {
                name: "node-heartbeat-lost".into(),
                m: EventMatch::template(1).with_min_severity(Severity::Critical),
            },
            Rule::Single { name: "link-failed".into(), m: EventMatch::template(3) },
            Rule::Single { name: "fs-mount-lost".into(), m: EventMatch::template(7) },
            Rule::Single { name: "gpu-xid".into(), m: EventMatch::template(8) },
            Rule::Single { name: "oom-kill".into(), m: EventMatch::template(13) },
            Rule::Threshold {
                name: "crc-retry-storm".into(),
                m: EventMatch::template(5),
                count: 5,
                window_ms: 10 * 60_000,
            },
            Rule::Pair {
                name: "link-failure-kills-jobs".into(),
                first: EventMatch::template(3),
                second: EventMatch::template(11),
                window_ms: 5 * 60_000,
            },
            Rule::Pair {
                name: "service-death-then-sideline".into(),
                first: EventMatch::template(6),
                second: EventMatch::template(12),
                window_ms: 30 * 60_000,
            },
        ]
    }

    /// Observe one record; returns the findings it completes.
    pub fn observe(&mut self, rec: &LogRecord) -> Vec<Finding> {
        self.records_observed += 1;
        let mut findings = Vec::new();
        for (rule, state) in &mut self.rules {
            match (rule, state) {
                (Rule::Single { name, m }, RuleState::Single) => {
                    if m.matches(rec) {
                        findings.push(Finding {
                            rule: name.clone(),
                            ts: rec.ts,
                            comps: vec![rec.comp],
                            detail: rec.message.clone(),
                        });
                    }
                }
                (
                    Rule::Threshold { name, m, count, window_ms },
                    RuleState::Threshold { recent },
                ) => {
                    if m.matches(rec) {
                        recent.push_back(rec.ts);
                        let cutoff = rec.ts.sub_ms(*window_ms);
                        while recent.front().is_some_and(|&t| t < cutoff) {
                            recent.pop_front();
                        }
                        if recent.len() >= *count {
                            findings.push(Finding {
                                rule: name.clone(),
                                ts: rec.ts,
                                comps: vec![rec.comp],
                                detail: format!("{} matches within window", recent.len()),
                            });
                            recent.clear();
                        }
                    }
                }
                (
                    Rule::Pair { name, first, second, window_ms },
                    RuleState::Pair { pending_first },
                ) => {
                    // Check consequent before adding new antecedents so a
                    // record matching both does not pair with itself.
                    if second.matches(rec) {
                        let cutoff = rec.ts.sub_ms(*window_ms);
                        while pending_first.front().is_some_and(|&(t, _)| t < cutoff) {
                            pending_first.pop_front();
                        }
                        if let Some(&(first_ts, first_comp)) = pending_first.front() {
                            findings.push(Finding {
                                rule: name.clone(),
                                ts: rec.ts,
                                comps: vec![first_comp, rec.comp],
                                detail: format!(
                                    "consequent after {} ms",
                                    rec.ts.delta(first_ts).abs_ms()
                                ),
                            });
                        }
                    }
                    if first.matches(rec) {
                        pending_first.push_back((rec.ts, rec.comp));
                        if pending_first.len() > 1_024 {
                            pending_first.pop_front();
                        }
                    }
                }
                _ => unreachable!("state always matches its rule"),
            }
        }
        self.findings_emitted += findings.len() as u64;
        findings
    }

    /// Observe a batch in order.
    pub fn observe_all(&mut self, recs: &[LogRecord]) -> Vec<Finding> {
        recs.iter().flat_map(|r| self.observe(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::CompKind;

    fn rec(ts_min: u64, comp: CompId, sev: Severity, msg: &str, template: u32) -> LogRecord {
        LogRecord::new(Ts::from_mins(ts_min), comp, sev, "test", msg).with_template(template)
    }

    #[test]
    fn event_match_clauses() {
        let r = rec(0, CompId::node(1), Severity::Error, "Link DOWN lane 3", 3);
        assert!(EventMatch::template(3).matches(&r));
        assert!(!EventMatch::template(4).matches(&r));
        assert!(EventMatch::contains("link down").matches(&r));
        assert!(!EventMatch::contains("power").matches(&r));
        assert!(EventMatch::template(3).with_min_severity(Severity::Error).matches(&r));
        assert!(!EventMatch::template(3).with_min_severity(Severity::Critical).matches(&r));
        assert!(EventMatch::default().with_source("test").matches(&r));
        assert!(!EventMatch::default().with_source("hsn").matches(&r));
        assert!(EventMatch::default().with_comp_kind(CompKind::Node).matches(&r));
        assert!(!EventMatch::default().with_comp_kind(CompKind::Link).matches(&r));
    }

    #[test]
    fn single_rule_fires_every_match() {
        let mut c =
            Correlator::new(vec![Rule::Single { name: "s".into(), m: EventMatch::template(3) }]);
        let hits = c.observe_all(&[
            rec(0, CompId::link(0), Severity::Error, "a", 3),
            rec(1, CompId::link(1), Severity::Error, "b", 4),
            rec(2, CompId::link(2), Severity::Error, "c", 3),
        ]);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].comps, vec![CompId::link(0)]);
        assert_eq!(hits[1].comps, vec![CompId::link(2)]);
    }

    #[test]
    fn threshold_rule_needs_count_in_window() {
        let mut c = Correlator::new(vec![Rule::Threshold {
            name: "storm".into(),
            m: EventMatch::template(5),
            count: 3,
            window_ms: 5 * 60_000,
        }]);
        // Two matches in window: silence.
        assert!(c
            .observe_all(&[
                rec(0, CompId::link(0), Severity::Warning, "crc", 5),
                rec(1, CompId::link(0), Severity::Warning, "crc", 5),
            ])
            .is_empty());
        // Third completes it.
        let hits = c.observe(&rec(2, CompId::link(0), Severity::Warning, "crc", 5));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "storm");
        // Window resets after firing.
        assert!(c.observe(&rec(3, CompId::link(0), Severity::Warning, "crc", 5)).is_empty());
    }

    #[test]
    fn threshold_window_expires_old_matches() {
        let mut c = Correlator::new(vec![Rule::Threshold {
            name: "storm".into(),
            m: EventMatch::template(5),
            count: 3,
            window_ms: 2 * 60_000,
        }]);
        c.observe(&rec(0, CompId::link(0), Severity::Warning, "crc", 5));
        c.observe(&rec(1, CompId::link(0), Severity::Warning, "crc", 5));
        // 10 minutes later: the old two are gone, this is a fresh first.
        let hits = c.observe(&rec(11, CompId::link(0), Severity::Warning, "crc", 5));
        assert!(hits.is_empty());
    }

    #[test]
    fn pair_rule_associates_across_components() {
        let mut c = Correlator::new(vec![Rule::Pair {
            name: "propagation".into(),
            first: EventMatch::template(3),
            second: EventMatch::template(11),
            window_ms: 5 * 60_000,
        }]);
        c.observe(&rec(0, CompId::link(7), Severity::Error, "LCB fail", 3));
        let hits = c.observe(&rec(2, CompId::job(42), Severity::Error, "job failed", 11));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].comps, vec![CompId::link(7), CompId::job(42)]);
    }

    #[test]
    fn pair_rule_respects_window_and_order() {
        let mut c = Correlator::new(vec![Rule::Pair {
            name: "p".into(),
            first: EventMatch::template(3),
            second: EventMatch::template(11),
            window_ms: 60_000,
        }]);
        // Consequent before antecedent: nothing.
        assert!(c.observe(&rec(0, CompId::job(1), Severity::Error, "fail", 11)).is_empty());
        c.observe(&rec(1, CompId::link(0), Severity::Error, "down", 3));
        // Too late (window is 1 minute).
        assert!(c.observe(&rec(10, CompId::job(2), Severity::Error, "fail", 11)).is_empty());
    }

    #[test]
    fn production_rules_catch_crash_log() {
        let mut c = Correlator::new(Correlator::production_rules());
        let crash = LogRecord::new(
            Ts::from_mins(1),
            CompId::node(5),
            Severity::Critical,
            "console",
            "node heartbeat fault: no response",
        )
        .with_template(1);
        let hits = c.observe(&crash);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "node-heartbeat-lost");
    }

    #[test]
    fn multiple_rules_fire_independently() {
        let mut c = Correlator::new(vec![
            Rule::Single { name: "a".into(), m: EventMatch::template(3) },
            Rule::Single { name: "b".into(), m: EventMatch::contains("lcb") },
        ]);
        let hits = c.observe(&rec(0, CompId::link(0), Severity::Error, "LCB failure", 3));
        assert_eq!(hits.len(), 2);
    }
}
