//! KAUST-style power-profile analysis.
//!
//! Paper §II-7: power profiles of applications are "repeatable enough that
//! they can, through profiling, characterization, continuous monitoring,
//! and comparison against power profiles of known good application runs,
//! identify problems with the system and applications.  Anomalous
//! power-use behaviors within a job can also be used to detect problems
//! such as hung nodes or load imbalance."
//!
//! Two tools: [`PowerProfileLibrary`] stores a normalized reference
//! profile per application and scores new runs against it;
//! [`ImbalanceDetector`] watches per-cabinet power for the Figure 3
//! signature (large cabinet-to-cabinet variation while total draw sags).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Number of normalized time buckets per stored profile.
pub const PROFILE_BUCKETS: usize = 32;

/// Resample a run's mean-power series into [`PROFILE_BUCKETS`] normalized
/// time buckets (so runs of different lengths compare).
pub fn normalize_profile(series: &[f64]) -> Vec<f64> {
    assert!(!series.is_empty(), "cannot normalize an empty profile");
    (0..PROFILE_BUCKETS)
        .map(|b| {
            let lo = b * series.len() / PROFILE_BUCKETS;
            let hi = (((b + 1) * series.len()).div_ceil(PROFILE_BUCKETS)).min(series.len());
            let hi = hi.max(lo + 1).min(series.len());
            let slice = &series[lo.min(series.len() - 1)..hi];
            slice.iter().sum::<f64>() / slice.len() as f64
        })
        .collect()
}

/// Verdict from comparing a run against its reference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileVerdict {
    /// Mean absolute deviation as a fraction of the reference mean.
    pub deviation: f64,
    /// Whether the run is within tolerance of the known-good profile.
    pub matches: bool,
}

/// Library of known-good application power profiles.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PowerProfileLibrary {
    profiles: HashMap<String, Vec<f64>>,
    /// Relative deviation above which a run is flagged.
    pub tolerance: f64,
}

impl PowerProfileLibrary {
    /// Library with a 10% deviation tolerance.
    pub fn new() -> PowerProfileLibrary {
        PowerProfileLibrary { profiles: HashMap::new(), tolerance: 0.10 }
    }

    /// Record a known-good run (mean node power per tick).
    pub fn record_reference(&mut self, app: &str, series: &[f64]) {
        self.profiles.insert(app.to_owned(), normalize_profile(series));
    }

    /// Whether an app has a reference.
    pub fn has(&self, app: &str) -> bool {
        self.profiles.contains_key(app)
    }

    /// Number of stored references.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Compare a run against the stored reference; `None` when the app has
    /// no reference yet.
    pub fn compare(&self, app: &str, series: &[f64]) -> Option<ProfileVerdict> {
        let reference = self.profiles.get(app)?;
        let run = normalize_profile(series);
        let ref_mean = reference.iter().sum::<f64>() / reference.len() as f64;
        if ref_mean <= 0.0 {
            return Some(ProfileVerdict { deviation: 0.0, matches: true });
        }
        let mad = reference.iter().zip(&run).map(|(r, x)| (r - x).abs()).sum::<f64>()
            / reference.len() as f64;
        let deviation = mad / ref_mean;
        Some(ProfileVerdict { deviation, matches: deviation <= self.tolerance })
    }
}

/// One tick's imbalance assessment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImbalanceReading {
    /// Max/min cabinet power ratio (∞-safe: min clamped above zero).
    pub max_min_ratio: f64,
    /// Coefficient of variation across cabinets.
    pub cv: f64,
    /// Whether this tick is flagged as imbalanced.
    pub flagged: bool,
}

/// Watches per-cabinet power for load imbalance (Figure 3: "power usage
/// variation of up to 3 times was observed between different cabinets").
#[derive(Debug, Clone, Copy)]
pub struct ImbalanceDetector {
    /// Flag when max/min exceeds this (KAUST saw 3×; default flags at 2×).
    pub ratio_threshold: f64,
    /// Ignore ticks where total power is below this (idle machine).
    pub min_total_w: f64,
}

impl ImbalanceDetector {
    /// Default thresholds.
    pub fn new() -> ImbalanceDetector {
        ImbalanceDetector { ratio_threshold: 2.0, min_total_w: 1.0 }
    }

    /// Assess one tick of per-cabinet power.
    pub fn assess(&self, cabinet_power_w: &[f64]) -> ImbalanceReading {
        if cabinet_power_w.len() < 2 {
            return ImbalanceReading { max_min_ratio: 1.0, cv: 0.0, flagged: false };
        }
        let total: f64 = cabinet_power_w.iter().sum();
        let max = cabinet_power_w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = cabinet_power_w.iter().copied().fold(f64::INFINITY, f64::min).max(1e-9);
        let mean = total / cabinet_power_w.len() as f64;
        let var = cabinet_power_w.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>()
            / cabinet_power_w.len() as f64;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        let ratio = max / min;
        ImbalanceReading {
            max_min_ratio: ratio,
            cv,
            flagged: total >= self.min_total_w && ratio > self.ratio_threshold,
        }
    }
}

impl Default for ImbalanceDetector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_fixed_buckets() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let p = normalize_profile(&series);
        assert_eq!(p.len(), PROFILE_BUCKETS);
        // Monotone input stays monotone after bucketing.
        assert!(p.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn normalize_short_series() {
        let p = normalize_profile(&[5.0]);
        assert_eq!(p.len(), PROFILE_BUCKETS);
        assert!(p.iter().all(|&v| v == 5.0));
        let p = normalize_profile(&[1.0, 3.0]);
        assert_eq!(p.len(), PROFILE_BUCKETS);
        assert!(p[0] <= p[PROFILE_BUCKETS - 1]);
    }

    #[test]
    #[should_panic(expected = "empty profile")]
    fn normalize_empty_rejected() {
        normalize_profile(&[]);
    }

    #[test]
    fn matching_run_passes() {
        let mut lib = PowerProfileLibrary::new();
        let reference: Vec<f64> = (0..60).map(|i| 300.0 + 20.0 * ((i / 10) % 2) as f64).collect();
        lib.record_reference("lammps", &reference);
        assert!(lib.has("lammps"));
        // Same shape, slightly different length and noise.
        let run: Vec<f64> = (0..55).map(|i| 302.0 + 20.0 * ((i / 9) % 2) as f64).collect();
        let v = lib.compare("lammps", &run).unwrap();
        assert!(v.matches, "deviation {}", v.deviation);
    }

    #[test]
    fn hung_node_run_fails_match() {
        let mut lib = PowerProfileLibrary::new();
        let reference = vec![350.0; 60];
        lib.record_reference("lammps", &reference);
        // Run where power collapses halfway (hung nodes draw idle power).
        let mut run = vec![350.0; 30];
        run.extend(vec![110.0; 30]);
        let v = lib.compare("lammps", &run).unwrap();
        assert!(!v.matches);
        assert!(v.deviation > 0.2);
    }

    #[test]
    fn unknown_app_has_no_verdict() {
        let lib = PowerProfileLibrary::new();
        assert!(lib.compare("mystery", &[1.0]).is_none());
        assert!(lib.is_empty());
    }

    #[test]
    fn imbalance_flags_three_x_variation() {
        let det = ImbalanceDetector::new();
        // Figure 3 shape: some cabinets at full draw, others near idle.
        let cabs = vec![60_000.0, 58_000.0, 20_000.0, 21_000.0];
        let r = det.assess(&cabs);
        assert!(r.flagged);
        assert!(r.max_min_ratio > 2.5, "ratio {}", r.max_min_ratio);
        assert!(r.cv > 0.3);
    }

    #[test]
    fn balanced_load_not_flagged() {
        let det = ImbalanceDetector::new();
        let cabs = vec![55_000.0, 54_000.0, 56_000.0, 55_500.0];
        let r = det.assess(&cabs);
        assert!(!r.flagged);
        assert!(r.max_min_ratio < 1.1);
    }

    #[test]
    fn idle_machine_not_flagged() {
        let det = ImbalanceDetector { ratio_threshold: 2.0, min_total_w: 10_000.0 };
        // Ratios are huge but the machine is essentially off.
        let r = det.assess(&[10.0, 1.0]);
        assert!(!r.flagged, "idle noise is not imbalance");
        assert!(r.max_min_ratio > 2.0);
    }

    #[test]
    fn single_cabinet_is_trivially_balanced() {
        let det = ImbalanceDetector::new();
        let r = det.assess(&[42_000.0]);
        assert!(!r.flagged);
        assert_eq!(r.max_min_ratio, 1.0);
    }
}
