//! Trend analysis and time-to-threshold forecasting.
//!
//! ALCF "performs trend analysis ... on component error rates (e.g., High
//! Speed Network link Bit Error Rates)" (paper §II-8); the paper also
//! notes sites' long-standing interest in "early detection and,
//! ultimately, prediction of component degradation and failure based on
//! trend and outlier analysis".  [`TrendTracker`] fits a streaming least
//! squares line and answers "when does this series cross X?".

use hpcmon_metrics::Ts;
use serde::{Deserialize, Serialize};

/// A fitted line `value = slope * t_seconds + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearTrend {
    /// Slope in value units per second.
    pub slope_per_sec: f64,
    /// Value at t = 0.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Points fitted.
    pub n: u64,
}

impl LinearTrend {
    /// Predicted value at `t`.
    pub fn predict(&self, t: Ts) -> f64 {
        self.slope_per_sec * t.as_secs_f64() + self.intercept
    }

    /// The time at which the trend crosses `threshold`, if the slope heads
    /// toward it.  Returns `None` for flat or receding trends.
    pub fn time_to_cross(&self, threshold: f64) -> Option<Ts> {
        if self.slope_per_sec.abs() < 1e-15 {
            return None;
        }
        let t_secs = (threshold - self.intercept) / self.slope_per_sec;
        if t_secs < 0.0 || !t_secs.is_finite() {
            return None;
        }
        Some(Ts::from_secs(t_secs as u64))
    }
}

/// Streaming least-squares over (time, value) pairs.
///
/// Sums are kept relative to the first timestamp to preserve precision on
/// long-running series.
///
/// ```
/// use hpcmon_analysis::TrendTracker;
/// use hpcmon_metrics::Ts;
///
/// let mut tracker = TrendTracker::new();
/// for hour in 0..24u64 {
///     tracker.push(Ts::from_secs(hour * 3_600), 10.0 * hour as f64); // +10 errors/hour
/// }
/// let fit = tracker.fit().unwrap();
/// assert!((fit.slope_per_sec * 3_600.0 - 10.0).abs() < 1e-6);
/// let crossing = fit.time_to_cross(1_000.0).unwrap();
/// assert_eq!(crossing.as_secs() / 3_600, 100); // 100 hours to 1000 errors
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrendTracker {
    t0: Option<f64>,
    n: u64,
    sum_t: f64,
    sum_v: f64,
    sum_tt: f64,
    sum_tv: f64,
    sum_vv: f64,
}

impl TrendTracker {
    /// Empty tracker.
    pub fn new() -> TrendTracker {
        TrendTracker::default()
    }

    /// Fold in a point.
    pub fn push(&mut self, ts: Ts, value: f64) {
        let t_abs = ts.as_secs_f64();
        let t0 = *self.t0.get_or_insert(t_abs);
        let t = t_abs - t0;
        self.n += 1;
        self.sum_t += t;
        self.sum_v += value;
        self.sum_tt += t * t;
        self.sum_tv += t * value;
        self.sum_vv += value * value;
    }

    /// Points folded in.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether no points were folded in.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Fit the line; `None` with fewer than 2 points or zero time spread.
    pub fn fit(&self) -> Option<LinearTrend> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let denom = n * self.sum_tt - self.sum_t * self.sum_t;
        if denom.abs() < 1e-12 {
            return None;
        }
        let slope = (n * self.sum_tv - self.sum_t * self.sum_v) / denom;
        let intercept_rel = (self.sum_v - slope * self.sum_t) / n;
        // r² = 1 - SSE/SST, computed from the accumulated sums.
        let sst = self.sum_vv - self.sum_v * self.sum_v / n;
        let r_squared = if sst.abs() < 1e-12 {
            1.0 // perfectly flat data is perfectly fit by a flat line
        } else {
            let ssr = slope * (self.sum_tv - self.sum_t * self.sum_v / n);
            (ssr / sst).clamp(0.0, 1.0)
        };
        // Shift the intercept back to absolute time.
        let t0 = self.t0.expect("n >= 2 implies t0");
        Some(LinearTrend {
            slope_per_sec: slope,
            intercept: intercept_rel - slope * t0,
            r_squared,
            n: self.n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let mut t = TrendTracker::new();
        for i in 0..100u64 {
            // value = 2 * t_secs + 5
            t.push(Ts::from_secs(i * 60), 2.0 * (i * 60) as f64 + 5.0);
        }
        let fit = t.fit().unwrap();
        assert!((fit.slope_per_sec - 2.0).abs() < 1e-9);
        assert!((fit.intercept - 5.0).abs() < 1e-6);
        assert!(fit.r_squared > 0.999);
        assert_eq!(fit.n, 100);
    }

    #[test]
    fn predict_and_time_to_cross() {
        let mut t = TrendTracker::new();
        for i in 0..50u64 {
            t.push(Ts::from_secs(i), i as f64); // slope 1/s from 0
        }
        let fit = t.fit().unwrap();
        assert!((fit.predict(Ts::from_secs(100)) - 100.0).abs() < 1e-6);
        let cross = fit.time_to_cross(1_000.0).unwrap();
        assert!((cross.as_secs_f64() - 1_000.0).abs() < 1.0);
    }

    #[test]
    fn receding_trend_never_crosses() {
        let mut t = TrendTracker::new();
        for i in 0..50u64 {
            t.push(Ts::from_secs(i), 100.0 - i as f64);
        }
        let fit = t.fit().unwrap();
        assert!(fit.time_to_cross(200.0).is_none(), "moving away from an upper threshold");
        // But it does cross a lower threshold (on its way down).
        assert!(fit.time_to_cross(0.0).is_some());
    }

    #[test]
    fn flat_series_has_no_crossing_and_full_r2() {
        let mut t = TrendTracker::new();
        for i in 0..20u64 {
            t.push(Ts::from_secs(i), 7.0);
        }
        let fit = t.fit().unwrap();
        assert!(fit.slope_per_sec.abs() < 1e-12);
        assert!(fit.time_to_cross(10.0).is_none());
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn noisy_line_has_partial_r2() {
        let mut t = TrendTracker::new();
        for i in 0..200u64 {
            let noise = if i % 2 == 0 { 5.0 } else { -5.0 };
            t.push(Ts::from_secs(i), 0.1 * i as f64 + noise);
        }
        let fit = t.fit().unwrap();
        assert!((fit.slope_per_sec - 0.1).abs() < 0.01);
        assert!(fit.r_squared > 0.1 && fit.r_squared < 0.9, "r2 {}", fit.r_squared);
    }

    #[test]
    fn too_few_points_no_fit() {
        let mut t = TrendTracker::new();
        assert!(t.fit().is_none());
        t.push(Ts::ZERO, 1.0);
        assert!(t.fit().is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn identical_timestamps_no_fit() {
        let mut t = TrendTracker::new();
        t.push(Ts::from_secs(5), 1.0);
        t.push(Ts::from_secs(5), 2.0);
        assert!(t.fit().is_none());
    }

    #[test]
    fn late_epoch_series_keeps_precision() {
        // A series starting at t = 10^9 seconds: naive sums of t² would
        // lose the slope in f64 noise; the t0 shift keeps it exact.
        let base = 1_000_000_000u64;
        let mut t = TrendTracker::new();
        for i in 0..100u64 {
            t.push(Ts::from_secs(base + i), 3.0 * i as f64 + 1.0);
        }
        let fit = t.fit().unwrap();
        assert!((fit.slope_per_sec - 3.0).abs() < 1e-6, "slope {}", fit.slope_per_sec);
        // Predict at the series' own timebase.
        let p = fit.predict(Ts::from_secs(base + 50));
        assert!((p - 151.0).abs() < 1e-3, "prediction {p}");
    }
}
