//! Log template mining and occurrence-variation analysis.
//!
//! Paper §III-B: "Log analysis has significant research history involving
//! techniques of abnormality detection and/or variation in occurrences of
//! log lines."  The miner clusters free-form messages into templates by
//! their token shape (numbers collapsed), counts occurrences, and compares
//! occurrence rates between a baseline window and the current window — a
//! line that was rare and is now frequent (or vice versa) is the classic
//! precursor operators look for.

use crate::novelty::NoveltyDetector;
use hpcmon_metrics::LogRecord;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Occurrence statistics for one mined template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateStat {
    /// The template signature (source + token shape).
    pub signature: String,
    /// A representative raw message.
    pub example: String,
    /// Occurrences observed.
    pub count: u64,
}

/// A template whose occurrence rate shifted between windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccurrenceShift {
    /// The template signature.
    pub signature: String,
    /// A representative raw message.
    pub example: String,
    /// Count in the baseline window.
    pub baseline: u64,
    /// Count in the current window.
    pub current: u64,
    /// `current / max(baseline, 1)` — >1 means the line got louder.
    pub ratio: f64,
}

/// Clusters messages by shape and counts occurrences within one window.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TemplateMiner {
    counts: HashMap<String, u64>,
    examples: HashMap<String, String>,
    total: u64,
}

impl TemplateMiner {
    /// Empty miner.
    pub fn new() -> TemplateMiner {
        TemplateMiner::default()
    }

    /// Fold in one record.
    pub fn observe(&mut self, rec: &LogRecord) {
        let sig = NoveltyDetector::signature(rec);
        *self.counts.entry(sig.clone()).or_insert(0) += 1;
        self.examples.entry(sig).or_insert_with(|| rec.message.clone());
        self.total += 1;
    }

    /// Fold in a batch.
    pub fn observe_all<'a>(&mut self, recs: impl IntoIterator<Item = &'a LogRecord>) {
        for r in recs {
            self.observe(r);
        }
    }

    /// Records observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Distinct templates mined.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The `k` most frequent templates, descending (ties by signature so
    /// output is deterministic).
    pub fn top_k(&self, k: usize) -> Vec<TemplateStat> {
        let mut stats: Vec<TemplateStat> = self
            .counts
            .iter()
            .map(|(sig, &count)| TemplateStat {
                signature: sig.clone(),
                example: self.examples.get(sig).cloned().unwrap_or_default(),
                count,
            })
            .collect();
        stats.sort_by(|a, b| b.count.cmp(&a.count).then(a.signature.cmp(&b.signature)));
        stats.truncate(k);
        stats
    }

    /// Occurrence shifts versus a `baseline` miner: templates whose count
    /// ratio (normalized per observed record) changed by at least
    /// `min_factor`, most-shifted first.  Templates absent from one side
    /// count as zero there.
    pub fn shifts_from(&self, baseline: &TemplateMiner, min_factor: f64) -> Vec<OccurrenceShift> {
        assert!(min_factor >= 1.0);
        // Normalize to per-1000-records rates so unequal window sizes
        // compare fairly.
        let rate = |count: u64, total: u64| {
            if total == 0 {
                0.0
            } else {
                count as f64 * 1_000.0 / total as f64
            }
        };
        let mut all_sigs: Vec<&String> = self.counts.keys().chain(baseline.counts.keys()).collect();
        all_sigs.sort();
        all_sigs.dedup();
        let mut shifts = Vec::new();
        for sig in all_sigs {
            let b = baseline.counts.get(sig).copied().unwrap_or(0);
            let c = self.counts.get(sig).copied().unwrap_or(0);
            let br = rate(b, baseline.total);
            let cr = rate(c, self.total);
            let ratio = if br <= 0.0 {
                if cr > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                }
            } else {
                cr / br
            };
            if ratio >= min_factor
                || (ratio > 0.0 && ratio <= 1.0 / min_factor)
                || (cr == 0.0 && br > 0.0)
            {
                shifts.push(OccurrenceShift {
                    signature: sig.clone(),
                    example: self
                        .examples
                        .get(sig)
                        .or_else(|| baseline.examples.get(sig))
                        .cloned()
                        .unwrap_or_default(),
                    baseline: b,
                    current: c,
                    ratio: if cr == 0.0 && br > 0.0 { 0.0 } else { ratio },
                });
            }
        }
        shifts.sort_by(|a, b| {
            let key = |s: &OccurrenceShift| {
                if s.ratio.is_infinite() {
                    f64::MAX
                } else if s.ratio >= 1.0 {
                    s.ratio
                } else if s.ratio > 0.0 {
                    1.0 / s.ratio
                } else {
                    f64::MAX / 2.0
                }
            };
            key(b).partial_cmp(&key(a)).expect("finite keys").then(a.signature.cmp(&b.signature))
        });
        shifts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::{CompId, Severity, Ts};

    fn rec(msg: &str) -> LogRecord {
        LogRecord::new(Ts(0), CompId::node(0), Severity::Info, "console", msg)
    }

    #[test]
    fn numeric_variants_cluster_together() {
        let mut m = TemplateMiner::new();
        m.observe(&rec("job 17 started on 4 nodes"));
        m.observe(&rec("job 99 started on 128 nodes"));
        m.observe(&rec("link down on lane 3"));
        assert_eq!(m.distinct(), 2);
        assert_eq!(m.total(), 3);
        let top = m.top_k(1);
        assert_eq!(top[0].count, 2);
        assert!(top[0].example.contains("job 17"), "first example kept");
    }

    #[test]
    fn top_k_is_deterministic_and_bounded() {
        let mut m = TemplateMiner::new();
        for i in 0..5 {
            for _ in 0..=i {
                m.observe(&rec(&format!(
                    "event type {} letter{}",
                    9,
                    ["a", "b", "c", "d", "e"][i]
                )));
            }
        }
        let top = m.top_k(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].count >= top[1].count && top[1].count >= top[2].count);
        assert_eq!(m.top_k(100).len(), 5);
    }

    #[test]
    fn shift_detects_new_loud_line() {
        let mut baseline = TemplateMiner::new();
        for _ in 0..100 {
            baseline.observe(&rec("routine heartbeat ok"));
        }
        let mut current = TemplateMiner::new();
        for _ in 0..80 {
            current.observe(&rec("routine heartbeat ok"));
        }
        for _ in 0..20 {
            current.observe(&rec("CRC retry on lane 2"));
        }
        let shifts = current.shifts_from(&baseline, 3.0);
        assert_eq!(shifts.len(), 1, "{shifts:?}");
        assert!(shifts[0].example.contains("CRC"));
        assert!(shifts[0].ratio.is_infinite(), "new line: infinite ratio");
        assert_eq!(shifts[0].baseline, 0);
        assert_eq!(shifts[0].current, 20);
    }

    #[test]
    fn shift_detects_vanished_line() {
        let mut baseline = TemplateMiner::new();
        for _ in 0..50 {
            baseline.observe(&rec("lnet pinger ok"));
        }
        for _ in 0..50 {
            baseline.observe(&rec("routine heartbeat ok"));
        }
        let mut current = TemplateMiner::new();
        for _ in 0..100 {
            current.observe(&rec("routine heartbeat ok"));
        }
        let shifts = current.shifts_from(&baseline, 3.0);
        let vanished = shifts.iter().find(|s| s.example.contains("pinger")).unwrap();
        assert_eq!(vanished.current, 0);
        assert_eq!(vanished.ratio, 0.0);
    }

    #[test]
    fn stable_rates_do_not_shift() {
        let mk = |n: u64| {
            let mut m = TemplateMiner::new();
            for _ in 0..n {
                m.observe(&rec("routine heartbeat ok"));
            }
            for _ in 0..n / 10 {
                m.observe(&rec("session opened for user root"));
            }
            m
        };
        // Different window sizes, same per-record rates.
        let baseline = mk(1_000);
        let current = mk(300);
        assert!(current.shifts_from(&baseline, 2.0).is_empty());
    }

    #[test]
    fn rate_normalization_handles_unequal_windows() {
        let mut baseline = TemplateMiner::new();
        for _ in 0..1_000 {
            baseline.observe(&rec("noise line x"));
        }
        for _ in 0..10 {
            baseline.observe(&rec("crc retry lane 1"));
        }
        // Current window is 10x smaller but the CRC *rate* tripled.
        let mut current = TemplateMiner::new();
        for _ in 0..100 {
            current.observe(&rec("noise line x"));
        }
        for _ in 0..3 {
            current.observe(&rec("crc retry lane 7"));
        }
        let shifts = current.shifts_from(&baseline, 2.0);
        assert_eq!(shifts.len(), 1);
        assert!(shifts[0].example.contains("crc"));
        assert!(shifts[0].ratio > 2.0 && shifts[0].ratio < 4.0, "{}", shifts[0].ratio);
    }

    #[test]
    #[should_panic]
    fn min_factor_below_one_rejected() {
        TemplateMiner::new().shifts_from(&TemplateMiner::new(), 0.5);
    }
}
