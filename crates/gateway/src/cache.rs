//! The LRU result cache, keyed on (normalized request, scope, epoch pair).
//!
//! Cache-correctness invariant: an entry computed while
//! `TimeSeriesStore::epoch()` returned `E` (and the gateway's job view was
//! at version `J`) is served **only** while both values are unchanged.  The
//! store bumps its epoch on every mutation class (ingest, seal, evict,
//! reload, retention drop), so a cached response can never be served across
//! a store change; the job version covers scope changes (a user gaining or
//! losing an allocation must not see a stale visibility set).  The epoch is
//! captured *before* the query executes, so a mutation racing the
//! evaluation conservatively invalidates the entry.

use crate::request::QueryResponse;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The (store epoch, job-view version) pair an entry was computed at.
pub type EpochPair = (u64, u64);

struct Entry {
    epoch: EpochPair,
    seq: u64,
    value: Arc<QueryResponse>,
}

struct Inner {
    map: HashMap<String, Entry>,
    // Recency queue of (key, seq); stale pairs (seq no longer current for
    // the key) are skipped during eviction and compacted lazily.
    order: VecDeque<(String, u64)>,
    next_seq: u64,
}

/// Hit/miss/eviction accounting, all monotonic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups with no usable entry.
    pub misses: u64,
    /// Entries found but rejected because their epoch pair was stale.
    pub invalidated: u64,
    /// Entries stored.
    pub inserted: u64,
    /// Entries removed to respect capacity.
    pub evicted: u64,
}

/// A bounded LRU cache of query responses.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    inserted: AtomicU64,
    evicted: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` responses; zero disables caching.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner { map: HashMap::new(), order: VecDeque::new(), next_seq: 0 }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            inserted: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Look up `key`, valid only at `epoch`.  A present-but-stale entry is
    /// removed and counted as an invalidation (and a miss).
    pub fn get(&self, key: &str, epoch: EpochPair) -> Option<Arc<QueryResponse>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock();
        let current = inner.map.get(key).map(|e| e.epoch == epoch);
        match current {
            Some(true) => {
                let seq = inner.next_seq;
                inner.next_seq += 1;
                let value = {
                    let e = inner.map.get_mut(key).expect("entry just observed");
                    e.seq = seq;
                    e.value.clone()
                };
                inner.order.push_back((key.to_owned(), seq));
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            Some(false) => {
                inner.map.remove(key);
                self.invalidated.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a response computed at `epoch`, evicting least-recently-used
    /// entries if over capacity.
    pub fn put(&self, key: String, epoch: EpochPair, value: Arc<QueryResponse>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.order.push_back((key.clone(), seq));
        inner.map.insert(key, Entry { epoch, seq, value });
        self.inserted.fetch_add(1, Ordering::Relaxed);
        while inner.map.len() > self.capacity {
            match inner.order.pop_front() {
                Some((k, s)) => {
                    // Only the entry's *current* recency marker may evict
                    // it; older markers are leftovers from refreshes.
                    if inner.map.get(&k).is_some_and(|e| e.seq == s) {
                        inner.map.remove(&k);
                        self.evicted.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
        // Keep the recency queue from growing without bound under repeated
        // refreshes of the same keys.
        if inner.order.len() > self.capacity.saturating_mul(4).max(64) {
            let map = &inner.map;
            let compacted: VecDeque<(String, u64)> = inner
                .order
                .iter()
                .filter(|(k, s)| map.get(k).is_some_and(|e| e.seq == *s))
                .cloned()
                .collect();
            inner.order = compacted;
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            inserted: self.inserted.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::Ts;

    fn resp(v: f64) -> Arc<QueryResponse> {
        Arc::new(QueryResponse::Points(vec![(Ts(0), v)]))
    }

    #[test]
    fn hit_then_epoch_change_invalidates() {
        let c = ResultCache::new(4);
        c.put("k".into(), (1, 0), resp(1.0));
        assert!(c.get("k", (1, 0)).is_some());
        assert!(c.get("k", (2, 0)).is_none(), "store epoch advanced");
        assert!(c.get("k", (1, 0)).is_none(), "stale entry was removed");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.invalidated), (1, 2, 1));
    }

    #[test]
    fn job_version_is_part_of_the_epoch() {
        let c = ResultCache::new(4);
        c.put("k".into(), (1, 7), resp(1.0));
        assert!(c.get("k", (1, 8)).is_none(), "job view advanced");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = ResultCache::new(2);
        c.put("a".into(), (1, 0), resp(1.0));
        c.put("b".into(), (1, 0), resp(2.0));
        assert!(c.get("a", (1, 0)).is_some()); // refresh a
        c.put("c".into(), (1, 0), resp(3.0)); // evicts b
        assert!(c.get("b", (1, 0)).is_none());
        assert!(c.get("a", (1, 0)).is_some());
        assert!(c.get("c", (1, 0)).is_some());
        assert_eq!(c.stats().evicted, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = ResultCache::new(0);
        c.put("k".into(), (1, 0), resp(1.0));
        assert!(c.get("k", (1, 0)).is_none());
        assert!(c.is_empty());
    }
}
