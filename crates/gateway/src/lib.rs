#![warn(missing_docs)]

//! `hpcmon-gateway` — the concurrent query-serving frontend.
//!
//! Table I requires monitoring data to be "available to multiple
//! consumers" under need-to-know access control, and the ROADMAP's north
//! star is a serving path, not just a pipeline.  The pieces:
//!
//! * [`request`] — serde-serializable [`QueryRequest`]s mirroring every
//!   `QueryEngine` operation, with value-typed errors (no panicking path
//!   from consumer input).
//! * [`service::Gateway`] — a sharded worker pool executing queries
//!   concurrently against the shared [`hpcmon_store::TimeSeriesStore`],
//!   with per-query deadline budgets.
//! * [`cache::ResultCache`] — an LRU keyed on (normalized request, scope,
//!   store epoch, job-view version); the store bumps its epoch on every
//!   mutation, so a cached response is never served across a change.
//! * [`admission`] — per-principal token buckets plus a bounded admission
//!   queue that sheds expired requests instead of stalling.
//! * Standing subscriptions — continuous queries re-evaluated each tick
//!   and delivered through `hpcmon-transport` broker topics.
//! * Self-telemetry — every instrument registers under `gateway.*`, so
//!   the self-monitoring feed republishes gateway activity as
//!   `hpcmon.self.gateway.*` series.

pub mod admission;
pub mod cache;
pub mod request;
pub mod service;

pub use cache::{CacheStats, ResultCache};
pub use request::{QueryError, QueryRequest, QueryResponse, SubscriptionUpdate};
pub use service::{Gateway, GatewayConfig, GatewaySnapshot, SubscriptionSnapshot};
