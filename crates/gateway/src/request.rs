//! The gateway's wire-level request/response model.
//!
//! Every operation the borrow-based [`hpcmon_store::QueryEngine`] offers is
//! mirrored here as a serde-serializable [`QueryRequest`] variant, so
//! external consumers (portals, dashboards, CLI tools) can submit queries
//! without linking against the store.  Responses and errors are values —
//! there is **no panicking path** from a malformed request to the pipeline.

use hpcmon_metrics::{CompId, CompKind, MetricId, SeriesKey, Ts};
use hpcmon_store::{AggFn, JobSeries, TimeRange};
use serde::{Deserialize, Serialize};

/// One query operation, mirroring [`hpcmon_store::QueryEngine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryRequest {
    /// Raw points of one series (`QueryEngine::series`).
    Series {
        /// The series to read.
        key: SeriesKey,
        /// Inclusive time range.
        range: TimeRange,
    },
    /// System-wide aggregate across all components of a metric
    /// (`QueryEngine::aggregate_across_components`).
    AggregateAcross {
        /// The metric to aggregate.
        metric: MetricId,
        /// Inclusive time range.
        range: TimeRange,
        /// Aggregation function applied per timestamp.
        agg: AggFn,
    },
    /// Group-by component kind (`QueryEngine::components_of_kind`).
    ComponentsOfKind {
        /// The metric to read.
        metric: MetricId,
        /// Component kind to keep.
        kind: CompKind,
        /// Inclusive time range.
        range: TimeRange,
    },
    /// Top-k components near an instant (`QueryEngine::top_components_at`).
    TopComponentsAt {
        /// The metric to rank.
        metric: MetricId,
        /// The instant of interest.
        at: Ts,
        /// Nearest-sample tolerance.
        tolerance_ms: u64,
        /// Row cap (after visibility filtering).
        limit: usize,
    },
    /// Fixed-bucket downsample of one series (`QueryEngine::downsample`).
    Downsample {
        /// The series to read.
        key: SeriesKey,
        /// Inclusive time range.
        range: TimeRange,
        /// Bucket width; must be positive.
        bucket_ms: u64,
        /// Aggregation within each bucket.
        agg: AggFn,
    },
    /// Inner join of two series on equal timestamps
    /// (`QueryEngine::align_join`).
    AlignJoin {
        /// Left series.
        a: SeriesKey,
        /// Right series.
        b: SeriesKey,
        /// Inclusive time range.
        range: TimeRange,
    },
    /// Per-job extraction (`QueryEngine::job_series`), resolved against the
    /// scheduler's stored allocations.
    JobSeries {
        /// Scheduler job id.
        job_id: u32,
        /// The metric to extract.
        metric: MetricId,
    },
}

impl QueryRequest {
    /// Surface-level validation that does not need the store: inverted
    /// ranges and zero buckets are rejected before admission, so a bad
    /// request never occupies a worker.  (Deserialized `TimeRange`s bypass
    /// `TimeRange::new`'s assertion, so this must be checked here.)
    pub fn validate(&self) -> Result<(), QueryError> {
        let check_range = |r: &TimeRange| {
            if r.from > r.to {
                Err(QueryError::InvalidParam(format!(
                    "inverted time range: {} > {}",
                    r.from.0, r.to.0
                )))
            } else {
                Ok(())
            }
        };
        match self {
            QueryRequest::Series { range, .. }
            | QueryRequest::AggregateAcross { range, .. }
            | QueryRequest::ComponentsOfKind { range, .. }
            | QueryRequest::AlignJoin { range, .. } => check_range(range),
            QueryRequest::Downsample { range, bucket_ms, .. } => {
                check_range(range)?;
                if *bucket_ms == 0 {
                    return Err(QueryError::InvalidParam(
                        "downsample bucket must be positive".into(),
                    ));
                }
                Ok(())
            }
            QueryRequest::TopComponentsAt { .. } | QueryRequest::JobSeries { .. } => Ok(()),
        }
    }
}

/// The result of a successful query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryResponse {
    /// A single time series.
    Points(Vec<(Ts, f64)>),
    /// Per-component series (group-by results).
    Grouped(Vec<(CompId, Vec<(Ts, f64)>)>),
    /// Ranked (component, value) rows.
    Ranked(Vec<(CompId, f64)>),
    /// Two series joined on equal timestamps.
    Joined(Vec<(Ts, f64, f64)>),
    /// A per-job extraction.
    Job(JobSeries),
}

/// Why a query was not answered.  Every variant is a reportable value; the
/// gateway never panics on consumer input.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryError {
    /// The request itself is malformed (inverted range, zero bucket, ...).
    InvalidParam(String),
    /// The principal may not read the requested data.
    AccessDenied(String),
    /// `JobSeries` referenced a job id the scheduler has no record of.
    UnknownJob(u32),
    /// The principal exceeded its token-bucket rate limit.
    RateLimited {
        /// The shed principal (consumer name).
        principal: String,
    },
    /// The admission queue was full even after shedding expired entries.
    QueueFull,
    /// The query's deadline budget expired before a worker finished it.
    DeadlineExceeded,
    /// The gateway is shutting down.
    Shutdown,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::InvalidParam(m) => write!(f, "invalid query parameter: {m}"),
            QueryError::AccessDenied(m) => write!(f, "access denied: {m}"),
            QueryError::UnknownJob(id) => write!(f, "unknown job id {id}"),
            QueryError::RateLimited { principal } => {
                write!(f, "rate limit exceeded for principal '{principal}'")
            }
            QueryError::QueueFull => write!(f, "admission queue full"),
            QueryError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            QueryError::Shutdown => write!(f, "gateway is shutting down"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<hpcmon_store::InvalidParam> for QueryError {
    fn from(e: hpcmon_store::InvalidParam) -> QueryError {
        QueryError::InvalidParam(e.0)
    }
}

/// One delivery of a standing subscription, published on the subscriber's
/// broker topic as `Payload::Raw(serde_json bytes)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubscriptionUpdate {
    /// The subscription this update belongs to.
    pub id: u64,
    /// The pipeline tick that triggered the evaluation.
    pub tick: Ts,
    /// True when the payload carries only points newer than the previous
    /// delivery (incremental `Series` evaluation); false for a full re-eval.
    pub incremental: bool,
    /// The (scoped) query result.
    pub result: QueryResponse,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_inverted_range_and_zero_bucket() {
        let inverted = TimeRange { from: Ts(10), to: Ts(5) };
        let req = QueryRequest::Series {
            key: SeriesKey::new(MetricId(0), CompId::node(0)),
            range: inverted,
        };
        assert!(matches!(req.validate(), Err(QueryError::InvalidParam(_))));

        let req = QueryRequest::Downsample {
            key: SeriesKey::new(MetricId(0), CompId::node(0)),
            range: TimeRange::all(),
            bucket_ms: 0,
            agg: AggFn::Mean,
        };
        assert!(matches!(req.validate(), Err(QueryError::InvalidParam(_))));

        let req = QueryRequest::AggregateAcross {
            metric: MetricId(0),
            range: TimeRange::all(),
            agg: AggFn::Sum,
        };
        assert!(req.validate().is_ok());
    }

    #[test]
    fn request_and_error_round_trip_serde() {
        let req = QueryRequest::TopComponentsAt {
            metric: MetricId(3),
            at: Ts(60_000),
            tolerance_ms: 500,
            limit: 10,
        };
        let s = serde_json::to_string(&req).unwrap();
        let back: QueryRequest = serde_json::from_str(&s).unwrap();
        assert_eq!(req, back);

        let err = QueryError::RateLimited { principal: "alice-portal".into() };
        let s = serde_json::to_string(&err).unwrap();
        let back: QueryError = serde_json::from_str(&s).unwrap();
        assert_eq!(err, back);
    }
}
