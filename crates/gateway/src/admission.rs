//! Admission control: per-principal token buckets plus a bounded queue
//! that sheds expired work instead of stalling.
//!
//! The paper's Table I asks the serving side to protect the pipeline from
//! its consumers ("analysis must not perturb the system under
//! measurement").  Two mechanisms compose here:
//!
//! * [`TokenBuckets`] — each principal (consumer name) draws from its own
//!   bucket; a principal that exceeds its refill rate is refused *at the
//!   door* with a rate-limit error while everyone else proceeds untouched.
//! * [`AdmissionQueue`] — a bounded FIFO between admission and the worker
//!   pool.  When full, it first sheds queued entries whose deadline has
//!   already passed (their waiters get a deadline error immediately —
//!   nobody waits on work that can no longer be answered in time), and
//!   only refuses the new request if the queue is still full of live work.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Per-principal token buckets.  `burst` is the bucket capacity, `per_sec`
/// the refill rate; a non-positive `burst` disables limiting entirely.
pub struct TokenBuckets {
    burst: f64,
    per_sec: f64,
    inner: Mutex<HashMap<String, BucketState>>,
}

struct BucketState {
    tokens: f64,
    last: Instant,
}

impl TokenBuckets {
    /// A limiter with the given capacity and refill rate.
    pub fn new(burst: f64, per_sec: f64) -> TokenBuckets {
        TokenBuckets { burst, per_sec, inner: Mutex::new(HashMap::new()) }
    }

    /// Take one token for `principal` at time `now`; false means shed.
    pub fn try_admit(&self, principal: &str, now: Instant) -> bool {
        if self.burst <= 0.0 {
            return true;
        }
        let mut inner = self.inner.lock();
        let state = inner
            .entry(principal.to_owned())
            .or_insert(BucketState { tokens: self.burst, last: now });
        let elapsed = now.saturating_duration_since(state.last).as_secs_f64();
        state.tokens = (state.tokens + elapsed * self.per_sec).min(self.burst);
        state.last = now;
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Why a push was refused.
pub enum PushError<T> {
    /// Queue full of unexpired work; the item is handed back.
    Full(T),
    /// The queue was closed (gateway shutdown); the item is handed back.
    Closed(T),
}

struct QueueState<T> {
    q: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO with blocking pop and deadline-aware shedding on push.
///
/// Built on `std::sync::{Mutex, Condvar}` (blocking workers park on the
/// condvar until work arrives or the queue closes).
pub struct AdmissionQueue<T> {
    inner: std::sync::Mutex<QueueState<T>>,
    cv: std::sync::Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` entries.
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            inner: std::sync::Mutex::new(QueueState { q: VecDeque::new(), closed: false }),
            cv: std::sync::Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue `item`.  When full, entries for which `expired` is true are
    /// removed and passed to `shed` (which must answer their waiters);
    /// if the queue is still full afterwards the push is refused.
    pub fn push(
        &self,
        item: T,
        expired: impl Fn(&T) -> bool,
        mut shed: impl FnMut(T),
    ) -> Result<(), PushError<T>> {
        let mut state = self.inner.lock().expect("admission queue poisoned");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.q.len() >= self.capacity {
            let mut live = VecDeque::with_capacity(state.q.len());
            for entry in state.q.drain(..) {
                if expired(&entry) {
                    shed(entry);
                } else {
                    live.push_back(entry);
                }
            }
            state.q = live;
        }
        if state.q.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.q.push_back(item);
        drop(state);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocking pop; `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.inner.lock().expect("admission queue poisoned");
        loop {
            if let Some(item) = state.q.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.cv.wait(state).expect("admission queue poisoned");
        }
    }

    /// Blocking pop that re-checks `exit` at every job boundary: returns
    /// `None` as soon as `exit()` is true (queued items stay queued for
    /// other workers) or once the queue is closed and drained.  Callers
    /// that flip their exit condition must also call
    /// [`AdmissionQueue::wake_all`] so parked workers observe it.
    pub fn pop_unless(&self, exit: impl Fn() -> bool) -> Option<T> {
        let mut state = self.inner.lock().expect("admission queue poisoned");
        loop {
            if exit() {
                return None;
            }
            if let Some(item) = state.q.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.cv.wait(state).expect("admission queue poisoned");
        }
    }

    /// Wake every parked popper so it re-evaluates its exit condition.
    pub fn wake_all(&self) {
        self.cv.notify_all();
    }

    /// Close the queue: pending items remain poppable, waiters wake.
    pub fn close(&self) {
        self.inner.lock().expect("admission queue poisoned").closed = true;
        self.cv.notify_all();
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("admission queue poisoned").q.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_bucket_sheds_over_limit_then_refills() {
        let tb = TokenBuckets::new(2.0, 1.0);
        let t0 = Instant::now();
        assert!(tb.try_admit("alice", t0));
        assert!(tb.try_admit("alice", t0));
        assert!(!tb.try_admit("alice", t0), "burst spent");
        // Another principal is unaffected.
        assert!(tb.try_admit("bob", t0));
        // After 1s one token is back.
        assert!(tb.try_admit("alice", t0 + Duration::from_secs(1)));
        assert!(!tb.try_admit("alice", t0 + Duration::from_secs(1)));
    }

    #[test]
    fn non_positive_burst_means_unlimited() {
        let tb = TokenBuckets::new(0.0, 0.0);
        let t0 = Instant::now();
        for _ in 0..1_000 {
            assert!(tb.try_admit("anyone", t0));
        }
    }

    #[test]
    fn queue_sheds_expired_entries_before_refusing() {
        // Items are (id, expired) pairs.
        let q: AdmissionQueue<(u32, bool)> = AdmissionQueue::new(2);
        assert!(q.push((1, true), |e| e.1, |_| {}).is_ok());
        assert!(q.push((2, false), |e| e.1, |_| {}).is_ok());
        // Full; entry 1 is expired and should be shed to make room.
        let mut shed = Vec::new();
        assert!(q.push((3, false), |e| e.1, |e| shed.push(e.0)).is_ok());
        assert_eq!(shed, vec![1]);
        // Full of live work now: refused.
        match q.push((4, false), |e| e.1, |_| {}) {
            Err(PushError::Full((4, _))) => {}
            _ => panic!("expected Full"),
        }
        assert_eq!(q.pop().unwrap().0, 2, "FIFO order preserved");
        assert_eq!(q.pop().unwrap().0, 3);
    }

    #[test]
    fn pop_unless_exits_at_job_boundaries_without_losing_items() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let q: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(8));
        let die = Arc::new(AtomicBool::new(false));
        q.push(1, |_| false, |_| {}).ok();
        q.push(2, |_| false, |_| {}).ok();
        // Exit already requested: nothing is popped, items survive.
        die.store(true, Ordering::Relaxed);
        let die2 = die.clone();
        assert_eq!(q.pop_unless(move || die2.load(Ordering::Relaxed)), None);
        assert_eq!(q.len(), 2, "queued jobs survive a worker death");
        // Exit cleared: items drain normally.
        die.store(false, Ordering::Relaxed);
        let die3 = die.clone();
        assert_eq!(q.pop_unless(move || die3.load(Ordering::Relaxed)), Some(1));
        // A parked popper wakes and exits when the flag flips + wake_all.
        let q2 = q.clone();
        let die4 = die.clone();
        let h = std::thread::spawn(move || {
            // Drain the remaining item, then park until woken by wake_all.
            let mut got = Vec::new();
            while let Some(v) = q2.pop_unless(|| die4.load(Ordering::Relaxed)) {
                got.push(v);
            }
            got
        });
        while !q.is_empty() {
            std::thread::yield_now();
        }
        die.store(true, Ordering::Relaxed);
        q.wake_all();
        assert_eq!(h.join().unwrap(), vec![2]);
    }

    #[test]
    fn close_wakes_poppers_and_drains() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(4);
        q.push(7, |_| false, |_| {}).ok();
        q.close();
        assert_eq!(q.pop(), Some(7), "queued work still drains after close");
        assert_eq!(q.pop(), None);
        match q.push(8, |_| false, |_| {}) {
            Err(PushError::Closed(8)) => {}
            _ => panic!("expected Closed"),
        }
    }
}
