//! The gateway service: sharded worker pool, scoped evaluation, result
//! caching, and standing subscriptions.

use crate::admission::{AdmissionQueue, PushError, TokenBuckets};
use crate::cache::{CacheStats, ResultCache};
use crate::request::{QueryError, QueryRequest, QueryResponse, SubscriptionUpdate};
use bytes::Bytes;
use crossbeam::channel::{bounded, Sender};
use hpcmon_metrics::{CompId, JobRecord, SeriesKey, Ts};
use hpcmon_response::access::{AccessPolicy, Consumer, Role};
use hpcmon_store::{QueryEngine, TimeSeriesStore};
use hpcmon_telemetry::{Counter, Gauge, Histogram, Telemetry};
use hpcmon_trace::{DropReason, Stage, TraceContext, Tracer};
use hpcmon_transport::{Broker, Payload};
use parking_lot::{Mutex, RwLock};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Gateway sizing and policy knobs.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GatewayConfig {
    /// Worker-pool shards; principals are hashed onto shards so one noisy
    /// consumer contends with itself first.
    pub shards: usize,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Admission-queue capacity per shard.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Default per-query deadline budget.
    pub default_deadline_ms: u64,
    /// Token-bucket capacity per principal (≤ 0 disables rate limiting).
    pub rate_limit_burst: f64,
    /// Token refill rate per principal, tokens/second.
    pub rate_limit_per_sec: f64,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            shards: 2,
            workers_per_shard: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            default_deadline_ms: 250,
            rate_limit_burst: 0.0,
            rate_limit_per_sec: 0.0,
        }
    }
}

/// Telemetry handles, registered once at construction (the self-collector
/// requires append-only instrument ordering).  All names are under
/// `gateway.`, so the self feed republishes them as `hpcmon.self.gateway.*`.
struct GatewayMetrics {
    queries: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_hit_ratio: Arc<Gauge>,
    shed_rate_limited: Arc<Counter>,
    shed_deadline: Arc<Counter>,
    shed_queue_full: Arc<Counter>,
    denied_access: Arc<Counter>,
    eval: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    subs_active: Arc<Gauge>,
    subs_delivered: Arc<Counter>,
    workers_respawned: Arc<Counter>,
}

impl GatewayMetrics {
    fn new(t: &Telemetry) -> GatewayMetrics {
        GatewayMetrics {
            queries: t.counter("gateway.queries"),
            cache_hits: t.counter("gateway.cache.hits"),
            cache_misses: t.counter("gateway.cache.misses"),
            cache_hit_ratio: t.gauge("gateway.cache.hit_ratio"),
            shed_rate_limited: t.counter("gateway.shed.rate_limited"),
            shed_deadline: t.counter("gateway.shed.deadline"),
            shed_queue_full: t.counter("gateway.shed.queue_full"),
            denied_access: t.counter("gateway.denied.access"),
            eval: t.histogram("gateway.eval"),
            queue_depth: t.gauge("gateway.queue.depth"),
            subs_active: t.gauge("gateway.subscriptions.active"),
            subs_delivered: t.counter("gateway.subscriptions.delivered"),
            // Appended last: instrument registration order is append-only.
            workers_respawned: t.counter("gateway.workers.respawned"),
        }
    }
}

/// One admitted query waiting for a worker.
struct Job {
    consumer: Consumer,
    request: QueryRequest,
    deadline: Instant,
    trace: Option<TraceContext>,
    responder: Sender<Result<QueryResponse, QueryError>>,
}

/// Stable label for a request variant (span notes, shed provenance).
fn request_kind(request: &QueryRequest) -> &'static str {
    match request {
        QueryRequest::Series { .. } => "series",
        QueryRequest::AggregateAcross { .. } => "aggregate_across",
        QueryRequest::ComponentsOfKind { .. } => "components_of_kind",
        QueryRequest::TopComponentsAt { .. } => "top_components_at",
        QueryRequest::Downsample { .. } => "downsample",
        QueryRequest::AlignJoin { .. } => "align_join",
        QueryRequest::JobSeries { .. } => "job_series",
    }
}

/// Serializable image of the gateway's deterministic state, for flight-
/// recorder checkpoints: the scheduler job view with its scope-epoch
/// version, plus every standing subscription with its delivery state.
/// Worker pools, admission queues, token buckets, and the result cache
/// are timing-dependent service plumbing and are deliberately excluded —
/// they never feed hash-verified state, and cached responses are
/// epoch-keyed so a rewound epoch re-derives identical answers.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GatewaySnapshot {
    /// The scheduler job view the scoping decisions run against.
    pub jobs: Vec<JobRecord>,
    /// Scope-epoch version of that view (bumped only on change).
    pub jobs_version: u64,
    /// Subscription id counter, so post-restore ids keep matching.
    pub next_sub_id: u64,
    /// Standing subscriptions.
    pub subs: Vec<SubscriptionSnapshot>,
}

/// One standing subscription as checkpointed in a [`GatewaySnapshot`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SubscriptionSnapshot {
    /// Id returned by [`Gateway::subscribe`].
    pub id: u64,
    /// The subscribing principal.
    pub consumer: Consumer,
    /// The standing request.
    pub request: QueryRequest,
    /// Broker topic updates are published on.
    pub topic: String,
    /// Incremental-delivery watermark (`Series` requests).
    pub watermark: Option<Ts>,
    /// Last delivered response (non-`Series` requests, delta detection).
    pub last: Option<QueryResponse>,
}

/// One standing subscription.
struct StandingSub {
    id: u64,
    consumer: Consumer,
    request: QueryRequest,
    topic: String,
    /// `Series` subscriptions deliver incrementally: only points newer than
    /// this watermark go out, and the watermark advances on delivery.
    watermark: Option<Ts>,
    /// Non-`Series` subscriptions re-evaluate fully and deliver on change.
    last: Option<QueryResponse>,
}

struct GatewayInner {
    store: Arc<TimeSeriesStore>,
    broker: Arc<Broker>,
    policy: AccessPolicy,
    config: GatewayConfig,
    /// The scheduler's job view, swapped wholesale by [`Gateway::update_jobs`].
    jobs: RwLock<Arc<Vec<JobRecord>>>,
    /// Bumped when the job view *changes* (scope epoch for the cache).
    jobs_version: AtomicU64,
    cache: ResultCache,
    buckets: TokenBuckets,
    queues: Vec<AdmissionQueue<Job>>,
    subs: Mutex<Vec<StandingSub>>,
    next_sub_id: AtomicU64,
    shutdown: AtomicBool,
    /// Outstanding injected worker deaths (chaos).  Each worker checks at
    /// its job boundary and at most one claims each request, so a kill
    /// never interrupts an in-flight query and queued jobs survive.
    kill_requests: AtomicU64,
    metrics: GatewayMetrics,
    /// When set, each admitted query gets a trace context: served queries
    /// record a `Gateway` span (sampled), sheds always record provenance.
    tracer: RwLock<Option<Arc<Tracer>>>,
    query_seq: AtomicU64,
}

impl GatewayInner {
    fn total_queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Claim one outstanding kill request, if any — exactly one caller
    /// succeeds per request, so injecting N deaths kills N workers.
    fn try_claim_kill(&self) -> bool {
        self.kill_requests
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok()
    }

    fn scope_tag(consumer: &Consumer) -> String {
        match &consumer.role {
            Role::Admin => "admin".to_owned(),
            Role::User(u) => format!("user:{u}"),
        }
    }

    /// The cache key: scope fingerprint + canonical serde form of the
    /// request.  Two consumers with the same *role scope* share entries
    /// (two admin dashboards hit each other's cache); different scopes
    /// never do.
    fn cache_key(consumer: &Consumer, request: &QueryRequest) -> String {
        let req = serde_json::to_string(request).unwrap_or_default();
        format!("{}|{}", Self::scope_tag(consumer), req)
    }

    /// Execute with caching.  The store epoch and job version are captured
    /// **before** evaluation, so a mutation racing the query conservatively
    /// invalidates the entry rather than ever validating a stale one.
    fn execute(
        &self,
        consumer: &Consumer,
        request: &QueryRequest,
        exemplar: u64,
    ) -> Result<Arc<QueryResponse>, QueryError> {
        let started = Instant::now();
        let store_epoch = self.store.epoch();
        let jobs_version = self.jobs_version.load(Ordering::Acquire);
        let epoch = (store_epoch, jobs_version);
        let key = Self::cache_key(consumer, request);
        if let Some(hit) = self.cache.get(&key, epoch) {
            self.metrics.cache_hits.inc();
            self.metrics.eval.record_ns_tagged(started.elapsed().as_nanos() as u64, exemplar);
            return Ok(hit);
        }
        self.metrics.cache_misses.inc();
        let jobs = self.jobs.read().clone();
        let result = self.evaluate(consumer, request, &jobs);
        self.metrics.eval.record_ns_tagged(started.elapsed().as_nanos() as u64, exemplar);
        let resp = Arc::new(result?);
        self.cache.put(key, epoch, resp.clone());
        Ok(resp)
    }

    fn deny(&self, what: String) -> QueryError {
        self.metrics.denied_access.inc();
        QueryError::AccessDenied(what)
    }

    fn check_series(
        &self,
        consumer: &Consumer,
        key: &SeriesKey,
        jobs: &[JobRecord],
    ) -> Result<(), QueryError> {
        if self.policy.series_visible(consumer, key, jobs) {
            Ok(())
        } else {
            Err(self.deny(format!("series {:?}/{:?}", key.metric, key.comp)))
        }
    }

    /// Scoped evaluation against the store.  Admin principals get the
    /// `QueryEngine` result verbatim; user principals see only series
    /// passing [`AccessPolicy::series_visible`] for their job view.
    fn evaluate(
        &self,
        consumer: &Consumer,
        request: &QueryRequest,
        jobs: &[JobRecord],
    ) -> Result<QueryResponse, QueryError> {
        request.validate()?;
        let engine = QueryEngine::new(&self.store);
        let is_admin = consumer.role == Role::Admin;
        match request {
            QueryRequest::Series { key, range } => {
                self.check_series(consumer, key, jobs)?;
                Ok(QueryResponse::Points(engine.series(*key, *range)))
            }
            QueryRequest::AggregateAcross { metric, range, agg } => {
                if is_admin {
                    return Ok(QueryResponse::Points(
                        engine.aggregate_across_components(*metric, *range, *agg),
                    ));
                }
                // Users aggregate over their visible components only: the
                // sum of "my nodes" is meaningful, the machine-wide total
                // is need-to-know.
                let per_comp = self.store.query_metric(*metric, range.from, range.to);
                let mut by_ts: std::collections::BTreeMap<Ts, Vec<f64>> = Default::default();
                for (comp, pts) in per_comp {
                    let key = SeriesKey::new(*metric, comp);
                    if !self.policy.series_visible(consumer, &key, jobs) {
                        continue;
                    }
                    for (t, v) in pts {
                        by_ts.entry(t).or_default().push(v);
                    }
                }
                Ok(QueryResponse::Points(
                    by_ts
                        .into_iter()
                        .filter_map(|(t, vals)| agg.apply(&vals).map(|v| (t, v)))
                        .collect(),
                ))
            }
            QueryRequest::ComponentsOfKind { metric, kind, range } => {
                let rows = engine
                    .components_of_kind(*metric, *kind, *range)
                    .into_iter()
                    .filter(|(comp, _)| {
                        is_admin
                            || self.policy.series_visible(
                                consumer,
                                &SeriesKey::new(*metric, *comp),
                                jobs,
                            )
                    })
                    .collect();
                Ok(QueryResponse::Grouped(rows))
            }
            QueryRequest::TopComponentsAt { metric, at, tolerance_ms, limit } => {
                if is_admin {
                    return Ok(QueryResponse::Ranked(engine.top_components_at(
                        *metric,
                        *at,
                        *tolerance_ms,
                        *limit,
                    )));
                }
                // Rank everything first, filter to visible, then truncate —
                // truncating before the filter would let invisible rows
                // push visible ones out of the top-k.
                let mut rows: Vec<(CompId, f64)> = engine
                    .top_components_at(*metric, *at, *tolerance_ms, usize::MAX)
                    .into_iter()
                    .filter(|(comp, _)| {
                        self.policy.series_visible(consumer, &SeriesKey::new(*metric, *comp), jobs)
                    })
                    .collect();
                rows.truncate(*limit);
                Ok(QueryResponse::Ranked(rows))
            }
            QueryRequest::Downsample { key, range, bucket_ms, agg } => {
                self.check_series(consumer, key, jobs)?;
                Ok(QueryResponse::Points(engine.downsample(*key, *range, *bucket_ms, *agg)?))
            }
            QueryRequest::AlignJoin { a, b, range } => {
                self.check_series(consumer, a, jobs)?;
                self.check_series(consumer, b, jobs)?;
                Ok(QueryResponse::Joined(engine.align_join(*a, *b, *range)))
            }
            QueryRequest::JobSeries { job_id, metric } => {
                let job = jobs
                    .iter()
                    .find(|j| j.id.0 == *job_id)
                    .ok_or(QueryError::UnknownJob(*job_id))?;
                let owned = matches!(&consumer.role, Role::User(u) if job.user == *u);
                if !is_admin && !owned {
                    return Err(self.deny(format!("job {job_id}")));
                }
                Ok(QueryResponse::Job(engine.job_series(job, *metric)))
            }
        }
    }
}

/// The concurrent query-serving frontend.
///
/// Constructed over shared handles to the store, broker, and telemetry
/// registry; owns its worker threads (joined on drop).
pub struct Gateway {
    inner: Arc<GatewayInner>,
    /// Live workers, tagged with their shard so a dead worker can be
    /// respawned onto the same shard.
    workers: Mutex<Vec<(usize, std::thread::JoinHandle<()>)>>,
    worker_seq: AtomicU64,
}

impl Gateway {
    /// Build the gateway and start its worker pool.
    pub fn new(
        store: Arc<TimeSeriesStore>,
        broker: Arc<Broker>,
        telemetry: &Telemetry,
        config: GatewayConfig,
    ) -> Gateway {
        let shards = config.shards.max(1);
        let workers_per_shard = config.workers_per_shard.max(1);
        let queues = (0..shards).map(|_| AdmissionQueue::new(config.queue_capacity)).collect();
        let inner = Arc::new(GatewayInner {
            store,
            broker,
            policy: AccessPolicy,
            jobs: RwLock::new(Arc::new(Vec::new())),
            jobs_version: AtomicU64::new(0),
            cache: ResultCache::new(config.cache_capacity),
            buckets: TokenBuckets::new(config.rate_limit_burst, config.rate_limit_per_sec),
            queues,
            subs: Mutex::new(Vec::new()),
            next_sub_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            kill_requests: AtomicU64::new(0),
            metrics: GatewayMetrics::new(telemetry),
            tracer: RwLock::new(None),
            query_seq: AtomicU64::new(0),
            config,
        });
        let gateway =
            Gateway { inner, workers: Mutex::new(Vec::new()), worker_seq: AtomicU64::new(0) };
        {
            let mut workers = gateway.workers.lock();
            for shard in 0..shards {
                for _ in 0..workers_per_shard {
                    let handle = gateway.spawn_worker(shard);
                    workers.push((shard, handle));
                }
            }
        }
        gateway
    }

    fn spawn_worker(&self, shard: usize) -> std::thread::JoinHandle<()> {
        let n = self.worker_seq.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.clone();
        std::thread::Builder::new()
            .name(format!("gw-{shard}-{n}"))
            .spawn(move || Gateway::worker_loop(&inner, shard))
            .expect("spawn gateway worker")
    }

    fn worker_loop(inner: &GatewayInner, shard: usize) {
        // `pop_unless` checks the kill claim *before* popping: an injected
        // worker death lands at a job boundary and leaves queued jobs for
        // the surviving workers (and the eventual respawn).
        while let Some(job) = inner.queues[shard].pop_unless(|| inner.try_claim_kill()) {
            inner.metrics.queue_depth.set(inner.total_queued() as f64);
            let tracer = inner.tracer.read().clone();
            if Instant::now() > job.deadline {
                inner.metrics.shed_deadline.inc();
                if let (Some(t), Some(ctx)) = (tracer.as_deref(), job.trace.as_ref()) {
                    t.record_drop(
                        ctx,
                        Stage::Gateway,
                        DropReason::DeadlineShed,
                        &format!("{}: {}", job.consumer.name, request_kind(&job.request)),
                    );
                }
                let _ = job.responder.send(Err(QueryError::DeadlineExceeded));
                continue;
            }
            let span = match (tracer.as_deref(), job.trace.as_ref()) {
                (Some(t), Some(ctx)) => {
                    let mut s = t.span(ctx, Stage::Gateway);
                    s.set_note(format!("{}: {}", job.consumer.name, request_kind(&job.request)));
                    Some(s)
                }
                _ => None,
            };
            let exemplar = job.trace.map_or(0, |c| if c.sampled { c.trace_id.0 } else { 0 });
            let result =
                inner.execute(&job.consumer, &job.request, exemplar).map(|arc| (*arc).clone());
            drop(span);
            let _ = job.responder.send(result);
        }
    }

    /// Submit one query with the configured default deadline budget;
    /// blocks until answered, shed, or timed out.
    pub fn query(
        &self,
        consumer: &Consumer,
        request: QueryRequest,
    ) -> Result<QueryResponse, QueryError> {
        let budget = Duration::from_millis(self.inner.config.default_deadline_ms);
        self.query_with_deadline(consumer, request, budget)
    }

    /// Submit one query with an explicit deadline budget.
    pub fn query_with_deadline(
        &self,
        consumer: &Consumer,
        request: QueryRequest,
        budget: Duration,
    ) -> Result<QueryResponse, QueryError> {
        let inner = &self.inner;
        inner.metrics.queries.inc();
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(QueryError::Shutdown);
        }
        let tracer = inner.tracer.read().clone();
        let trace = tracer
            .as_deref()
            .and_then(|t| t.context_for(inner.query_seq.fetch_add(1, Ordering::Relaxed)));
        let kind = request_kind(&request);
        if !inner.buckets.try_admit(&consumer.name, Instant::now()) {
            inner.metrics.shed_rate_limited.inc();
            if let (Some(t), Some(ctx)) = (tracer.as_deref(), trace.as_ref()) {
                t.record_drop(
                    ctx,
                    Stage::Gateway,
                    DropReason::RateLimited,
                    &format!("{}: {kind}", consumer.name),
                );
            }
            return Err(QueryError::RateLimited { principal: consumer.name.clone() });
        }
        // Reject malformed requests before they occupy queue or worker.
        request.validate()?;
        let (tx, rx) = bounded(1);
        let job = Job {
            consumer: consumer.clone(),
            request,
            deadline: Instant::now() + budget,
            trace,
            responder: tx,
        };
        let shard = {
            let mut h = DefaultHasher::new();
            consumer.name.hash(&mut h);
            (h.finish() as usize) % inner.queues.len()
        };
        let now = Instant::now();
        let pushed = inner.queues[shard].push(
            job,
            |j| j.deadline < now,
            |expired| {
                inner.metrics.shed_deadline.inc();
                if let (Some(t), Some(ctx)) = (tracer.as_deref(), expired.trace.as_ref()) {
                    t.record_drop(
                        ctx,
                        Stage::Gateway,
                        DropReason::DeadlineShed,
                        &format!("{}: {}", expired.consumer.name, request_kind(&expired.request)),
                    );
                }
                let _ = expired.responder.send(Err(QueryError::DeadlineExceeded));
            },
        );
        match pushed {
            Ok(()) => inner.metrics.queue_depth.set(inner.total_queued() as f64),
            Err(PushError::Full(rejected)) => {
                inner.metrics.shed_queue_full.inc();
                if let (Some(t), Some(ctx)) = (tracer.as_deref(), rejected.trace.as_ref()) {
                    t.record_drop(
                        ctx,
                        Stage::Gateway,
                        DropReason::AdmissionFull,
                        &format!("{}: {kind}", consumer.name),
                    );
                }
                return Err(QueryError::QueueFull);
            }
            Err(PushError::Closed(_)) => return Err(QueryError::Shutdown),
        }
        match rx.recv() {
            Ok(result) => result,
            Err(_) => Err(QueryError::Shutdown),
        }
    }

    /// Plan-level entry point: evaluate one query inline on the caller's
    /// thread, bypassing the worker pool, admission queues, rate limits,
    /// and wall-clock deadlines.  Scoping and the epoch-keyed cache still
    /// apply.  This is what a federation scatter uses: its deadline story
    /// is denominated in simulated ticks (link RTT vs. budget), decided by
    /// the planner *before* the member query runs, so the member-side
    /// evaluation must be free of wall-clock admission effects to keep
    /// federated answers bit-identical at any worker count.
    pub fn plan_query(
        &self,
        consumer: &Consumer,
        request: &QueryRequest,
    ) -> Result<QueryResponse, QueryError> {
        let inner = &self.inner;
        inner.metrics.queries.inc();
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(QueryError::Shutdown);
        }
        request.validate()?;
        inner.execute(consumer, request, 0).map(|arc| (*arc).clone())
    }

    /// Attach a tracer: every admitted query gets a trace context; served
    /// queries record a `Gateway` span when sampled, and every shed
    /// (rate-limit, queue-full, deadline) records drop provenance.
    pub fn set_tracer(&self, tracer: Arc<Tracer>) {
        *self.inner.tracer.write() = Some(tracer);
    }

    /// Register a standing subscription: `request` is re-evaluated each
    /// tick under `consumer`'s scope and deltas are published on `topic`
    /// (as `Payload::Raw` JSON of [`SubscriptionUpdate`]).  Returns the
    /// subscription id.
    pub fn subscribe(
        &self,
        consumer: &Consumer,
        request: QueryRequest,
        topic: &str,
    ) -> Result<u64, QueryError> {
        request.validate()?;
        let id = self.inner.next_sub_id.fetch_add(1, Ordering::Relaxed) + 1;
        let mut subs = self.inner.subs.lock();
        subs.push(StandingSub {
            id,
            consumer: consumer.clone(),
            request,
            topic: topic.to_owned(),
            watermark: None,
            last: None,
        });
        self.inner.metrics.subs_active.set(subs.len() as f64);
        Ok(id)
    }

    /// Remove a standing subscription; false if the id is unknown.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut subs = self.inner.subs.lock();
        let before = subs.len();
        subs.retain(|s| s.id != id);
        self.inner.metrics.subs_active.set(subs.len() as f64);
        subs.len() != before
    }

    /// Replace the scheduler job view the scoping decisions run against.
    /// The scope epoch only advances when the view actually changes, so a
    /// steady job mix keeps the cache warm.
    pub fn update_jobs(&self, jobs: Vec<JobRecord>) {
        let changed = { *self.inner.jobs.read().as_ref() != jobs };
        if changed {
            *self.inner.jobs.write() = Arc::new(jobs);
            self.inner.jobs_version.fetch_add(1, Ordering::Release);
        }
    }

    /// Evaluate all standing subscriptions for the tick at `now` and
    /// publish updates.  `Series` subscriptions send only points past
    /// their watermark; other requests re-evaluate fully and send on
    /// change.  Called from the pipeline's tick loop.
    pub fn on_tick(&self, now: Ts) {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Supervise the pool: any worker that died since the last tick
        // (injected fault or panic) is joined and replaced.
        self.ensure_workers();
        let jobs = inner.jobs.read().clone();
        let mut subs = inner.subs.lock();
        for sub in subs.iter_mut() {
            let resp = match inner.evaluate(&sub.consumer, &sub.request, &jobs) {
                Ok(r) => r,
                // A subscription that has become unanswerable (job ended,
                // access revoked) just goes quiet; it is not an admission
                // failure.
                Err(_) => continue,
            };
            let delivery = match (&sub.request, resp) {
                (QueryRequest::Series { .. }, QueryResponse::Points(pts)) => {
                    let fresh: Vec<(Ts, f64)> = match sub.watermark {
                        Some(w) => pts.iter().copied().filter(|(t, _)| *t > w).collect(),
                        None => pts,
                    };
                    match fresh.last() {
                        Some(&(t, _)) => {
                            sub.watermark = Some(sub.watermark.map_or(t, |w| w.max(t)));
                            Some((true, QueryResponse::Points(fresh)))
                        }
                        None => None,
                    }
                }
                (_, resp) => {
                    if sub.last.as_ref() == Some(&resp) {
                        None
                    } else {
                        sub.last = Some(resp.clone());
                        Some((false, resp))
                    }
                }
            };
            if let Some((incremental, result)) = delivery {
                let update = SubscriptionUpdate { id: sub.id, tick: now, incremental, result };
                if let Ok(bytes) = serde_json::to_vec(&update) {
                    inner.broker.publish(&sub.topic, Payload::Raw(Bytes::from(bytes)));
                    inner.metrics.subs_delivered.inc();
                }
            }
        }
        inner.metrics.subs_active.set(subs.len() as f64);
        drop(subs);
        // Refresh the level-style gauges once per tick.
        let stats = inner.cache.stats();
        let lookups = stats.hits + stats.misses;
        if lookups > 0 {
            inner.metrics.cache_hit_ratio.set(stats.hits as f64 / lookups as f64);
        }
        inner.metrics.queue_depth.set(inner.total_queued() as f64);
    }

    /// Result-cache accounting.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// The gateway's *deterministic* state observables, for per-tick replay
    /// verification: the scope-epoch version of the job view and the number
    /// of standing subscriptions.  Worker-pool and cache internals are
    /// timing-dependent (wall-clock deadlines, thread scheduling) and are
    /// deliberately excluded — they never feed back into monitored state.
    pub fn replay_digest_inputs(&self) -> (u64, u64) {
        (self.inner.jobs_version.load(Ordering::Acquire), self.inner.subs.lock().len() as u64)
    }

    /// Capture the gateway's deterministic state for a flight-recorder
    /// checkpoint (see [`GatewaySnapshot`] for what is and isn't
    /// included).
    pub fn snapshot_replay_state(&self) -> GatewaySnapshot {
        let subs = self.inner.subs.lock();
        GatewaySnapshot {
            jobs: self.inner.jobs.read().as_ref().clone(),
            jobs_version: self.inner.jobs_version.load(Ordering::Acquire),
            next_sub_id: self.inner.next_sub_id.load(Ordering::Acquire),
            subs: subs
                .iter()
                .map(|s| SubscriptionSnapshot {
                    id: s.id,
                    consumer: s.consumer.clone(),
                    request: s.request.clone(),
                    topic: s.topic.clone(),
                    watermark: s.watermark,
                    last: s.last.clone(),
                })
                .collect(),
        }
    }

    /// Load a checkpoint back in place: the job view (restored *without*
    /// bumping the version — the version itself is restored, so the next
    /// [`Gateway::update_jobs`] sees exactly the comparison the recording
    /// run saw), the subscription set, and the id counter.  The worker
    /// pool keeps running; in-flight queries against the old state are
    /// timing-dependent traffic replay doesn't verify anyway.
    pub fn restore_replay_state(&self, snap: GatewaySnapshot) {
        *self.inner.jobs.write() = Arc::new(snap.jobs);
        self.inner.jobs_version.store(snap.jobs_version, Ordering::Release);
        self.inner.next_sub_id.store(snap.next_sub_id, Ordering::Release);
        let mut subs = self.inner.subs.lock();
        *subs = snap
            .subs
            .into_iter()
            .map(|s| StandingSub {
                id: s.id,
                consumer: s.consumer,
                request: s.request,
                topic: s.topic,
                watermark: s.watermark,
                last: s.last,
            })
            .collect();
        self.inner.metrics.subs_active.set(subs.len() as f64);
    }

    /// Inject one worker death (chaos): exactly one worker exits at its
    /// next job boundary.  In-flight queries complete and queued jobs
    /// survive for the remaining workers; [`Gateway::ensure_workers`]
    /// (called every tick) respawns the replacement.
    pub fn inject_worker_death(&self) {
        self.inner.kill_requests.fetch_add(1, Ordering::Release);
        for q in &self.inner.queues {
            q.wake_all();
        }
    }

    /// Join any dead workers and respawn replacements on their shards.
    /// Returns the number respawned (also counted on
    /// `gateway.workers.respawned`).  No-op after shutdown.
    pub fn ensure_workers(&self) -> usize {
        let mut workers = self.workers.lock();
        let mut respawned = 0;
        let mut alive = Vec::with_capacity(workers.len());
        for (shard, handle) in workers.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
                if !self.inner.shutdown.load(Ordering::Acquire) {
                    alive.push((shard, self.spawn_worker(shard)));
                    respawned += 1;
                    self.inner.metrics.workers_respawned.inc();
                }
            } else {
                alive.push((shard, handle));
            }
        }
        *workers = alive;
        respawned
    }

    /// Live (not yet joined) worker threads — dead-but-unjoined workers
    /// still count until [`Gateway::ensure_workers`] reaps them.
    pub fn worker_count(&self) -> usize {
        self.workers.lock().len()
    }

    /// Stop accepting work and join the worker pool.  Queued jobs drain
    /// first; callers still waiting get [`QueryError::Shutdown`] only if
    /// their responder is dropped unanswered.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        for q in &self.inner.queues {
            q.close();
        }
        let mut workers = self.workers.lock();
        for (_, handle) in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}
