#![warn(missing_docs)]

//! `hpcmon-trace` — follow one frame end-to-end.
//!
//! Aggregate self-telemetry (`hpcmon.self.*`) answers "is the pipeline
//! healthy"; it cannot answer the Table I operator question "where did
//! *this* datum go and why is it late?".  The vendor failure mode the
//! paper's sites complain about is monitoring data that is silently
//! dropped or delayed with no way to attribute the loss to a stage.  This
//! crate is the per-datum provenance layer that closes that gap:
//!
//! * [`TraceContext`] — a (trace id, span id, sampled) triple stamped on a
//!   frame at the collector and propagated through broker envelopes,
//!   store ingest, analysis, response, and gateway queries.
//! * [`Sampler`] — deterministic head sampling: a hash of the frame
//!   sequence number decides once, at the head of the pipeline, whether
//!   the frame records spans.  Drops and sheds are **always** recorded,
//!   even for unsampled frames, so every *lost* datum has a trace
//!   explaining which stage dropped it and why.
//! * [`SpanRing`] — the lock-free bounded ring buffer spans are recorded
//!   into; the [`Tracer`] keeps one ring per thread slot so the pipeline
//!   thread and gateway workers never contend.
//! * [`Tracer`] — hands out contexts and span guards; the hot path is a
//!   couple of relaxed atomics when sampled and a branch when not.
//! * [`TraceStore`] — assembles drained spans into completed [`Trace`]s,
//!   keeping a bounded window of recent traces indexed by id.
//!
//! Rendering (ASCII span trees, SVG timelines) lives in `hpcmon-viz`;
//! completed-trace counts are exported through the telemetry registry as
//! `hpcmon.self.trace.*` series like every other pipeline statistic.

pub mod context;
pub mod ring;
pub mod sampler;
pub mod span;
pub mod store;
pub mod tracer;

pub use context::{SpanId, TraceContext, TraceId};
pub use ring::SpanRing;
pub use sampler::Sampler;
pub use span::{DropReason, SpanRecord, SpanStatus, Stage};
pub use store::{Trace, TraceStore};
pub use tracer::{SpanGuard, Tracer, TracerStats};
