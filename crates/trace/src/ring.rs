//! The lock-free bounded ring spans are recorded into.
//!
//! Recording must never block the pipeline and never allocate on the hot
//! path beyond the span itself, so the ring is a fixed-capacity
//! Vyukov-style bounded queue: producers claim a slot with one CAS and
//! publish with one release store; the drain side pops with the symmetric
//! protocol.  When the ring is full the span is *rejected and counted* —
//! tracing obeys the same "lossy but accounted" discipline as the broker,
//! and a stalled drain can never wedge the tick loop.

use crate::span::SpanRecord;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct Slot {
    seq: AtomicUsize,
    value: UnsafeCell<Option<SpanRecord>>,
}

/// A lock-free multi-producer bounded span queue (power-of-two capacity).
pub struct SpanRing {
    slots: Box<[Slot]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    rejected: AtomicU64,
}

// The UnsafeCell is only touched by the thread that won the slot's
// sequence CAS (producer) or observed its published sequence (consumer);
// the seq protocol orders those accesses.
unsafe impl Send for SpanRing {}
unsafe impl Sync for SpanRing {}

impl SpanRing {
    /// A ring holding up to `capacity` spans (rounded up to a power of two).
    pub fn new(capacity: usize) -> SpanRing {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot { seq: AtomicUsize::new(i), value: UnsafeCell::new(None) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpanRing {
            slots,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Record a span.  Returns false (and counts the rejection) when full.
    pub fn push(&self, span: SpanRecord) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { *slot.value.get() = Some(span) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                // The slot one lap behind is still occupied: full.
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Take the oldest recorded span, if any.
    pub fn pop(&self) -> Option<SpanRecord> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos.wrapping_add(1) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*slot.value.get()).take() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask).wrapping_add(1), Ordering::Release);
                        return value;
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Drain everything currently recorded into `out`.
    pub fn drain_into(&self, out: &mut Vec<SpanRecord>) {
        while let Some(span) = self.pop() {
            out.push(span);
        }
    }

    /// Spans rejected because the ring was full.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Slots available before producers start rejecting.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{SpanId, TraceId};
    use crate::span::{SpanStatus, Stage};
    use std::sync::Arc;

    fn span(n: u64) -> SpanRecord {
        SpanRecord {
            trace_id: TraceId(n),
            span_id: SpanId(n),
            parent: SpanId::NONE,
            stage: Stage::Collect,
            start_ns: n,
            end_ns: n + 1,
            status: SpanStatus::Completed,
            note: String::new(),
        }
    }

    #[test]
    fn fifo_order_single_thread() {
        let ring = SpanRing::new(8);
        for i in 0..5 {
            assert!(ring.push(span(i)));
        }
        for i in 0..5 {
            assert_eq!(ring.pop().unwrap().trace_id, TraceId(i));
        }
        assert!(ring.pop().is_none());
    }

    #[test]
    fn full_ring_rejects_and_counts() {
        let ring = SpanRing::new(4);
        for i in 0..4 {
            assert!(ring.push(span(i)));
        }
        assert!(!ring.push(span(99)));
        assert_eq!(ring.rejected(), 1);
        // Draining frees capacity again.
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 4);
        assert!(ring.push(span(100)));
    }

    #[test]
    fn wraps_many_laps() {
        let ring = SpanRing::new(4);
        for i in 0..1_000u64 {
            assert!(ring.push(span(i)));
            assert_eq!(ring.pop().unwrap().trace_id, TraceId(i));
        }
    }

    #[test]
    fn concurrent_producers_lose_nothing_under_capacity() {
        let ring = Arc::new(SpanRing::new(1_024));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let ring = ring.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    assert!(ring.push(span(t * 1_000 + i)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 800);
        let mut ids: Vec<u64> = out.iter().map(|s| s.trace_id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 800, "every span distinct");
    }

    #[test]
    fn concurrent_producers_and_drainer() {
        let ring = Arc::new(SpanRing::new(64));
        let stop = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut producers = Vec::new();
        for t in 0..3u64 {
            let ring = ring.clone();
            producers.push(std::thread::spawn(move || {
                let mut pushed = 0u64;
                for i in 0..500u64 {
                    if ring.push(span(t * 10_000 + i)) {
                        pushed += 1;
                    }
                }
                pushed
            }));
        }
        let drainer = {
            let ring = ring.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut got = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    while ring.pop().is_some() {
                        got += 1;
                    }
                }
                while ring.pop().is_some() {
                    got += 1;
                }
                got
            })
        };
        let pushed: u64 = producers.into_iter().map(|h| h.join().unwrap()).sum();
        stop.store(1, Ordering::Relaxed);
        let drained = drainer.join().unwrap();
        assert_eq!(pushed + ring.rejected(), 1_500);
        assert_eq!(drained, pushed, "everything accepted is drained exactly once");
    }
}
