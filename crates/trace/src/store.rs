//! Assembling drained spans into completed traces.
//!
//! The [`crate::Tracer`] emits spans out of order (per-thread rings, each
//! stage closing at its own pace), so the store buffers spans by trace id
//! and declares a trace complete once it has gone one full ingest round
//! without growing — a watermark scheme matched to the tick-driven drain
//! cadence (spans for a frame all land within the tick, or the next one
//! for cross-thread stages like the gateway).

use crate::context::{SpanId, TraceId};
use crate::span::{DropReason, SpanRecord};
use std::collections::{HashMap, VecDeque};

/// One assembled trace: all spans sharing a trace id, sorted by start.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The trace id.
    pub id: TraceId,
    /// Spans, sorted by `start_ns` (ties broken by span id).
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// The root span (no parent), if one was recorded.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent == SpanId::NONE)
    }

    /// End-to-end duration: first start to last end across all spans.
    pub fn duration_ns(&self) -> u64 {
        let start = self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let end = self.spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Whether any span records a loss.
    pub fn has_drop(&self) -> bool {
        self.spans.iter().any(|s| s.is_drop())
    }

    /// The spans recording losses (drop provenance).
    pub fn drop_spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(|s| s.is_drop())
    }

    /// The first drop reason, if the trace recorded a loss.
    pub fn first_drop_reason(&self) -> Option<DropReason> {
        self.drop_spans().find_map(|s| s.status.drop_reason())
    }
}

struct Pending {
    spans: Vec<SpanRecord>,
    /// Ingest rounds since this trace last received a span.
    idle_rounds: u32,
}

/// Buffers drained spans and surfaces completed traces, keeping the most
/// recent `capacity` around for inspection (gateway, viz, examples).
pub struct TraceStore {
    pending: HashMap<u64, Pending>,
    completed: VecDeque<Trace>,
    capacity: usize,
    completed_total: u64,
    completed_with_drops: u64,
    spans_seen: u64,
}

impl TraceStore {
    /// Rounds a trace must sit idle before being declared complete.
    const IDLE_ROUNDS: u32 = 1;

    /// A store retaining the `capacity` most recent completed traces.
    pub fn new(capacity: usize) -> TraceStore {
        TraceStore {
            pending: HashMap::new(),
            completed: VecDeque::new(),
            capacity: capacity.max(1),
            completed_total: 0,
            completed_with_drops: 0,
            spans_seen: 0,
        }
    }

    /// Ingest one drained batch; returns how many traces completed.
    pub fn ingest(&mut self, spans: Vec<SpanRecord>) -> usize {
        for p in self.pending.values_mut() {
            p.idle_rounds += 1;
        }
        for span in spans {
            self.spans_seen += 1;
            let entry = self
                .pending
                .entry(span.trace_id.0)
                .or_insert_with(|| Pending { spans: Vec::new(), idle_rounds: 0 });
            entry.spans.push(span);
            entry.idle_rounds = 0;
        }
        let done: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.idle_rounds >= Self::IDLE_ROUNDS)
            .map(|(&id, _)| id)
            .collect();
        let mut completed = Vec::with_capacity(done.len());
        for id in done {
            let mut p = self.pending.remove(&id).expect("pending id listed");
            p.spans.sort_by_key(|s| (s.start_ns, s.span_id));
            completed.push(Trace { id: TraceId(id), spans: p.spans });
        }
        // Deterministic completion order regardless of hash-map iteration.
        completed.sort_by_key(|t| t.id);
        let n = completed.len();
        for trace in completed {
            self.completed_total += 1;
            if trace.has_drop() {
                self.completed_with_drops += 1;
            }
            self.completed.push_back(trace);
            while self.completed.len() > self.capacity {
                self.completed.pop_front();
            }
        }
        n
    }

    /// Force-complete everything still pending (end of run / example).
    pub fn flush(&mut self) -> usize {
        for p in self.pending.values_mut() {
            p.idle_rounds = Self::IDLE_ROUNDS;
        }
        self.ingest(Vec::new())
    }

    /// Retained completed traces, oldest first.
    pub fn completed(&self) -> impl DoubleEndedIterator<Item = &Trace> {
        self.completed.iter()
    }

    /// Find a retained trace by id.
    pub fn find(&self, id: TraceId) -> Option<&Trace> {
        self.completed.iter().find(|t| t.id == id)
    }

    /// The most recently completed trace.
    pub fn latest(&self) -> Option<&Trace> {
        self.completed.back()
    }

    /// Retained traces that recorded at least one loss, oldest first.
    pub fn with_drops(&self) -> impl DoubleEndedIterator<Item = &Trace> {
        self.completed.iter().filter(|t| t.has_drop())
    }

    /// Traces completed over this store's lifetime.
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }

    /// Completed traces that recorded at least one loss, lifetime.
    pub fn completed_with_drops(&self) -> u64 {
        self.completed_with_drops
    }

    /// Spans ingested over this store's lifetime.
    pub fn spans_seen(&self) -> u64 {
        self.spans_seen
    }

    /// Traces currently buffered awaiting completion.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanStatus, Stage};

    fn span(trace: u64, id: u64, parent: u64, start: u64, status: SpanStatus) -> SpanRecord {
        SpanRecord {
            trace_id: TraceId(trace),
            span_id: SpanId(id),
            parent: SpanId(parent),
            stage: Stage::Tick,
            start_ns: start,
            end_ns: start + 10,
            status,
            note: String::new(),
        }
    }

    #[test]
    fn trace_completes_after_one_idle_round() {
        let mut store = TraceStore::new(8);
        assert_eq!(store.ingest(vec![span(1, 1, 0, 0, SpanStatus::Completed)]), 0);
        assert_eq!(store.pending_len(), 1);
        // Next round with no new spans for trace 1: it completes.
        assert_eq!(store.ingest(Vec::new()), 1);
        assert_eq!(store.pending_len(), 0);
        let t = store.find(TraceId(1)).unwrap();
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.root().unwrap().span_id, SpanId(1));
    }

    #[test]
    fn straggler_spans_extend_a_pending_trace() {
        let mut store = TraceStore::new(8);
        store.ingest(vec![span(1, 2, 1, 50, SpanStatus::Completed)]);
        // A straggler arrives the next round: trace stays pending, merged.
        store.ingest(vec![span(1, 1, 0, 0, SpanStatus::Completed)]);
        assert_eq!(store.ingest(Vec::new()), 1);
        let t = store.find(TraceId(1)).unwrap();
        assert_eq!(t.spans.len(), 2);
        // Sorted by start_ns: the root (start 0) first.
        assert_eq!(t.spans[0].span_id, SpanId(1));
        assert_eq!(t.duration_ns(), 60);
    }

    #[test]
    fn drop_traces_are_counted_and_filterable() {
        let mut store = TraceStore::new(8);
        store.ingest(vec![
            span(1, 1, 0, 0, SpanStatus::Completed),
            span(2, 2, 0, 0, SpanStatus::Dropped(DropReason::QueueFull)),
        ]);
        store.ingest(Vec::new());
        assert_eq!(store.completed_total(), 2);
        assert_eq!(store.completed_with_drops(), 1);
        let dropped: Vec<_> = store.with_drops().collect();
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].id, TraceId(2));
        assert_eq!(dropped[0].first_drop_reason(), Some(DropReason::QueueFull));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut store = TraceStore::new(2);
        for i in 1..=4u64 {
            store.ingest(vec![span(i, i, 0, 0, SpanStatus::Completed)]);
        }
        store.flush();
        assert_eq!(store.completed_total(), 4);
        assert!(store.find(TraceId(1)).is_none());
        assert!(store.find(TraceId(4)).is_some());
        assert_eq!(store.completed().count(), 2);
    }

    #[test]
    fn flush_completes_everything() {
        let mut store = TraceStore::new(8);
        store.ingest(vec![span(7, 1, 0, 0, SpanStatus::Completed)]);
        assert_eq!(store.flush(), 1);
        assert_eq!(store.pending_len(), 0);
        assert_eq!(store.latest().unwrap().id, TraceId(7));
    }
}
