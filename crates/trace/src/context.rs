//! Trace identity: the context stamped on frames and envelopes.

use serde::{Deserialize, Serialize};

/// Identity of one end-to-end trace (one frame, one query, ...).
///
/// Ids are allocated by the [`crate::Tracer`] from a process-local counter
/// and are never zero; `TraceId(0)` is reserved as "untraced" so a raw
/// `u64` exemplar slot can use 0 for "empty".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The reserved "no trace" id.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this is a real allocated id.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// Identity of one span within a trace.  `SpanId(0)` means "no span":
/// a context with span id 0 has no parent yet (its first span becomes the
/// trace root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The reserved "no span / root parent" id.
    pub const NONE: SpanId = SpanId(0);
}

/// The causal context carried through the pipeline: which trace a datum
/// belongs to, which span is its current parent, and whether the head
/// sampler elected it for full span recording.
///
/// The context is three words; stamping it on an envelope costs a copy.
/// `sampled == false` contexts still carry identity so that a drop or
/// shed anywhere downstream can be recorded with full provenance (the
/// drop span is recorded unconditionally — losing data is always worth a
/// trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// The trace this datum belongs to.
    pub trace_id: TraceId,
    /// The span to parent further spans under (`SpanId::NONE` at the root).
    pub span_id: SpanId,
    /// Whether ordinary (non-drop) spans are recorded for this trace.
    pub sampled: bool,
}

impl TraceContext {
    /// A context at the head of a new trace.
    pub fn root(trace_id: TraceId, sampled: bool) -> TraceContext {
        TraceContext { trace_id, span_id: SpanId::NONE, sampled }
    }

    /// The same trace, re-parented under `span`.
    pub fn under(self, span: SpanId) -> TraceContext {
        TraceContext { span_id: span, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_serde_round_trips() {
        let ctx = TraceContext { trace_id: TraceId(42), span_id: SpanId(7), sampled: true };
        let s = serde_json::to_string(&ctx).unwrap();
        let back: TraceContext = serde_json::from_str(&s).unwrap();
        assert_eq!(ctx, back);
    }

    #[test]
    fn reserved_ids() {
        assert!(!TraceId::NONE.is_some());
        assert!(TraceId(1).is_some());
        let ctx = TraceContext::root(TraceId(9), false);
        assert_eq!(ctx.span_id, SpanId::NONE);
        assert_eq!(ctx.under(SpanId(3)).span_id, SpanId(3));
        assert_eq!(ctx.under(SpanId(3)).trace_id, TraceId(9));
    }
}
