//! The tracer: context allocation, span guards, and drop recording.

use crate::context::{SpanId, TraceContext, TraceId};
use crate::ring::SpanRing;
use crate::sampler::Sampler;
use crate::span::{DropReason, SpanRecord, SpanStatus, Stage};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Process-wide thread-slot allocator: each thread gets a stable small
/// index on first use, mapping it onto one of the tracer's rings.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// Recording statistics for the tracer itself (the tracing layer obeys
/// the same "observable monitor" rule as everything else).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TracerStats {
    /// Sampled traces started (head-sampling elections).
    pub traces_sampled: u64,
    /// Spans accepted into rings.
    pub spans_recorded: u64,
    /// Spans rejected because a ring was full.
    pub spans_rejected: u64,
}

/// Allocates trace/span identity and records spans into per-thread
/// lock-free rings.
///
/// The hot path costs: an unsampled frame pays one atomic id allocation
/// and a hash; a sampled span pays one additional ring push (one CAS).
/// With [`Sampler::off`] the tracer hands out no contexts at all and
/// every guard is an inert branch.
pub struct Tracer {
    sampler: Sampler,
    // When set, every context is sampled regardless of the head sampler's
    // decision — replay uses this to get full traces for a window that was
    // originally recorded at 1-in-N.
    force_sampling: AtomicBool,
    rings: Box<[SpanRing]>,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    traces_sampled: AtomicU64,
    spans_recorded: AtomicU64,
    epoch: Instant,
}

impl Tracer {
    /// Default sizing: 8 thread rings of 4096 spans each.
    pub fn new(sampler: Sampler) -> Tracer {
        Tracer::with_capacity(sampler, 8, 4_096)
    }

    /// Explicit sizing (both rounded up to powers of two).
    pub fn with_capacity(sampler: Sampler, rings: usize, ring_capacity: usize) -> Tracer {
        let n = rings.max(1).next_power_of_two();
        Tracer {
            sampler,
            force_sampling: AtomicBool::new(false),
            rings: (0..n).map(|_| SpanRing::new(ring_capacity)).collect(),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            traces_sampled: AtomicU64::new(0),
            spans_recorded: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// The configured head sampler.
    pub fn sampler(&self) -> Sampler {
        self.sampler
    }

    /// Whether tracing is enabled at all.
    pub fn is_enabled(&self) -> bool {
        self.sampler.is_enabled()
    }

    /// Override head sampling: while set, every context is sampled
    /// (1-in-1), regardless of the configured sampler.  Replay flips this
    /// on to capture full traces for a window originally recorded at
    /// 1-in-N.  Has no effect when tracing is off entirely.
    pub fn set_force_sampling(&self, force: bool) {
        self.force_sampling.store(force, Ordering::Relaxed);
    }

    /// Whether the 1-in-1 sampling override is active.
    pub fn force_sampling(&self) -> bool {
        self.force_sampling.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this tracer's epoch (the span clock).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn ring(&self) -> &SpanRing {
        let slot = THREAD_SLOT.with(|s| *s);
        &self.rings[slot & (self.rings.len() - 1)]
    }

    fn alloc_span_id(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed))
    }

    /// A context for the datum with head sequence number `seq` (frame
    /// number, query number).  `None` when tracing is off; otherwise the
    /// context carries a fresh trace id and the sampler's decision.
    pub fn context_for(&self, seq: u64) -> Option<TraceContext> {
        if !self.sampler.is_enabled() {
            return None;
        }
        let sampled = self.force_sampling.load(Ordering::Relaxed) || self.sampler.decide(seq);
        if sampled {
            self.traces_sampled.fetch_add(1, Ordering::Relaxed);
        }
        let id = TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed));
        Some(TraceContext::root(id, sampled))
    }

    /// A context that records unconditionally (examples, debugging).
    pub fn context_always(&self) -> Option<TraceContext> {
        if !self.sampler.is_enabled() {
            return None;
        }
        self.traces_sampled.fetch_add(1, Ordering::Relaxed);
        let id = TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed));
        Some(TraceContext::root(id, true))
    }

    /// Open a span under `ctx` (as child of `ctx.span_id`).  For an
    /// unsampled context the guard is inert: it records nothing and its
    /// [`SpanGuard::context`] keeps the parent's span id, so any drop
    /// recorded downstream still parents correctly.
    pub fn span(&self, ctx: &TraceContext, stage: Stage) -> SpanGuard<'_> {
        let span_id = if ctx.sampled { self.alloc_span_id() } else { SpanId::NONE };
        SpanGuard {
            tracer: self,
            trace_id: ctx.trace_id,
            span_id,
            parent: ctx.span_id,
            stage,
            sampled: ctx.sampled,
            start_ns: if ctx.sampled { self.now_ns() } else { 0 },
            note: String::new(),
            finished: false,
        }
    }

    /// Record a loss with full provenance, **regardless of sampling** —
    /// every dropped datum gets a trace explaining which stage lost it
    /// and why.  `note` names the victim (topic, subscriber, principal).
    pub fn record_drop(&self, ctx: &TraceContext, stage: Stage, reason: DropReason, note: &str) {
        let now = self.now_ns();
        self.record(SpanRecord {
            trace_id: ctx.trace_id,
            span_id: self.alloc_span_id(),
            parent: ctx.span_id,
            stage,
            start_ns: now,
            end_ns: now,
            status: SpanStatus::Dropped(reason),
            note: note.to_owned(),
        });
    }

    /// Low-level: push a finished span into this thread's ring.
    pub fn record(&self, span: SpanRecord) {
        if self.ring().push(span) {
            self.spans_recorded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drain every ring into one batch (the per-tick assembly step).
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for ring in self.rings.iter() {
            ring.drain_into(&mut out);
        }
        out
    }

    /// Recording statistics.
    pub fn stats(&self) -> TracerStats {
        TracerStats {
            traces_sampled: self.traces_sampled.load(Ordering::Relaxed),
            spans_recorded: self.spans_recorded.load(Ordering::Relaxed),
            spans_rejected: self.rings.iter().map(|r| r.rejected()).sum(),
        }
    }
}

/// An open span: records on [`SpanGuard::finish`] (or drop) with status
/// `Completed`, or via [`SpanGuard::finish_dropped`] with a loss reason.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    trace_id: TraceId,
    span_id: SpanId,
    parent: SpanId,
    stage: Stage,
    sampled: bool,
    start_ns: u64,
    note: String,
    finished: bool,
}

impl SpanGuard<'_> {
    /// The context to propagate to work nested under this span.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            // Inert guards keep the parent id so provenance still chains.
            span_id: if self.sampled { self.span_id } else { self.parent },
            sampled: self.sampled,
        }
    }

    /// This span's id (`SpanId::NONE` when the guard is inert).
    pub fn span_id(&self) -> SpanId {
        self.span_id
    }

    /// Attach free-form detail to the span.
    pub fn set_note(&mut self, note: impl Into<String>) {
        if self.sampled {
            self.note = note.into();
        }
    }

    /// Close the span as completed, returning its duration in
    /// nanoseconds (0 for inert guards).
    pub fn finish(mut self) -> u64 {
        self.close(SpanStatus::Completed)
    }

    /// Close the span as a loss.  Unlike ordinary completion this records
    /// even for unsampled contexts — drops always get provenance.
    pub fn finish_dropped(mut self, reason: DropReason) {
        if !self.sampled {
            let ctx =
                TraceContext { trace_id: self.trace_id, span_id: self.parent, sampled: false };
            let note = std::mem::take(&mut self.note);
            self.finished = true;
            self.tracer.record_drop(&ctx, self.stage, reason, &note);
            return;
        }
        self.close(SpanStatus::Dropped(reason));
    }

    fn close(&mut self, status: SpanStatus) -> u64 {
        if self.finished {
            return 0;
        }
        self.finished = true;
        if !self.sampled {
            return 0;
        }
        let end_ns = self.tracer.now_ns();
        self.tracer.record(SpanRecord {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent: self.parent,
            stage: self.stage,
            start_ns: self.start_ns,
            end_ns,
            status,
            note: std::mem::take(&mut self.note),
        });
        end_ns.saturating_sub(self.start_ns)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.close(SpanStatus::Completed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_allocates_nothing() {
        let t = Tracer::new(Sampler::off());
        assert!(t.context_for(0).is_none());
        assert!(t.context_always().is_none());
        assert!(t.drain().is_empty());
    }

    #[test]
    fn sampled_spans_chain_parent_child() {
        let t = Tracer::new(Sampler::always());
        let ctx = t.context_for(0).unwrap();
        assert!(ctx.sampled);
        let root = t.span(&ctx, Stage::Tick);
        let rctx = root.context();
        let child = t.span(&rctx, Stage::Collect);
        let child_id = child.span_id();
        drop(child);
        let root_id = root.span_id();
        drop(root);
        let spans = t.drain();
        assert_eq!(spans.len(), 2);
        let c = spans.iter().find(|s| s.span_id == child_id).unwrap();
        let r = spans.iter().find(|s| s.span_id == root_id).unwrap();
        assert_eq!(c.parent, root_id);
        assert_eq!(r.parent, SpanId::NONE);
        assert_eq!(c.trace_id, r.trace_id);
        assert!(c.start_ns >= r.start_ns);
    }

    #[test]
    fn unsampled_context_records_only_drops() {
        let t = Tracer::new(Sampler::one_in(u64::MAX));
        let ctx = t.context_for(1).unwrap();
        assert!(!ctx.sampled);
        {
            let root = t.span(&ctx, Stage::Tick);
            let _inner = t.span(&root.context(), Stage::Collect);
        }
        assert!(t.drain().is_empty(), "ordinary spans skipped");
        t.record_drop(&ctx, Stage::Transport, DropReason::QueueFull, "metrics/frame");
        let spans = t.drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].status, SpanStatus::Dropped(DropReason::QueueFull));
        assert_eq!(spans[0].trace_id, ctx.trace_id);
        assert_eq!(spans[0].note, "metrics/frame");
    }

    #[test]
    fn guard_finish_dropped_records_even_unsampled() {
        let t = Tracer::new(Sampler::one_in(u64::MAX));
        let ctx = t.context_for(1).unwrap();
        let guard = t.span(&ctx, Stage::Gateway);
        guard.finish_dropped(DropReason::DeadlineShed);
        let spans = t.drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].status, SpanStatus::Dropped(DropReason::DeadlineShed));
        assert_eq!(spans[0].stage, Stage::Gateway);
    }

    #[test]
    fn stats_count_traces_and_spans() {
        let t = Tracer::new(Sampler::always());
        let ctx = t.context_for(0).unwrap();
        t.span(&ctx, Stage::Tick).finish();
        let stats = t.stats();
        assert_eq!(stats.traces_sampled, 1);
        assert_eq!(stats.spans_recorded, 1);
        assert_eq!(stats.spans_rejected, 0);
    }

    #[test]
    fn spans_from_multiple_threads_all_drain() {
        let t = std::sync::Arc::new(Tracer::new(Sampler::always()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let ctx = t.context_for(i).unwrap();
                    t.span(&ctx, Stage::Gateway).finish();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.drain().len(), 200);
    }
}
