//! Span records: what happened to a datum at one pipeline stage.

use crate::context::{SpanId, TraceId};
use serde::{Deserialize, Serialize};

/// The pipeline stage a span describes.  A closed set, mirroring the
/// tick-loop order, so renderers can color and sort without a registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// The whole tick (root span of a frame trace).
    Tick,
    /// Synchronized collection into the frame.
    Collect,
    /// Broker publish / fan-out.
    Transport,
    /// Store ingest off the broker.
    Store,
    /// Streaming analysis over the fresh frame and logs.
    Analysis,
    /// Response routing and actuation.
    Response,
    /// Gateway query serving (root span of a query trace).
    Gateway,
    /// Federation plane: WAN rollup delivery and scatter-gather merging.
    Federation,
}

impl Stage {
    /// Stable lowercase name (metric/label friendly).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Tick => "tick",
            Stage::Collect => "collect",
            Stage::Transport => "transport",
            Stage::Store => "store",
            Stage::Analysis => "analysis",
            Stage::Response => "response",
            Stage::Gateway => "gateway",
            Stage::Federation => "federation",
        }
    }
}

/// Why a datum was lost.  Mirrors the broker's backpressure policies and
/// the gateway's admission decisions — the full set of places this system
/// deliberately sheds load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropReason {
    /// `DropNewest` subscriber queue was full; the new message was lost.
    QueueFull,
    /// `DropOldest` subscriber queue was full; the oldest message was lost.
    DropOldest,
    /// The subscriber disconnected; the delivery went nowhere.
    PrunedReceiver,
    /// A gateway query's deadline budget expired before evaluation.
    DeadlineShed,
    /// A gateway principal exceeded its token-bucket rate limit.
    RateLimited,
    /// The gateway admission queue was full even after shedding.
    AdmissionFull,
    /// The envelope failed to decode (truncated or bit-flipped payload)
    /// and was skipped at ingest.
    CorruptEnvelope,
    /// The ingest spill queue overflowed; the oldest spilled frame was
    /// evicted (drop-oldest).
    SpillOverflow,
    /// A federated scatter skipped a site whose WAN link was partitioned.
    WanPartition,
    /// A WAN link's in-transit backlog overflowed; the oldest queued
    /// rollup batch was evicted (drop-oldest).
    WanBacklogOverflow,
}

impl DropReason {
    /// Stable lowercase name (metric/label friendly).
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::QueueFull => "queue_full",
            DropReason::DropOldest => "drop_oldest",
            DropReason::PrunedReceiver => "pruned_receiver",
            DropReason::DeadlineShed => "deadline_shed",
            DropReason::RateLimited => "rate_limited",
            DropReason::AdmissionFull => "admission_full",
            DropReason::CorruptEnvelope => "corrupt_envelope",
            DropReason::SpillOverflow => "spill_overflow",
            DropReason::WanPartition => "wan_partition",
            DropReason::WanBacklogOverflow => "wan_backlog_overflow",
        }
    }
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanStatus {
    /// The stage completed and handed the datum onward.
    Completed,
    /// The datum was lost at this stage for the given reason.
    Dropped(DropReason),
}

impl SpanStatus {
    /// The drop reason, if this span records a loss.
    pub fn drop_reason(self) -> Option<DropReason> {
        match self {
            SpanStatus::Completed => None,
            SpanStatus::Dropped(r) => Some(r),
        }
    }
}

/// One recorded span: a stage's view of one datum.
///
/// Timestamps are nanoseconds since the owning [`crate::Tracer`]'s epoch
/// (monotonic, process-local) — cheap to take and directly comparable
/// across spans of the same process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: TraceId,
    /// This span's id.
    pub span_id: SpanId,
    /// Parent span (`SpanId::NONE` for the trace root).
    pub parent: SpanId,
    /// The pipeline stage.
    pub stage: Stage,
    /// Start, nanoseconds since tracer epoch.
    pub start_ns: u64,
    /// End, nanoseconds since tracer epoch.
    pub end_ns: u64,
    /// Completed or dropped-with-reason.
    pub status: SpanStatus,
    /// Free-form detail: topic, subscriber pattern, query kind, ...
    pub note: String,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Whether this span records a loss.
    pub fn is_drop(&self) -> bool {
        matches!(self.status, SpanStatus::Dropped(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_serde_round_trips() {
        let span = SpanRecord {
            trace_id: TraceId(5),
            span_id: SpanId(2),
            parent: SpanId(1),
            stage: Stage::Transport,
            start_ns: 100,
            end_ns: 250,
            status: SpanStatus::Dropped(DropReason::QueueFull),
            note: "metrics/frame".into(),
        };
        let s = serde_json::to_string(&span).unwrap();
        let back: SpanRecord = serde_json::from_str(&s).unwrap();
        assert_eq!(span, back);
        assert_eq!(back.duration_ns(), 150);
        assert!(back.is_drop());
        assert_eq!(back.status.drop_reason(), Some(DropReason::QueueFull));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Stage::Gateway.as_str(), "gateway");
        assert_eq!(DropReason::DeadlineShed.as_str(), "deadline_shed");
        assert_eq!(DropReason::CorruptEnvelope.as_str(), "corrupt_envelope");
        assert_eq!(DropReason::SpillOverflow.as_str(), "spill_overflow");
        assert_eq!(Stage::Federation.as_str(), "federation");
        assert_eq!(DropReason::WanPartition.as_str(), "wan_partition");
        assert_eq!(DropReason::WanBacklogOverflow.as_str(), "wan_backlog_overflow");
    }
}
