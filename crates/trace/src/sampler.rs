//! Head sampling: decide once, at the head of the pipeline, whether a
//! datum records spans.
//!
//! The decision is a hash of the datum's sequence number — deterministic
//! (the same run samples the same frames, preserving the simulator's
//! end-to-end reproducibility) and uniform (a 1/64 rate samples ~1/64 of
//! frames regardless of arrival pattern, unlike `seq % 64 == 0` which
//! aliases against any periodic workload).
//!
//! Sampling here governs only *ordinary* spans.  Drop and shed spans are
//! recorded unconditionally by the [`crate::Tracer`]: losing a datum is
//! always worth a trace, which is how every lost frame gets provenance
//! even at sparse sampling rates.

use serde::{Deserialize, Serialize};

/// Finalizer from splitmix64: a cheap, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The head-sampling policy: off, always, or one-in-N.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sampler {
    /// 0 = tracing disabled entirely; 1 = every datum; N = ~1/N of data.
    denom: u64,
}

impl Sampler {
    /// Tracing disabled: no contexts are allocated, nothing is stamped.
    pub fn off() -> Sampler {
        Sampler { denom: 0 }
    }

    /// Sample every datum (examples, debugging; too hot for production).
    pub fn always() -> Sampler {
        Sampler { denom: 1 }
    }

    /// Sample roughly one datum in `n` (`n >= 1`).
    pub fn one_in(n: u64) -> Sampler {
        assert!(n >= 1, "sampling denominator must be at least 1");
        Sampler { denom: n }
    }

    /// Whether tracing is enabled at all (drop provenance included).
    pub fn is_enabled(&self) -> bool {
        self.denom != 0
    }

    /// The sampling decision for sequence number `seq`.
    pub fn decide(&self, seq: u64) -> bool {
        match self.denom {
            0 => false,
            1 => true,
            n => splitmix64(seq).is_multiple_of(n),
        }
    }

    /// The configured denominator (0 = off).
    pub fn denominator(&self) -> u64 {
        self.denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_and_always() {
        assert!(!Sampler::off().is_enabled());
        assert!(!Sampler::off().decide(3));
        assert!(Sampler::always().decide(3));
        assert!(Sampler::always().is_enabled());
    }

    #[test]
    fn one_in_n_is_deterministic_and_roughly_uniform() {
        let s = Sampler::one_in(64);
        let hits: Vec<u64> = (0..64_000).filter(|&i| s.decide(i)).collect();
        // Deterministic: same decisions on a second pass.
        let again: Vec<u64> = (0..64_000).filter(|&i| s.decide(i)).collect();
        assert_eq!(hits, again);
        // Uniform-ish: 1000 expected, generous tolerance.
        assert!((700..1_300).contains(&hits.len()), "{} sampled", hits.len());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_denominator_rejected() {
        Sampler::one_in(0);
    }
}
