//! Serializable site configuration.
//!
//! Table I: "Reporting and alerting capabilities should be easily
//! configurable."  A [`MonitorConfig`] is the whole deployment — machine
//! shape, collection cadence, correlation rules, response rules, retention
//! — as one JSON document a site can version-control and share, the same
//! way the paper's sites share Grafana dashboard configs.
//!
//! Streaming detector attachments are code (they hold `Box<dyn Detector>`
//! state machines), so they remain builder-level; everything declarative
//! lives here.

use crate::system::{MonitorBuilder, MonitoringSystem};
use hpcmon_analysis::{Correlator, Rule};
use hpcmon_response::{ResponseEngine, ResponseRule};
use hpcmon_sim::SimConfig;
use hpcmon_store::RetentionPolicy;
use serde::{Deserialize, Serialize};

/// A complete, shareable monitoring deployment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// The machine (or the simulator standing in for it).
    pub sim: SimConfig,
    /// Benchmark-suite cadence in ticks (`None` disables).
    pub bench_every_ticks: Option<u64>,
    /// Whether active probes run.
    pub probes: bool,
    /// Log correlation rules.
    pub correlator_rules: Vec<Rule>,
    /// Response rules.
    pub response_rules: Vec<ResponseRule>,
    /// Log-novelty training window, ticks.
    pub novelty_training_ticks: u64,
    /// Retention policy and its enforcement cadence in ticks.
    pub retention: Option<(RetentionPolicy, u64)>,
}

impl MonitorConfig {
    /// The default production-flavored deployment on a small machine.
    pub fn default_site() -> MonitorConfig {
        MonitorConfig {
            sim: SimConfig::small(),
            bench_every_ticks: Some(10),
            probes: true,
            correlator_rules: Correlator::production_rules(),
            response_rules: ResponseEngine::production_rules(),
            novelty_training_ticks: 30,
            retention: Some((RetentionPolicy::week_performant(), 60)),
        }
    }

    /// Serialize for sharing/versioning.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config is serializable")
    }

    /// Load a shared config.
    pub fn from_json(json: &str) -> Result<MonitorConfig, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Turn into a builder (attach code-level detectors afterwards).
    pub fn into_builder(self) -> MonitorBuilder {
        let mut b = MonitoringSystem::builder(self.sim)
            .bench_suite_every(self.bench_every_ticks)
            .with_probes(self.probes)
            .correlator_rules(self.correlator_rules)
            .response_rules(self.response_rules)
            .novelty_training_ticks(self.novelty_training_ticks);
        if let Some((policy, every)) = self.retention {
            b = b.retention(policy, every);
        }
        b
    }

    /// Build the system directly.
    pub fn build(self) -> MonitoringSystem {
        self.into_builder().build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let cfg = MonitorConfig::default_site();
        let json = cfg.to_json();
        let back = MonitorConfig::from_json(&json).unwrap();
        assert_eq!(cfg, back);
        assert!(MonitorConfig::from_json("{nope").is_err());
    }

    #[test]
    fn config_builds_a_working_system() {
        let mut mon = MonitorConfig::default_site().build();
        let r = mon.run_ticks(2);
        assert!(r.samples > 1_000);
    }

    #[test]
    fn edited_config_changes_behavior() {
        // A site that disables probes and the bench suite collects less.
        let mut quiet = MonitorConfig::default_site();
        quiet.probes = false;
        quiet.bench_every_ticks = None;
        let mut lean = quiet.build();
        let mut full = MonitorConfig::default_site().build();
        let lean_samples = lean.run_ticks(10).samples;
        let full_samples = full.run_ticks(10).samples;
        assert!(lean_samples < full_samples);
    }

    #[test]
    fn rules_survive_the_trip_as_config_not_code() {
        let cfg = MonitorConfig::default_site();
        let json = cfg.to_json();
        assert!(json.contains("node-heartbeat-lost"), "rules are data");
        assert!(json.contains("ops-pager"));
        assert!(json.contains("keep_performant_ms"));
    }
}
