//! Crash durability hooks on the assembled system (DESIGN.md §15).
//!
//! With a [`hpcmon_durability::DurabilityPlane`] attached
//! ([`super::MonitorBuilder::durability`]), every tick ends by appending
//! one [`DurableTickRecord`] — the tick's external inputs, its state hash
//! when the flight recorder is on, and the collected frame's samples — to
//! a segmented, CRC-framed write-ahead log, synced per the configured
//! [`hpcmon_durability::SyncPolicy`].  On the checkpoint cadence the full
//! [`super::CoreSnapshot`] is written (temp + rename, CRC-framed) and the
//! log rotates.
//!
//! [`MonitoringSystem::recover_from_medium`] is the other half: after a
//! crash, a *freshly built* system (same configuration) restores the
//! newest valid checkpoint, replays the WAL tail through the ordinary
//! [`MonitoringSystem::apply_tick_inputs`] + [`MonitoringSystem::tick`]
//! path, and — when state hashing is enabled — verifies each replayed
//! tick against the hash the crashed run recorded.  Recovery is
//! fail-closed and never panics on damaged media: torn tails are
//! truncated at the last valid CRC, mid-log corruption stops the replay
//! at the first bad record, and everything dropped is counted in the
//! returned [`RecoveryOutcome`].

use super::state::{TickInputs, TickStateHash};
use super::MonitoringSystem;
use hpcmon_durability::{DurabilityConfig, DurabilityPlane, RecoveryReport, StorageMedium};
use hpcmon_metrics::ColumnFrame;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Everything one tick appends to the write-ahead log.  The JSON head
/// (inputs + expected hash) is what replay needs; the binary sample
/// section makes the collected data itself durable — after a crash the
/// raw samples of every logged tick are still readable straight off the
/// medium, replayer or not.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DurableTickRecord {
    /// The tick this record captures.
    pub tick: u64,
    /// External inputs applied before this tick ran.
    pub inputs: TickInputs,
    /// The flight recorder's hash after this tick (`None` with hashing
    /// off); recovery verifies the replayed tick against it.
    pub hash: Option<TickStateHash>,
}

/// One sample from the binary section of a durable tick record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DurableSample {
    /// Metric id (dense registry index).
    pub metric: u32,
    /// Component kind discriminant.
    pub kind: u8,
    /// Component index.
    pub index: u32,
    /// Sample timestamp, ms.
    pub stamp: u64,
    /// Sample value.
    pub value: f64,
}

/// Bytes per sample in the binary section: metric u32 + kind u8 +
/// index u32 + stamp u64 + value f64, all little-endian.
pub const SAMPLE_LEN: usize = 4 + 1 + 4 + 8 + 8;

/// Encode a tick record as `[u32 json_len][json][u64 n][n × 25B samples]`.
pub fn encode_tick_record(record: &DurableTickRecord, frame: &ColumnFrame) -> Vec<u8> {
    let json = serde_json::to_vec(record).expect("DurableTickRecord serializes");
    let mut out = Vec::with_capacity(4 + json.len() + 8 + frame.len() * SAMPLE_LEN);
    out.extend_from_slice(&(json.len() as u32).to_le_bytes());
    out.extend_from_slice(&json);
    out.extend_from_slice(&(frame.len() as u64).to_le_bytes());
    for ((key, stamp), value) in frame.keys.iter().zip(&frame.stamps).zip(&frame.values) {
        // One 25-byte write per sample: at production scale this loop
        // runs ~100k times per tick, and per-field extends dominate it.
        let mut s = [0u8; SAMPLE_LEN];
        s[0..4].copy_from_slice(&key.metric.0.to_le_bytes());
        s[4] = key.comp.kind as u8;
        s[5..9].copy_from_slice(&key.comp.index.to_le_bytes());
        s[9..17].copy_from_slice(&stamp.0.to_le_bytes());
        s[17..25].copy_from_slice(&value.to_le_bytes());
        out.extend_from_slice(&s);
    }
    out
}

/// Decode a tick record's JSON head and binary sample section.  `None` on
/// any structural damage (recovery counts it and moves on — the WAL layer
/// has already CRC-checked the payload, so a decode failure here means
/// schema skew, not bit rot).
pub fn decode_tick_record(bytes: &[u8]) -> Option<(DurableTickRecord, Vec<DurableSample>)> {
    let json_len = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
    let json = bytes.get(4..4 + json_len)?;
    let record: DurableTickRecord = serde_json::from_slice(json).ok()?;
    let mut off = 4 + json_len;
    let n = u64::from_le_bytes(bytes.get(off..off + 8)?.try_into().ok()?) as usize;
    off += 8;
    if bytes.len() != off + n * SAMPLE_LEN {
        return None;
    }
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let s = &bytes[off..off + SAMPLE_LEN];
        samples.push(DurableSample {
            metric: u32::from_le_bytes(s[0..4].try_into().unwrap()),
            kind: s[4],
            index: u32::from_le_bytes(s[5..9].try_into().unwrap()),
            stamp: u64::from_le_bytes(s[9..17].try_into().unwrap()),
            value: f64::from_le_bytes(s[17..25].try_into().unwrap()),
        });
        off += SAMPLE_LEN;
    }
    Some((record, samples))
}

/// What [`MonitoringSystem::recover_from_medium`] did: the storage-layer
/// scan report plus the replay's verdict.  `Serialize` so crash harnesses
/// can diff outcomes as JSON.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RecoveryOutcome {
    /// The durability plane's scan report (segments, torn bytes,
    /// corruption events, records dropped).
    pub report: RecoveryReport,
    /// Tick of the checkpoint the recovery restored from, if any.
    pub checkpoint_tick: Option<u64>,
    /// WAL-tail ticks replayed after the checkpoint.
    pub replayed_ticks: u64,
    /// The tick count the system resumed at.
    pub resumed_tick: u64,
    /// Replayed ticks whose state hash differed from the recorded one
    /// (always 0 for an honest medium; requires hashing enabled on both
    /// the recording and the recovering system).
    pub hash_mismatches: u64,
    /// First tick whose hash mismatched, if any.
    pub first_mismatch_tick: Option<u64>,
    /// Records whose payload passed the WAL CRC but failed tick-record
    /// decoding (schema skew) — skipped, never fatal.
    pub undecodable_records: u64,
    /// Whether a CRC-valid checkpoint failed `CoreSnapshot` decoding; the
    /// WAL tail cannot replay against unknown state, so recovery resumed
    /// fresh and counted every tail record as dropped.
    pub checkpoint_undecodable: bool,
}

impl MonitoringSystem {
    /// Recover this system's state from a crashed run's storage medium:
    /// restore the newest valid checkpoint, replay the WAL tail through
    /// the ordinary input/tick path, then attach a durability plane over
    /// the medium (resealed with a fresh checkpoint) so the run continues
    /// journaling from where it resumed.
    ///
    /// The system must be freshly built from the same configuration as
    /// the crashed run (same collectors, detectors, chaos plan, worker
    /// topology), with no ticks run yet.  Enable
    /// [`MonitoringSystem::set_state_hashing`] first to have every
    /// replayed tick verified against the recorded hash chain.
    ///
    /// Never panics on damaged media: torn tails, corrupt records, and
    /// undecodable payloads are counted in the returned
    /// [`RecoveryOutcome`] and the replay stops at the first bad record.
    pub fn recover_from_medium(
        &mut self,
        medium: Arc<dyn StorageMedium>,
        cfg: DurabilityConfig,
    ) -> RecoveryOutcome {
        assert!(
            self.durability.is_none(),
            "recover_from_medium: a durability plane is already attached"
        );
        let (mut plane, state) = DurabilityPlane::recover(medium, cfg);
        let mut outcome = RecoveryOutcome {
            report: state.report,
            checkpoint_tick: state.checkpoint.as_ref().map(|(t, _)| *t),
            ..RecoveryOutcome::default()
        };
        let mut replay_tail = true;
        if let Some((_, payload)) = &state.checkpoint {
            match serde_json::from_slice::<super::CoreSnapshot>(payload) {
                Ok(snap) => self.restore_snapshot(snap),
                Err(_) => {
                    // CRC-valid bytes that are not a CoreSnapshot: schema
                    // skew.  The tail was logged against state we cannot
                    // reconstruct, so fail closed — resume fresh rather
                    // than replay inputs against the wrong baseline.
                    outcome.checkpoint_undecodable = true;
                    outcome.checkpoint_tick = None;
                    outcome.report.records_dropped += state.records.len() as u64;
                    replay_tail = false;
                }
            }
        }
        if replay_tail {
            for rec in &state.records {
                let Some((dtr, _)) = decode_tick_record(&rec.payload) else {
                    outcome.undecodable_records += 1;
                    continue;
                };
                self.apply_tick_inputs(&dtr.inputs);
                self.tick();
                outcome.replayed_ticks += 1;
                if let (Some(expect), Some(got)) = (dtr.hash, self.last_state_hash) {
                    if got.combined != expect.combined {
                        outcome.hash_mismatches += 1;
                        if outcome.first_mismatch_tick.is_none() {
                            outcome.first_mismatch_tick = Some(dtr.tick);
                        }
                    }
                }
            }
        }
        let resumed = self.engine.tick_count();
        outcome.resumed_tick = resumed;
        // Reseal: checkpoint the recovered state so the next crash
        // restores from here instead of re-replaying this whole tail.
        let snap = serde_json::to_vec(&self.snapshot()).expect("CoreSnapshot serializes");
        let _ = plane.checkpoint(resumed, &snap);
        self.pending_inputs = TickInputs::default();
        self.durability = Some(plane);
        outcome
    }

    /// The attached durability plane, if one was configured.
    pub fn durability_plane(&self) -> Option<&DurabilityPlane> {
        self.durability.as_ref()
    }

    /// Lifetime durability counters (`None` when no plane is attached).
    pub fn durability_counts(&self) -> Option<hpcmon_durability::DurabilityCounts> {
        self.durability.as_ref().map(|p| p.counts())
    }

    /// End-of-tick durability hook, called from `tick()` when a plane is
    /// attached: append this tick's record, sync per policy, checkpoint +
    /// rotate and advance the scrub on their cadences, and republish the
    /// plane's counters as `durability.*` telemetry.
    pub(super) fn finish_tick_durability(&mut self, frame: &Arc<ColumnFrame>) {
        // take/put-back: `self.snapshot()` below needs `&self` while the
        // plane needs `&mut`.
        let Some(mut plane) = self.durability.take() else { return };
        let tick_no = self.engine.tick_count();
        let record = DurableTickRecord {
            tick: tick_no,
            inputs: std::mem::take(&mut self.pending_inputs),
            hash: self.last_state_hash.filter(|h| h.tick == tick_no),
        };
        let payload = encode_tick_record(&record, frame);
        plane.append_tick(tick_no, &payload);
        plane.end_tick(tick_no);
        let cfg = plane.config();
        if cfg.checkpoint_every > 0 && tick_no.is_multiple_of(cfg.checkpoint_every) {
            let snap = serde_json::to_vec(&self.snapshot()).expect("CoreSnapshot serializes");
            let _ = plane.checkpoint(tick_no, &snap);
        }
        if cfg.scrub_every > 0 && tick_no.is_multiple_of(cfg.scrub_every) {
            let _ = plane.scrub_step();
        }
        self.instruments.sync_durability(plane.counts(), plane.backlog_len());
        self.durability = Some(plane);
    }
}
