//! Flight-recorder hooks on the assembled system (DESIGN.md §11).
//!
//! Three capabilities turn a [`MonitoringSystem`] run into a replayable
//! artifact:
//!
//! * **Explicit tick inputs** — [`TickInputs`] names every external,
//!   non-deterministic input a tick can receive (job submissions, machine
//!   fault injections, gateway query/subscription arrivals).  A recorder
//!   funnels user calls through [`MonitoringSystem::apply_tick_inputs`]
//!   and writes the same value to its event log; replay applies the logged
//!   inputs instead.
//! * **Per-tick state hashing** — with
//!   [`MonitoringSystem::set_state_hashing`] enabled, every tick folds
//!   each subsystem's deterministic observables into a [`TickStateHash`].
//!   Replay verifies the hash chain tick by tick; the per-subsystem
//!   sub-hashes let a divergence report name *which* layer diverged first.
//!   With hashing off the pipeline is bit-identical to the unhashed build.
//! * **Snapshots** — [`MonitoringSystem::snapshot`] serializes the full
//!   deterministic state (machine, store tiers, chaos, supervisor,
//!   breaker spill, analysis state) so replay can seek to tick T without
//!   re-running from 0; [`MonitoringSystem::restore_snapshot`] loads it
//!   back in place, keeping every shared handle (gateway, self-collector)
//!   valid.
//!
//! Deliberately **outside** the hash and the snapshot: the log store, the
//! archive, traces, and telemetry timer values — all either derived from
//! hashed state or wall-clock-dependent observability that must be free to
//! differ between a recording and its replay (replay may force 1-in-1
//! trace sampling).  The chaos corruption predicate is computed over a
//! trace-stripped canonical encoding for the same reason (see
//! `MonitoringSystem::tick`).

use super::MonitoringSystem;
use hpcmon_analysis::{CorrelatorSnapshot, Deadman, NoveltyDetector};
use hpcmon_chaos::{
    BreakerSnapshot, ChaosEngine, ChaosSnapshot, CollectorSupervisor, IngestBreaker,
    SupervisorSnapshot,
};
use hpcmon_gateway::{GatewaySnapshot, QueryRequest};
use hpcmon_health::HealthSnapshot;
use hpcmon_metrics::{ColumnFrame, FrameCoverage, MetricId, StateHash, Ts};
use hpcmon_response::{Consumer, ResponseSnapshot};
use hpcmon_sim::{FaultKind, JobSpec, SimEngine, SimSnapshot};
use hpcmon_store::StoreSnapshot;
use hpcmon_transport::Payload;
use serde::{Deserialize, Serialize, Value};

/// Every external input one tick can receive.  A tick driven from an
/// empty `TickInputs` is fully determined by the system's current state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TickInputs {
    /// Jobs submitted before this tick runs.
    pub jobs: Vec<JobSpec>,
    /// Machine fault injections scheduled before this tick runs.
    pub faults: Vec<(Ts, FaultKind)>,
    /// Gateway arrivals (queries and standing-subscription registrations)
    /// issued before this tick runs.
    pub gateway_ops: Vec<GatewayOp>,
}

impl TickInputs {
    /// Whether this tick received no external input at all.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty() && self.faults.is_empty() && self.gateway_ops.is_empty()
    }
}

/// One recorded gateway arrival.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GatewayOp {
    /// A one-shot query.  The response is not recorded: query results
    /// never feed back into monitored state, but the arrival itself must
    /// replay so gateway-side accounting stays aligned.
    Query {
        /// Who asked.
        consumer: Consumer,
        /// What they asked.
        request: QueryRequest,
    },
    /// A standing-subscription registration.  Subscriptions *do* publish
    /// onto the broker every tick they deliver, which advances the broker
    /// sequence, so they must replay to keep corruption draws aligned.
    Subscribe {
        /// Who subscribed.
        consumer: Consumer,
        /// The re-evaluated request.
        request: QueryRequest,
        /// Topic updates are published on.
        topic: String,
    },
}

/// The per-tick state hash: one digest per subsystem plus the combined
/// chain value published as `hpcmon.self.replay.state_hash` and written to
/// the flight-recorder log.  On divergence, comparing sub-hashes names the
/// first subsystem whose state differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickStateHash {
    /// Tick number the hash was computed after.
    pub tick: u64,
    /// Simulated machine (nodes, scheduler, network, filesystem, RNGs).
    pub sim: u64,
    /// This tick's collection frame, excluding `hpcmon.self.*` samples
    /// (their values carry wall-clock timer readings).
    pub frame: u64,
    /// Time-series store counters (epoch, occupancy, op counts).
    pub store: u64,
    /// Pipeline plumbing: broker sequence, stall buffer, coverage
    /// bookkeeping, collector/bench RNGs, supervisor and breaker state.
    pub pipeline: u64,
    /// Analysis state: attached detectors, correlator, deadman, novelty,
    /// response engine.
    pub analysis: u64,
    /// Chaos engine schedule and counts (0 when chaos is off).
    pub chaos: u64,
    /// Gateway deterministic observables: scope-epoch version and standing
    /// subscription count (0 when no gateway is configured).
    pub gateway: u64,
    /// Fold of all of the above — the value the replay verifier compares.
    pub combined: u64,
}

/// Names for the sub-hash fields, in comparison order — divergence
/// reports use these to say which subsystem diverged first.
pub const SUBSYSTEMS: [&str; 8] =
    ["sim", "frame", "store", "pipeline", "analysis", "chaos", "gateway", "combined"];

impl TickStateHash {
    /// The first sub-hash (by [`SUBSYSTEMS`] order) where `self` and
    /// `other` differ, or `None` when the hashes match entirely.
    pub fn first_divergence(&self, other: &TickStateHash) -> Option<&'static str> {
        let a = [
            self.sim,
            self.frame,
            self.store,
            self.pipeline,
            self.analysis,
            self.chaos,
            self.gateway,
            self.combined,
        ];
        let b = [
            other.sim,
            other.frame,
            other.store,
            other.pipeline,
            other.analysis,
            other.chaos,
            other.gateway,
            other.combined,
        ];
        a.iter().zip(b).position(|(x, y)| *x != y).map(|i| SUBSYSTEMS[i])
    }
}

/// Serialized whole-system state at a tick boundary: everything the tick
/// loop reads that [`MonitoringSystem::restore_snapshot`] must put back
/// for the continuation to be bit-identical to an uninterrupted run.
///
/// Not included (derived or observability-only, see the module docs): the
/// log store, archive, trace store, telemetry timers, the gateway's
/// result cache and worker pool, and the accumulated `signals()` journal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreSnapshot {
    tick: u64,
    sim: SimSnapshot,
    store: StoreSnapshot,
    chaos: Option<ChaosSnapshot>,
    supervisor: SupervisorSnapshot,
    breaker: BreakerSnapshot,
    // Payloads, not frames: the breaker carries columnar raw frames and
    // row-form analysis results side by side, and the snapshot must keep
    // the spill's arrival order across both forms.
    breaker_frames: Vec<Payload>,
    stalled: Vec<(String, Payload)>,
    response: ResponseSnapshot,
    correlator: CorrelatorSnapshot,
    novelty: NoveltyDetector,
    deadman: Deadman,
    detectors: Vec<Option<Value>>,
    ever_contributed: Vec<bool>,
    last_coverage: Option<FrameCoverage>,
    broker_seq: u64,
    bench_rng: u64,
    collector_rngs: Vec<Option<u64>>,
    gateway: Option<GatewaySnapshot>,
    // Serde default keeps snapshots taken before the health plane
    // loadable: absent field → health state restored as "off".
    #[serde(default)]
    health: Option<HealthSnapshot>,
}

impl CoreSnapshot {
    /// The tick count this snapshot was taken after.
    pub fn tick(&self) -> u64 {
        self.tick
    }
}

impl MonitoringSystem {
    /// Enable or disable per-tick state hashing.  Off (the default) costs
    /// one branch per tick and keeps the pipeline bit-identical to a build
    /// without the flight recorder.  On, each tick ends by computing a
    /// [`TickStateHash`] (readable via
    /// [`MonitoringSystem::last_state_hash`]) and publishing the combined
    /// value on the `replay.state_hash` gauge, which the self feed carries
    /// as `hpcmon.self.replay.state_hash`.
    ///
    /// Enable **before the first tick**: the gauge registers a metric, and
    /// metric ids must be allocated at the same point in a recording and
    /// its replay.
    pub fn set_state_hashing(&mut self, on: bool) {
        self.hashing = on;
        if on && self.replay_hash_gauge.is_none() {
            self.replay_hash_gauge = Some(self.telemetry.gauge("replay.state_hash"));
        }
    }

    /// Whether per-tick state hashing is enabled.
    pub fn state_hashing(&self) -> bool {
        self.hashing
    }

    /// The hash computed at the end of the most recent tick (`None` before
    /// the first hashed tick).
    pub fn last_state_hash(&self) -> Option<TickStateHash> {
        self.last_state_hash
    }

    /// Apply one tick's recorded external inputs: submit jobs, schedule
    /// machine faults, and re-issue gateway arrivals.  The recorder calls
    /// this for live inputs (so record and replay share one code path);
    /// the replayer calls it with inputs read from the event log.
    pub fn apply_tick_inputs(&mut self, inputs: &TickInputs) {
        // Durable runs journal the inputs so crash recovery can replay
        // them.  The engine is driven directly below (not through
        // `submit_job`/`schedule_fault`), so this is the only capture —
        // recovery's own replay arrives here with no plane attached and
        // records nothing.
        if self.durability.is_some() {
            self.pending_inputs.jobs.extend(inputs.jobs.iter().cloned());
            self.pending_inputs.faults.extend(inputs.faults.iter().cloned());
            self.pending_inputs.gateway_ops.extend(inputs.gateway_ops.iter().cloned());
        }
        for spec in &inputs.jobs {
            self.engine.submit_job(spec.clone());
        }
        for (at, kind) in &inputs.faults {
            self.engine.schedule_fault(*at, *kind);
        }
        for op in &inputs.gateway_ops {
            let Some(gw) = &self.gateway else { continue };
            match op {
                GatewayOp::Query { consumer, request } => {
                    // Result deliberately dropped: responses are
                    // timing-dependent (deadline sheds) and never feed
                    // back into hashed state.
                    let _ = gw.query(consumer, request.clone());
                }
                GatewayOp::Subscribe { consumer, request, topic } => {
                    let _ = gw.subscribe(consumer, request.clone(), topic);
                }
            }
        }
    }

    /// Capture the full deterministic state at the current tick boundary.
    /// Call between ticks only (mid-tick state is not observable anyway).
    pub fn snapshot(&self) -> CoreSnapshot {
        CoreSnapshot {
            tick: self.engine.tick_count(),
            sim: self.engine.snapshot(),
            store: self.store.snapshot(),
            chaos: self.chaos.as_ref().map(|c| c.snapshot()),
            supervisor: self.supervisor.snapshot(),
            breaker: self.breaker.control_snapshot(),
            // Spilled frames are checkpointed without their trace
            // contexts: traces are observability, not state, and replay
            // re-stamps its own.
            breaker_frames: self.breaker.spill_items().map(|(p, _)| p.clone()).collect(),
            stalled: self.stall_buffer.iter().map(|(t, p, _)| (t.clone(), p.clone())).collect(),
            response: self.response.snapshot(),
            correlator: self.correlator.snapshot(),
            novelty: self.novelty.clone(),
            deadman: self.deadman.clone(),
            detectors: self.detectors.iter().map(|a| a.detector.snapshot_state()).collect(),
            ever_contributed: self.ever_contributed.clone(),
            last_coverage: self.last_coverage,
            broker_seq: self.broker.seq(),
            bench_rng: self.bench_suite.rng_state(),
            collector_rngs: self.collectors.iter().map(|c| c.rng_state()).collect(),
            gateway: self.gateway.as_ref().map(|gw| gw.snapshot_replay_state()),
            health: self.health.as_ref().map(|h| h.snapshot()),
        }
    }

    /// Load a snapshot back into this system, in place.  The system must
    /// have been built from the same configuration that produced the
    /// snapshot (same collectors, detectors, worker topology expressible
    /// either way — shard counts and slot counts are asserted).
    ///
    /// The accumulated `signals()` journal is cleared: after a seek it
    /// would describe ticks this instance never ran.
    pub fn restore_snapshot(&mut self, snap: CoreSnapshot) {
        assert_eq!(
            snap.collector_rngs.len(),
            self.collectors.len(),
            "snapshot collector count mismatch: was the system built with the same config?"
        );
        assert_eq!(
            snap.detectors.len(),
            self.detectors.len(),
            "snapshot detector count mismatch: was the system built with the same config?"
        );
        self.engine = SimEngine::restore(snap.sim);
        self.store.load_snapshot(&snap.store);
        self.chaos = snap.chaos.map(ChaosEngine::restore);
        self.supervisor = CollectorSupervisor::restore(snap.supervisor);
        self.breaker = IngestBreaker::restore(
            snap.breaker,
            snap.breaker_frames.into_iter().map(|p| (p, None)).collect(),
        );
        self.stall_buffer = snap.stalled.into_iter().map(|(t, p)| (t, p, None)).collect();
        self.response.restore(snap.response);
        self.correlator.restore(snap.correlator);
        self.novelty = snap.novelty;
        self.deadman = snap.deadman;
        for (att, state) in self.detectors.iter_mut().zip(&snap.detectors) {
            if let Some(v) = state {
                att.detector.restore_state(v);
            }
        }
        self.ever_contributed = snap.ever_contributed;
        self.last_coverage = snap.last_coverage;
        self.broker.set_seq(snap.broker_seq);
        self.bench_suite.set_rng_state(snap.bench_rng);
        for (c, rng) in self.collectors.iter_mut().zip(&snap.collector_rngs) {
            if let Some(state) = rng {
                c.set_rng_state(*state);
            }
        }
        if let (Some(gw), Some(state)) = (&self.gateway, snap.gateway) {
            gw.restore_replay_state(state);
        }
        if let (Some(h), Some(state)) = (self.health.as_mut(), &snap.health) {
            h.restore(state);
        }
        // Broker counters are live infrastructure, not snapshotted state:
        // re-baseline so the health plane's first post-restore delta is
        // measured against this broker, not the recording run's totals.
        let bstats = self.broker.stats();
        self.health_broker_baseline = (bstats.delivered, bstats.dropped + bstats.decode_errors);
        // Anything queued from pre-restore ticks would double-deliver.
        let _ = self.store_sub.drain();
        self.signals.clear();
        self.last_state_hash = None;
        // Inputs captured for the WAL describe ticks this instance will
        // never journal (the snapshot predates them).
        self.pending_inputs = TickInputs::default();
    }

    /// End-of-tick hashing hook, called from `tick()` when hashing is on.
    pub(super) fn finish_tick_hash(&mut self, frame: &ColumnFrame) {
        let hash = self.compute_state_hash(frame);
        if let Some(g) = &self.replay_hash_gauge {
            // Lossy (f64) for the self feed; the event log keeps the
            // exact u64.  Identical in record and replay either way.
            g.set(hash.combined as f64);
        }
        self.last_state_hash = Some(hash);
    }

    fn compute_state_hash(&mut self, frame: &ColumnFrame) -> TickStateHash {
        let tick = self.engine.tick_count();
        let sim = self.engine.state_digest();
        let store = self.store.state_digest();

        self.refresh_self_metric_flags();
        let flags = &self.self_metric_flags;
        let mut fh = StateHash::new(0xF7);
        fh.u64(frame.ts.0);
        let mut hashed = 0usize;
        for ((key, stamp), &value) in frame.keys.iter().zip(&frame.stamps).zip(&frame.values) {
            if flags.get(key.metric.0 as usize).copied().unwrap_or(false) {
                continue;
            }
            hashed += 1;
            // Series key packed into one word (metric ids are dense and
            // small, component kinds are a u8, indices fit 32 bits) —
            // this loop runs over ~10^5 samples per tick on large
            // machines, so fewer absorbs is measurable.  Walking the
            // columns directly keeps it branch-light and cache-friendly.
            let packed = ((key.metric.0 as u64) << 40)
                | ((key.comp.kind as u64) << 32)
                | key.comp.index as u64;
            fh.u64(packed).u64(stamp.0).f64(value);
        }
        fh.usize(hashed);
        let frame_h = fh.finish();

        let mut ph = StateHash::new(0x7E);
        ph.u64(self.broker.seq())
            .usize(self.stall_buffer.len())
            .bools(&self.ever_contributed)
            .u64(self.last_coverage.map_or(u64::MAX, |c| c.expected))
            .u64(self.last_coverage.map_or(u64::MAX, |c| c.reported))
            .u64(self.bench_suite.rng_state())
            .u64(self.supervisor.state_digest())
            .u64(self.breaker.state_digest())
            .u64(self.health.as_ref().map_or(0, |h| h.state_digest()));
        for c in &self.collectors {
            ph.u64(c.rng_state().unwrap_or(u64::MAX));
        }
        let pipeline = ph.finish();

        let mut ah = StateHash::new(0xA0);
        ah.u64(self.correlator.state_digest())
            .u64(self.deadman.state_digest())
            .u64(self.novelty.state_digest())
            .u64(self.response.state_digest());
        for att in &self.detectors {
            ah.u64(att.detector.state_digest());
        }
        let analysis = ah.finish();

        let chaos = self.chaos.as_ref().map_or(0, |c| c.state_digest());
        let gateway = self.gateway.as_ref().map_or(0, |gw| {
            let (jobs_version, subs) = gw.replay_digest_inputs();
            StateHash::new(0x6A).u64(jobs_version).u64(subs).finish()
        });

        let combined = StateHash::new(0xFC)
            .u64(tick)
            .u64(sim)
            .u64(frame_h)
            .u64(store)
            .u64(pipeline)
            .u64(analysis)
            .u64(chaos)
            .u64(gateway)
            .finish();
        TickStateHash {
            tick,
            sim,
            frame: frame_h,
            store,
            pipeline,
            analysis,
            chaos,
            gateway,
            combined,
        }
    }

    /// Extend the positional `hpcmon.self.*` flag cache to cover every
    /// registered metric (the registry is append-only, so previously
    /// computed answers never change).  Called once per hashed tick so
    /// the per-sample check in the frame loop is a plain slice index —
    /// that loop runs over ~10^5 samples on large machines.
    fn refresh_self_metric_flags(&mut self) {
        for i in self.self_metric_flags.len()..self.registry.len() {
            let name = self.registry.name(MetricId(i as u32));
            self.self_metric_flags.push(name.starts_with("hpcmon.self."));
        }
    }
}
