//! A persistent worker pool for the hot tick stages.
//!
//! The paper's Table I demands monitoring that runs "as fast as the
//! hardware allows" on 20k+-node systems, and DCDB / the LIKWID Monitoring
//! Stack both show that per-plugin concurrency is what makes continuous
//! holistic collection viable at that scale.  [`WorkerPool`] is the
//! minimal machinery for that: a fixed set of `std::thread` workers fed
//! over an mpsc channel, plus a scoped-spawn API so the tick loop can fan
//! borrowed work (collectors, detector partitions, store shard batches)
//! across the pool without `Arc`-wrapping the whole system.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — the pool executes jobs, it never *orders* results.
//!    Every caller splits work into independent units (one collector, one
//!    detector attachment, one store shard) and merges outputs in a fixed
//!    order on the coordinating thread, so pipeline output is byte-
//!    identical for any worker count, including the serial path.
//! 2. **No new dependencies** — `std::thread` + `std::sync` only.
//! 3. **Persistent workers** — threads are spawned once at build and
//!    reused every tick; a [`WorkerPool::scope`] call costs two mutex
//!    round-trips per job, not a thread spawn.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Book-keeping shared between one [`Scope`] and the jobs it spawned.
struct ScopeState {
    /// Jobs spawned but not yet finished.
    pending: Mutex<usize>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
    /// First panic payload raised by a job, re-raised on the scope's
    /// thread so worker panics are not silently swallowed.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn new() -> Arc<ScopeState> {
        Arc::new(ScopeState {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    fn finish_job(&self, panicked: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(payload) = panicked {
            let mut slot = self.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait_all(&self) {
        let mut pending = self.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.done.wait(pending).unwrap();
        }
    }
}

/// A fixed-size pool of persistent worker threads.
///
/// ```
/// use hpcmon::parallel::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let mut squares = vec![0u64; 8];
/// pool.scope(|s| {
///     for (i, out) in squares.iter_mut().enumerate() {
///         s.spawn(move || *out = (i as u64) * (i as u64));
///     }
/// });
/// assert_eq!(squares[7], 49);
/// ```
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawn `workers` persistent threads (must be ≥ 1; a "pool of zero"
    /// is expressed by not building a pool at all and staying serial).
    pub fn new(workers: usize) -> WorkerPool {
        assert!(workers > 0, "a worker pool needs at least one worker");
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("hpcmon-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { tx: Some(tx), handles, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f` with a [`Scope`] that can spawn borrowing jobs onto the
    /// pool.  Blocks until every spawned job has finished, then
    /// propagates the first job panic (if any) on this thread.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let state = ScopeState::new();
        let scope = Scope {
            tx: self.tx.as_ref().expect("pool is alive"),
            state: Arc::clone(&state),
            _env: std::marker::PhantomData,
        };
        // If `f` itself panics we must still wait for already-spawned jobs
        // before unwinding: their closures borrow from `'env`.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        state.wait_all();
        if let Some(payload) = state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Hang up the channel; workers drain outstanding jobs and exit.
        drop(self.tx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while dequeuing, never while running the job.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // pool dropped
        };
        job();
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`]; jobs may
/// borrow anything that outlives `'env`.
pub struct Scope<'pool, 'env> {
    tx: &'pool Sender<Job>,
    state: Arc<ScopeState>,
    // Invariant over 'env so the borrow checker pins borrows exactly.
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Queue `f` onto the pool.  The scope guarantees `f` completes
    /// before `scope()` returns, which is what makes the `'env` borrow
    /// sound.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        *self.state.pending.lock().unwrap() += 1;
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: `WorkerPool::scope` blocks on `wait_all()` before
        // returning (even when the scope closure panics), so this job —
        // and every `'env` borrow it captures — finishes strictly before
        // `'env` can end.  The transmute only erases that lifetime bound;
        // layout of `Box<dyn FnOnce>` is lifetime-independent.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        let state = Arc::clone(&self.state);
        self.tx
            .send(Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job)).err();
                state.finish_job(outcome);
            }))
            .expect("worker pool is alive while a scope exists");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn jobs_run_and_results_land_in_borrowed_slots() {
        let pool = WorkerPool::new(4);
        let mut out = vec![0u64; 100];
        pool.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u64 + 1);
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn pool_is_reusable_across_scopes() {
        let pool = WorkerPool::new(2);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn scope_blocks_until_all_jobs_finish() {
        let pool = WorkerPool::new(3);
        let running = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    running.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    running.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(running.load(Ordering::SeqCst), 0, "no job may outlive its scope");
    }

    #[test]
    fn worker_panic_propagates_to_the_scope_caller() {
        let pool = WorkerPool::new(2);
        let hit = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("job exploded"));
                s.spawn(|| {
                    hit.fetch_add(1, Ordering::SeqCst);
                });
            });
        }));
        assert!(result.is_err(), "panic must not be swallowed");
        // The pool survives a panicked scope and keeps working.
        pool.scope(|s| {
            s.spawn(|| {
                hit.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hit.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn single_worker_pool_is_effectively_serial() {
        let pool = WorkerPool::new(1);
        let mut order = Vec::new();
        let log = Mutex::new(&mut order);
        pool.scope(|s| {
            for i in 0..10 {
                let log = &log;
                s.spawn(move || log.lock().unwrap().push(i));
            }
        });
        assert_eq!(order, (0..10).collect::<Vec<_>>(), "one worker preserves queue order");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        WorkerPool::new(0);
    }
}
