//! Pipeline plumbing: attaching streaming detectors to stored series and
//! turning analysis outputs into response signals.

use hpcmon_analysis::{Detector, Finding};
use hpcmon_metrics::{SeriesKey, Severity};
use hpcmon_response::{Signal, SignalKind};

/// A streaming detector attached to one series, with the signal shape it
/// emits when it fires.  This is the Table I "analysis ... as streaming
/// analysis" attachment point.
pub struct DetectorAttachment {
    /// The watched series.
    pub key: SeriesKey,
    /// The detector instance.
    pub detector: Box<dyn Detector>,
    /// Signal kind emitted on a hit.
    pub kind: SignalKind,
    /// Signal severity emitted on a hit.
    pub severity: Severity,
    /// Human label for the emitted signal detail.
    pub label: String,
}

impl DetectorAttachment {
    /// Attach `detector` to `key`.
    pub fn new(
        key: SeriesKey,
        detector: Box<dyn Detector>,
        kind: SignalKind,
        severity: Severity,
        label: &str,
    ) -> DetectorAttachment {
        DetectorAttachment { key, detector, kind, severity, label: label.to_owned() }
    }
}

/// Convert a correlator finding into a response signal.  Rule names map to
/// severities so paging rules can be expressed over signal severity.
pub fn finding_to_signal(finding: &Finding) -> Signal {
    let severity = match finding.rule.as_str() {
        "node-heartbeat-lost" => Severity::Critical,
        "link-failure-kills-jobs" => Severity::Error,
        _ => Severity::Warning,
    };
    let comp = finding.comps.first().copied().unwrap_or(hpcmon_metrics::CompId::SYSTEM);
    Signal::new(
        finding.ts,
        SignalKind::LogCorrelation,
        severity,
        comp,
        finding.comps.len() as f64,
        format!("{}: {}", finding.rule, finding.detail),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_analysis::ThresholdDetector;
    use hpcmon_metrics::{CompId, MetricId, Ts};

    #[test]
    fn attachment_carries_configuration() {
        let key = SeriesKey::new(MetricId(3), CompId::SYSTEM);
        let att = DetectorAttachment::new(
            key,
            Box::new(ThresholdDetector::above(10.0)),
            SignalKind::EnvironmentViolation,
            Severity::Warning,
            "SO2 over ASHRAE limit",
        );
        assert_eq!(att.key, key);
        assert_eq!(att.severity, Severity::Warning);
        assert_eq!(att.label, "SO2 over ASHRAE limit");
    }

    #[test]
    fn finding_severity_mapping() {
        let mk = |rule: &str| Finding {
            rule: rule.to_owned(),
            ts: Ts(1),
            comps: vec![CompId::node(3)],
            detail: "d".into(),
        };
        assert_eq!(finding_to_signal(&mk("node-heartbeat-lost")).severity, Severity::Critical);
        assert_eq!(finding_to_signal(&mk("link-failure-kills-jobs")).severity, Severity::Error);
        assert_eq!(finding_to_signal(&mk("crc-retry-storm")).severity, Severity::Warning);
        let s = finding_to_signal(&mk("x"));
        assert_eq!(s.comp, CompId::node(3));
        assert_eq!(s.kind, SignalKind::LogCorrelation);
        assert!(s.detail.starts_with("x: "));
    }

    #[test]
    fn finding_without_comps_targets_system() {
        let f = Finding { rule: "r".into(), ts: Ts(0), comps: vec![], detail: String::new() };
        assert_eq!(finding_to_signal(&f).comp, CompId::SYSTEM);
    }
}
